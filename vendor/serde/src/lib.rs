//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! supplies the subset of serde that webpuzzle relies on: derivable
//! [`Serialize`] / [`Deserialize`] traits over an in-memory JSON
//! [`Value`] tree. The companion `serde_json` crate renders and parses
//! the tree as JSON text.
//!
//! Differences from upstream serde, none of which matter to this
//! workspace:
//!
//! * serialization goes through [`Value`] rather than a streaming
//!   `Serializer` visitor (simpler, and report-sized data is small);
//! * object key order is *declaration* order, not alphabetical;
//! * non-finite floats serialize as `null` and deserialize back as NaN;
//! * derive supports plain structs with named fields and enums with
//!   unit / named-field / tuple variants — no generics, no attributes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// JSON number: integers keep full 64-bit precision, everything else is
/// an `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Lossy view as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }
}

/// In-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Unsigned integer value, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(Number::U(v)) => Some(*v),
            Value::Num(Number::I(v)) if *v >= 0 => Some(*v as u64),
            Value::Num(Number::F(f)) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Signed integer value, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(Number::I(v)) => Some(*v),
            Value::Num(Number::U(v)) if *v <= i64::MAX as u64 => Some(*v as i64),
            Value::Num(Number::F(f)) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Look up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Convert to a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse from a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: extract and deserialize one object field.
/// Missing keys deserialize from `null`, so `Option` fields default to
/// `None` while required fields produce a type error naming the field.
pub fn from_field<T: Deserialize>(obj: &[(String, Value)], name: &'static str) -> Result<T, Error> {
    let v = obj
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null);
    T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

// ------------------------------------------------------------ primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Num(Number::F(*self))
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Num(Number::U(v as u64))
                } else {
                    Value::Num(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                let expect = [$($idx),+].len();
                if arr.len() != expect {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_tuple_roundtrip() {
        let v: Option<(f64, f64)> = Some((1.5, -2.25));
        let val = v.to_value();
        let back: Option<(f64, f64)> = Deserialize::from_value(&val).unwrap();
        assert_eq!(v, back);
        let none: Option<(f64, f64)> = None;
        assert_eq!(none.to_value(), Value::Null);
    }

    #[test]
    fn missing_field_is_null_for_option() {
        let obj: Vec<(String, Value)> = vec![];
        let got: Option<f64> = from_field(&obj, "absent").unwrap();
        assert_eq!(got, None);
        let err = from_field::<u32>(&obj, "absent").unwrap_err();
        assert!(err.to_string().contains("absent"));
    }

    #[test]
    fn integer_precision_preserved() {
        let big: u64 = (1 << 60) + 12345;
        let v = big.to_value();
        let back = u64::from_value(&v).unwrap();
        assert_eq!(big, back);
    }
}
