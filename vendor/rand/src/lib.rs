//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the API surface webpuzzle uses:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++ seeded through SplitMix64),
//! * [`SeedableRng::seed_from_u64`],
//! * the [`Rng`] core trait (`next_u64`), usable as `R: Rng + ?Sized`,
//! * [`RngExt::random`] for uniform draws (`f64` in `[0, 1)`, full-range
//!   integers, `bool`).
//!
//! The stream differs from upstream `rand`'s `StdRng` (ChaCha12), but every
//! consumer in this workspace only relies on determinism-per-seed and
//! uniformity, never on exact values.

/// Core random-number generator trait: a source of uniform `u64`s.
pub trait Rng {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG ([`RngExt::random`]).
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension over [`Rng`], mirroring `rand`'s `random` method.
pub trait RngExt: Rng {
    /// Draw one uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator seeded via SplitMix64 — small, fast, and
    /// statistically solid for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            use super::RngExt;
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
