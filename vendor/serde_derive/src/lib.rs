//! Derive macros for the vendored serde stand-in.
//!
//! Supports the shapes used in this workspace:
//!
//! * structs with named fields,
//! * enums with unit, named-field, and tuple variants.
//!
//! No generics and no `#[serde(...)]` attributes. Parsing walks the raw
//! token stream (syn/quote are unavailable offline); code generation
//! builds a source string and re-parses it, which is entirely adequate
//! for these restricted shapes.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

enum Shape {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(iter: &mut TokenIter) {
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        iter.next(); // the bracketed attribute body
    }
}

fn skip_visibility(iter: &mut TokenIter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next(); // pub(crate) etc.
        }
    }
}

/// Consume tokens of one type expression, stopping after the `,` that
/// terminates it (or at end of stream). Tracks `<...>` nesting; bracketed
/// and parenthesized types arrive as single group tokens.
fn skip_type(iter: &mut TokenIter) {
    let mut angle_depth = 0i32;
    while let Some(tt) = iter.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                iter.next();
                return;
            }
            _ => {
                iter.next();
            }
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde_derive: expected `:` after field, got {other:?}"),
                }
                skip_type(&mut iter);
            }
            None => break,
            other => panic!("serde_derive: unexpected token in fields: {other:?}"),
        }
    }
    names
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut iter = body.into_iter().peekable();
    let mut count = 0usize;
    while iter.peek().is_some() {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut iter);
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attributes(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                let kind = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        iter.next();
                        VariantKind::Named(fields)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        iter.next();
                        VariantKind::Tuple(n)
                    }
                    _ => VariantKind::Unit,
                };
                // Consume through the variant-separating comma (covers
                // explicit discriminants, which never contain top-level
                // commas).
                for tt in iter.by_ref() {
                    if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
                variants.push(Variant {
                    name: id.to_string(),
                    kind,
                });
            }
            None => break,
            other => panic!("serde_derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    let is_enum = loop {
        match iter.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => continue,
            None => panic!("serde_derive: expected `struct` or `enum`"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive: generic types are not supported by the vendored shim")
            }
            Some(_) => continue,
            None => panic!("serde_derive: expected a braced body for `{name}`"),
        }
    };
    if is_enum {
        Shape::Enum {
            name,
            variants: parse_variants(body),
        }
    } else {
        Shape::Struct {
            name,
            fields: parse_named_fields(body),
        }
    }
}

/// Derive `serde::Serialize` (vendored Value-based flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_shape(input) {
        Shape::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![\n"
            ));
            for f in &fields {
                out.push_str(&format!(
                    "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})),\n"
                ));
            }
            out.push_str("])\n}\n}\n");
        }
        Shape::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n"
            ));
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => out.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Named(fields) => {
                        let bindings = fields.join(", ");
                        out.push_str(&format!("{name}::{vn} {{ {bindings} }} => "));
                        out.push_str(
                            "::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"",
                        );
                        out.push_str(vn);
                        out.push_str("\"), ::serde::Value::Object(::std::vec![\n");
                        for f in fields {
                            out.push_str(&format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f})),\n"
                            ));
                        }
                        out.push_str("]))]),\n");
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        out.push_str(&format!("{name}::{vn}({}) => ", binds.join(", ")));
                        if *n == 1 {
                            out.push_str(&format!(
                                "::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Serialize::to_value(__x0))]),\n"
                            ));
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            out.push_str(&format!(
                                "::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),\n",
                                elems.join(", ")
                            ));
                        }
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out.parse()
        .expect("serde_derive: generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (vendored Value-based flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_shape(input) {
        Shape::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            ));
            for f in &fields {
                out.push_str(&format!("{f}: ::serde::from_field(__obj, \"{f}\")?,\n"));
            }
            out.push_str("})\n}\n}\n");
        }
        Shape::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 return match __s {{\n"
            ));
            for v in &variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vn = &v.name;
                    out.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    ));
                }
            }
            out.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown {name} variant {{__other}}\"))),\n\
                 }};\n}}\n\
                 let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected string or object for {name}\"))?;\n\
                 let (__tag, __inner) = match __obj {{\n\
                 [(k, v)] => (k.as_str(), v),\n\
                 _ => return ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected single-key object for {name}\")),\n\
                 }};\n\
                 match __tag {{\n"
            ));
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Named(fields) => {
                        out.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __o = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n"
                        ));
                        for f in fields {
                            out.push_str(&format!("{f}: ::serde::from_field(__o, \"{f}\")?,\n"));
                        }
                        out.push_str("})\n}\n");
                    }
                    VariantKind::Tuple(n) => {
                        if *n == 1 {
                            out.push_str(&format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(__inner)?)),\n"
                            ));
                        } else {
                            out.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let __a = __inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                                 if __a.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"arity mismatch for {name}::{vn}\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}(\n"
                            ));
                            for i in 0..*n {
                                out.push_str(&format!(
                                    "::serde::Deserialize::from_value(&__a[{i}])?,\n"
                                ));
                            }
                            out.push_str("))\n}\n");
                        }
                    }
                }
            }
            out.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown {name} variant {{__other}}\"))),\n\
                 }}\n}}\n}}\n"
            ));
        }
    }
    out.parse()
        .expect("serde_derive: generated Deserialize impl parses")
}
