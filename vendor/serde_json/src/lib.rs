//! Offline stand-in for `serde_json`: JSON text rendering and parsing for
//! the vendored `serde` [`Value`] tree.
//!
//! Numbers keep 64-bit integer precision; floats are printed with Rust's
//! shortest round-trip `Display`, so `value → text → value` is exact for
//! every finite `f64` (the upstream `float_roundtrip` behavior).
//! Non-finite floats serialize as `null`.

pub use serde::{Error, Number, Value};

/// `serde_json`-style result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON text.
///
/// # Errors
///
/// Currently infallible for the vendored data model; kept fallible for
/// upstream API compatibility.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON text (2-space indent).
///
/// # Errors
///
/// Currently infallible for the vendored data model; kept fallible for
/// upstream API compatibility.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
///
/// # Errors
///
/// Returns a parse error (with byte offset) for malformed JSON, or a
/// shape error when the value tree does not match `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    T::from_value(&value)
}

/// Parse JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns a parse error with the byte offset of the problem.
pub fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing data at byte {pos}")));
    }
    Ok(value)
}

// ------------------------------------------------------------- rendering

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(v) => out.push_str(&v.to_string()),
        Number::I(v) => out.push_str(&v.to_string()),
        Number::F(f) => {
            if !f.is_finite() {
                out.push_str("null");
                return;
            }
            let s = f.to_string();
            out.push_str(&s);
            // Keep the value re-parseable as a float (serde_json prints
            // 1.0 as "1.0", Rust Display prints "1"); integers that fit
            // are fine either way for our Deserialize impls.
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => {
            expect_literal(bytes, pos, "null")?;
            Ok(Value::Null)
        }
        Some(b't') => {
            expect_literal(bytes, pos, "true")?;
            Ok(Value::Bool(true))
        }
        Some(b'f') => {
            expect_literal(bytes, pos, "false")?;
            Ok(Value::Bool(false))
        }
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("expected , or ] at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::custom(format!("expected : at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::custom(format!("expected , or }} at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn expect_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::custom(format!("expected `{lit}` at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::custom("bad \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::custom("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::custom("invalid UTF-8"))?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::custom("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Num(Number::U(u)));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Num(Number::I(i)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Num(Number::F(f)))
        .map_err(|_| Error::custom(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_round_trip_is_exact() {
        for &f in &[0.1f64, 1.0 / 3.0, 6.02214076e23, -0.0, 1e-300, 123456.789] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {s} -> {back}");
        }
    }

    #[test]
    fn integers_keep_precision() {
        let v: u64 = (1 << 62) + 3;
        let s = to_string(&v).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn nested_value_round_trip() {
        let text = r#"{"a": [1, 2.5, null, true], "b": {"c": "x\n\"y\""}, "d": -7}"#;
        let v = parse_value_str(text).unwrap();
        let rendered = to_string(&v).unwrap();
        let again = parse_value_str(&rendered).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn pretty_output_indents() {
        let v = parse_value_str(r#"{"a":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n"), "{pretty}");
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("nul").is_err());
        assert!(parse_value_str("{\"a\":1} extra").is_err());
    }
}
