//! Offline stand-in for `proptest`.
//!
//! Provides deterministic random-case property testing with the strategy
//! combinators this workspace uses: numeric ranges, `any::<T>()`,
//! [`Just`], tuples, `prop_map`, `prop_oneof!`, and
//! [`collection::vec`]. Cases are generated from a seed derived from the
//! test name, so runs are reproducible. There is **no shrinking**: a
//! failing case panics with the standard assertion message, which is
//! enough for the invariant-style properties in this repo.

use std::ops::Range;

/// Deterministic generator for test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (typically the test name) so every
    /// test gets a distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Runner configuration (`with_cases` mirrors upstream).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values (upstream `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Full-range values (upstream `any`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Build an [`Any`] strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_uint {
    ($($t:ty : $shift:expr),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                (rng.next_u64() >> $shift) as $t
            }
        }
    )*};
}

impl_any_uint!(u8: 56, u16: 48, u32: 32, u64: 0);

impl Strategy for Any<bool> {
    type Value = bool;

    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Uniform choice among boxed same-typed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    /// The candidate generators.
    pub options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].gen_value(rng)
    }
}

/// Collection strategies (upstream `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors of `element` values with lengths in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Everything a property test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Any, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip cases that do not satisfy a precondition (moves to the next
/// case; expands to `continue` inside the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        let __holds: bool = $cond;
        if !__holds {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let __options: Vec<Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(Box::new($strategy)),+];
        $crate::OneOf { options: __options }
    }};
}

/// Define property tests. Each function runs `cases` times with freshly
/// drawn arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let ($($arg,)*) = ($(
                    $crate::Strategy::gen_value(&($strategy), &mut __rng),
                )*);
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let f = (1.5f64..9.5).gen_value(&mut rng);
            assert!((1.5..9.5).contains(&f));
            let u = (10u32..20).gen_value(&mut rng);
            assert!((10..20).contains(&u));
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let strat = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = TestRng::deterministic("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.gen_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let strat = collection::vec(0.0f64..1.0, 2..5);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..100 {
            let v = strat.gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(x in 0.0f64..100.0, n in 1usize..10) {
            prop_assume!(x > 0.5);
            prop_assert!(x < 100.0);
            prop_assert_eq!(n.min(10), n);
        }
    }
}
