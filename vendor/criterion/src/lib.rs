//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the webpuzzle benches use
//! (`benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!`, `black_box`) with a deliberately simple
//! measurement loop: one warm-up call, then `sample_size` timed samples.
//!
//! Results are printed to stderr and appended as JSON lines to
//! `target/criterion-lite/results.jsonl` (override the path with the
//! `CRITERION_LITE_OUT` environment variable). The workspace's
//! `bench-report` binary aggregates those lines into a committed
//! `BENCH_<date>.json` artifact.

use std::fmt::Display;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// `target/criterion-lite/results.jsonl` under the *workspace* root.
///
/// Cargo runs bench binaries with the package directory as cwd, so a
/// plain relative path would scatter results across member crates. The
/// workspace root is found as the outermost ancestor of
/// `CARGO_MANIFEST_DIR` that contains a `Cargo.toml`.
fn default_results_path() -> PathBuf {
    let rel = PathBuf::from("target/criterion-lite/results.jsonl");
    let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") else {
        return rel;
    };
    let mut root = None;
    let mut dir = Some(std::path::Path::new(&manifest_dir));
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() {
            root = Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    match root {
        Some(r) => r.join(rel),
        None => rel,
    }
}

pub use std::hint::black_box;

/// Identifier combining a function name and a parameter, rendered as
/// `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Accepted id forms for `bench_function` (`&str`, `String`, or
/// [`BenchmarkId`]), mirroring criterion's `IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    /// Render the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Sampled {
    /// `group/function/param` path.
    pub id: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Mean nanoseconds per sample.
    pub mean_ns: f64,
    /// Minimum nanoseconds over samples.
    pub min_ns: f64,
    /// Maximum nanoseconds over samples.
    pub max_ns: f64,
}

/// Top-level benchmark driver.
pub struct Criterion {
    results: Vec<Sampled>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            results: Vec::new(),
            default_sample_size: 10,
        }
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measured: Option<(usize, f64, f64, f64)>,
}

impl Bencher {
    /// Run `f` once to warm up, then time `sample_size` executions.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            let ns = t0.elapsed().as_nanos() as f64;
            total += ns;
            min = min.min(ns);
            max = max.max(ns);
        }
        self.measured = Some((self.sample_size, total / self.sample_size as f64, min, max));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measured: None,
        };
        f(&mut bencher);
        let Some((samples, mean_ns, min_ns, max_ns)) = bencher.measured else {
            return;
        };
        let full = format!("{}/{}", self.name, id);
        eprintln!(
            "bench {full}: mean {:.1} µs (min {:.1}, max {:.1}, n={samples})",
            mean_ns / 1e3,
            min_ns / 1e3,
            max_ns / 1e3,
        );
        self.criterion.results.push(Sampled {
            id: full,
            samples,
            mean_ns,
            min_ns,
            max_ns,
        });
    }

    /// Benchmark a closure.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into_id(), f);
        self
    }

    /// Benchmark a closure that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.id.clone(), |b| f(b, input));
        self
    }

    /// End the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// Benchmark a stand-alone closure.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into_id();
        let group = self.benchmark_group("");
        let mut bencher = Bencher {
            sample_size: group.sample_size,
            measured: None,
        };
        f(&mut bencher);
        if let Some((samples, mean_ns, min_ns, max_ns)) = bencher.measured {
            group.criterion.results.push(Sampled {
                id: id.to_string(),
                samples,
                mean_ns,
                min_ns,
                max_ns,
            });
        }
        self
    }

    /// Append all recorded results as JSON lines.
    pub fn finalize(&self) {
        if self.results.is_empty() {
            return;
        }
        let path = std::env::var("CRITERION_LITE_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| default_results_path());
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) else {
            eprintln!("criterion-lite: cannot open {}", path.display());
            return;
        };
        for r in &self.results {
            // Escape only quotes/backslashes: ids are plain identifiers.
            let id = r.id.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = writeln!(
                file,
                "{{\"id\":\"{id}\",\"samples\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                r.samples, r.mean_ns, r.min_ns, r.max_ns
            );
        }
        eprintln!(
            "criterion-lite: appended {} results to {}",
            self.results.len(),
            path.display()
        );
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Define `main` running the given groups and writing results.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.bench_function("busy", |b| {
            b.iter(|| (0..1000u64).map(black_box).sum::<u64>())
        });
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].mean_ns > 0.0);
        assert_eq!(c.results[0].samples, 3);
        assert_eq!(c.results[0].id, "t/busy");
    }
}
