//! Property-based invariants of the log-handling substrate: CLF round
//! trips, sessionization partitioning, and stream merging.

use proptest::prelude::*;
use webpuzzle::weblog::clf::{format_line, parse_line};
use webpuzzle::weblog::{merge_sorted, sessionize, LogRecord, Method};

const BASE_EPOCH: i64 = 1_073_865_600;

fn arb_method() -> impl Strategy<Value = Method> {
    prop_oneof![Just(Method::Get), Just(Method::Post), Just(Method::Head),]
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    (
        0.0f64..604_800.0,
        any::<u32>(),
        arb_method(),
        0u32..1_000_000,
        prop_oneof![Just(200u16), Just(304), Just(404), Just(500)],
        0u64..10_000_000_000,
    )
        .prop_map(|(t, client, method, resource, status, bytes)| {
            LogRecord::new(t, client, method, resource, status, bytes)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn clf_roundtrip_preserves_everything_but_subsecond(rec in arb_record()) {
        let line = format_line(&rec, BASE_EPOCH);
        let back = parse_line(&line, BASE_EPOCH).expect("own output parses");
        prop_assert_eq!(back.timestamp, rec.timestamp.floor());
        prop_assert_eq!(back.client, rec.client);
        prop_assert_eq!(back.method, rec.method);
        prop_assert_eq!(back.resource, rec.resource);
        prop_assert_eq!(back.status, rec.status);
        prop_assert_eq!(back.bytes, rec.bytes);
    }

    #[test]
    fn sessionize_partitions_requests(
        recs in prop::collection::vec(arb_record(), 1..300),
        threshold in 1.0f64..10_000.0,
    ) {
        let sessions = sessionize(&recs, threshold).expect("sessionize runs");
        // Every request lands in exactly one session.
        let total: usize = sessions.iter().map(|s| s.request_count).sum();
        prop_assert_eq!(total, recs.len());
        // Bytes are conserved.
        let bytes: u64 = sessions.iter().map(|s| s.bytes).sum();
        prop_assert_eq!(bytes, recs.iter().map(|r| r.bytes).sum::<u64>());
        for s in &sessions {
            prop_assert!(s.end >= s.start);
            prop_assert!(s.request_count >= 1);
            // A session can never outlive its request span by construction:
            // duration <= (count-1) * threshold.
            prop_assert!(
                s.duration() <= (s.request_count.saturating_sub(1)) as f64 * threshold
            );
        }
        // Sessions of the same client are separated by >= threshold.
        let mut by_client: std::collections::HashMap<u32, Vec<_>> =
            std::collections::HashMap::new();
        for s in &sessions {
            by_client.entry(s.client).or_default().push(*s);
        }
        for (_, mut list) in by_client {
            list.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
            for w in list.windows(2) {
                prop_assert!(
                    w[1].start - w[0].end >= threshold,
                    "consecutive sessions too close: {} .. {}",
                    w[0].end,
                    w[1].start
                );
            }
        }
    }

    #[test]
    fn smaller_threshold_never_fewer_sessions(
        recs in prop::collection::vec(arb_record(), 1..200),
    ) {
        let coarse = sessionize(&recs, 3_600.0).unwrap().len();
        let fine = sessionize(&recs, 60.0).unwrap().len();
        prop_assert!(fine >= coarse);
    }

    #[test]
    fn merge_preserves_order_and_count(
        mut a in prop::collection::vec(arb_record(), 0..100),
        mut b in prop::collection::vec(arb_record(), 0..100),
    ) {
        a.sort_by(|x, y| x.timestamp.partial_cmp(&y.timestamp).unwrap());
        b.sort_by(|x, y| x.timestamp.partial_cmp(&y.timestamp).unwrap());
        let merged = merge_sorted(&[&a, &b]).expect("sorted inputs merge");
        prop_assert_eq!(merged.len(), a.len() + b.len());
        for w in merged.windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp);
        }
    }
}

#[test]
fn sessionize_is_permutation_invariant() {
    // Deterministic spot-check stronger than the proptest: shuffling the
    // input record order must not change the derived sessions.
    let mut recs = Vec::new();
    for i in 0..200u32 {
        recs.push(LogRecord::new(
            (i * 37 % 5000) as f64,
            i % 13,
            Method::Get,
            i,
            200,
            (i as u64 + 1) * 10,
        ));
    }
    let forward = sessionize(&recs, 600.0).unwrap();
    recs.reverse();
    let reversed = sessionize(&recs, 600.0).unwrap();
    assert_eq!(forward, reversed);
}
