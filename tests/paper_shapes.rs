//! Shape-level reproduction checks: scaled-down versions of the paper's
//! headline comparisons, asserting the *qualitative* results the repro
//! harness prints (who wins, orderings, crossovers) rather than absolute
//! numbers.

use webpuzzle::core::{AnalysisConfig, FullWebModel};
use webpuzzle::weblog::{WeekDataset, DEFAULT_SESSION_THRESHOLD};
use webpuzzle::workload::{ServerProfile, WorkloadGenerator};

fn model_for(profile: ServerProfile, seed: u64) -> FullWebModel {
    let name = profile.name();
    let records = WorkloadGenerator::new(profile)
        .seed(seed)
        .generate()
        .expect("generation succeeds");
    let ds =
        WeekDataset::from_records(records, DEFAULT_SESSION_THRESHOLD).expect("records fit week");
    FullWebModel::analyze(name, &ds, &AnalysisConfig::fast()).expect("pipeline runs")
}

#[test]
fn table1_shape_three_orders_of_magnitude() {
    let mut volumes = Vec::new();
    for profile in ServerProfile::all() {
        let records = WorkloadGenerator::new(profile.with_scale(0.02))
            .seed(1)
            .generate()
            .unwrap();
        volumes.push(records.len());
    }
    // Descending order WVU > ClarkNet > CSEE > NASA, spanning ≥ 2 orders
    // of magnitude (3 at full scale; the ratio is scale-invariant).
    assert!(volumes.windows(2).all(|w| w[0] > w[1]), "{volumes:?}");
    assert!(
        volumes[0] / volumes[3] > 100,
        "WVU/NASA ratio = {}",
        volumes[0] / volumes[3]
    );
}

#[test]
fn figure_4_6_shape_h_decreases_after_stationarization_and_with_load() {
    // Two ends of the intensity spectrum suffice for the ordering claim.
    let busy = model_for(ServerProfile::wvu().with_scale(0.05), 2);
    let quiet = model_for(ServerProfile::nasa_pub2().with_scale(1.0), 2);

    // (2) The busy server is strongly long-range dependent. Point
    // estimates at one bin size can exceed 1 when short-range session
    // persistence contaminates the pure-fGn Whittle fit — the exact
    // pathology the paper's aggregation sweep corrects — so assert on the
    // battery mean and on the deepest sweep levels, where SRD has been
    // averaged out.
    let mean_h = busy.request_level.hurst_stationary.mean_h().unwrap();
    assert!((0.6..1.1).contains(&mean_h), "WVU mean Ĥ = {mean_h}");
    let deepest = busy
        .request_level
        .whittle_sweep
        .last()
        .expect("sweep has levels");
    assert!(
        deepest.estimate.h > 0.55 && deepest.estimate.h < 1.0,
        "WVU Ĥ(m={}) = {}",
        deepest.m,
        deepest.estimate.h
    );

    // (1) Raw ≥ stationary on average (trend/periodicity inflate Ĥ).
    let over = busy
        .request_level
        .raw_overestimation()
        .expect("both suites ran");
    assert!(over > -0.05, "raw-vs-stationary ΔH = {over}");

    // Degree of self-similarity increases with workload intensity.
    let h_busy = busy.request_level.hurst_stationary.mean_h().unwrap();
    let h_quiet = quiet.request_level.hurst_stationary.mean_h().unwrap();
    assert!(
        h_busy > h_quiet,
        "H(WVU) = {h_busy} should exceed H(NASA) = {h_quiet}"
    );
}

#[test]
fn figure_7_8_shape_h_stable_under_aggregation() {
    let model = model_for(ServerProfile::wvu().with_scale(0.05), 3);
    let sweep = &model.request_level.whittle_sweep;
    assert!(sweep.len() >= 3, "need several aggregation levels");
    let hs: Vec<f64> = sweep.iter().map(|p| p.estimate.h).collect();
    let max = hs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = hs.iter().cloned().fold(f64::INFINITY, f64::min);
    // The paper's WVU range spans ~0.22 (0.768..0.986); require the sweep
    // to stay coherent rather than collapse toward 0.5.
    assert!(max - min < 0.3, "Ĥ(m) range too wide: {hs:?}");
    assert!(min > 0.55, "Ĥ(m) fell out of the LRD band: {hs:?}");
    // CIs widen with m (footnote 2).
    let first = sweep.first().unwrap().estimate.ci95.unwrap();
    let last = sweep.last().unwrap().estimate.ci95.unwrap();
    assert!(last.1 - last.0 > first.1 - first.0);
}

#[test]
fn table_2_3_4_shape_heavy_tails_in_the_right_places() {
    let wvu = model_for(ServerProfile::wvu().with_scale(0.05), 4);
    let csee = model_for(ServerProfile::csee().with_scale(0.5), 4);

    // Table 2 shape: WVU session length heavy-tailed (α < 2.4, R² high).
    let dur = wvu.intra_session_week.duration.llcd.expect("duration fits");
    assert!(dur.alpha < 2.4, "WVU duration α = {}", dur.alpha);
    assert!(dur.r_squared > 0.95);

    // Table 4 shape: CSEE bytes/session have the heaviest tail of all —
    // α near or below 1 (infinite mean).
    let csee_bytes = csee.intra_session_week.bytes.llcd.expect("bytes fit");
    assert!(
        csee_bytes.alpha < 1.45,
        "CSEE bytes α = {}",
        csee_bytes.alpha
    );

    // Bytes tail heavier than the request-count tail (Table 4 < Table 3)
    // for both servers.
    for m in [&wvu, &csee] {
        let req = m.intra_session_week.requests.llcd.expect("requests fit");
        let bytes = m.intra_session_week.bytes.llcd.expect("bytes fit");
        assert!(
            bytes.alpha < req.alpha + 0.2,
            "{}: bytes α {} vs requests α {}",
            m.server,
            bytes.alpha,
            req.alpha
        );
    }
}

#[test]
fn sec_4_2_shape_requests_reject_poisson_under_load() {
    let model = model_for(ServerProfile::clarknet().with_scale(0.1), 5);
    // The busiest interval must reject at both granularities.
    let high = &model.levels[2];
    use webpuzzle::core::PoissonVerdict;
    assert_eq!(
        high.request_poisson.hourly_verdict(),
        PoissonVerdict::Rejected
    );
    assert_eq!(
        high.request_poisson.ten_min_verdict(),
        PoissonVerdict::Rejected
    );
}
