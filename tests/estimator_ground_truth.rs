//! Cross-crate ground-truth validation of the Hurst estimator battery:
//! every estimator must recover the Hurst exponent planted by the exact
//! Davies-Harte fGn synthesizer, and the CI-producing estimators must
//! achieve near-nominal coverage.

use webpuzzle::lrd::{
    abry_veitch, fgn::FgnGenerator, periodogram_hurst, rescaled_range, variance_time, whittle,
    EstimatorKind, HurstEstimate, HurstSuite,
};

fn fgn(h: f64, n: usize, seed: u64) -> Vec<f64> {
    FgnGenerator::new(h)
        .expect("valid H")
        .seed(seed)
        .generate(n)
        .expect("generation succeeds")
}

#[test]
fn all_estimators_track_h_across_the_lrd_range() {
    // Tolerances reflect each estimator's documented small-sample behavior.
    type Estimator = fn(&[f64]) -> webpuzzle::lrd::Result<HurstEstimate>;
    let cases: &[(Estimator, &str, f64)] = &[
        (variance_time, "variance-time", 0.12),
        (rescaled_range, "R/S", 0.15),
        (periodogram_hurst, "periodogram", 0.10),
        (whittle, "Whittle", 0.05),
        (abry_veitch, "Abry-Veitch", 0.08),
    ];
    for &h in &[0.55, 0.65, 0.75, 0.85, 0.95] {
        let x = fgn(h, 65_536, (h * 1000.0) as u64);
        for (est, name, tol) in cases {
            let got = est(&x).expect("estimator runs").h;
            assert!(
                (got - h).abs() < *tol,
                "{name}: planted H = {h}, estimated {got}"
            );
        }
    }
}

#[test]
fn estimators_do_not_hallucinate_lrd_on_white_noise() {
    // Individual estimators can drift a hair above 0.5 on any finite white
    // noise sample (R/S is upward-biased by design), so the guard is
    // calibrated: the battery mean must hug 0.5 and the Whittle CI must
    // usually contain 0.5.
    let mut whittle_ci_contains_half = 0;
    for seed in 0..3 {
        let x = fgn(0.5, 32_768, 100 + seed);
        let suite = HurstSuite::estimate(&x).expect("suite runs");
        let mean = suite.mean_h().expect("estimates exist");
        assert!(
            (mean - 0.5).abs() < 0.06,
            "white noise mean Ĥ = {mean} (seed {seed}): {suite}"
        );
        let (lo, hi) = suite.whittle.expect("whittle runs").ci95.unwrap();
        if lo <= 0.5 && 0.5 <= hi {
            whittle_ci_contains_half += 1;
        }
    }
    assert!(whittle_ci_contains_half >= 2);
}

#[test]
fn whittle_ci_coverage_near_nominal() {
    let h = 0.8;
    let trials = 30;
    let mut covered = 0;
    for seed in 0..trials {
        let x = fgn(h, 8_192, 500 + seed);
        let est = whittle(&x).expect("whittle runs");
        let (lo, hi) = est.ci95.expect("whittle provides a CI");
        assert!(lo < hi);
        if lo <= h && h <= hi {
            covered += 1;
        }
    }
    // Nominal 95%; demand >= 80% to keep flakiness negligible.
    assert!(covered >= 24, "Whittle CI covered {covered}/{trials}");
}

#[test]
fn abry_veitch_ci_coverage_near_nominal() {
    let h = 0.7;
    let trials = 30;
    let mut covered = 0;
    for seed in 0..trials {
        let x = fgn(h, 8_192, 900 + seed);
        let est = abry_veitch(&x).expect("abry-veitch runs");
        let (lo, hi) = est.ci95.expect("abry-veitch provides a CI");
        if lo <= h && h <= hi {
            covered += 1;
        }
    }
    assert!(covered >= 22, "Abry-Veitch CI covered {covered}/{trials}");
}

#[test]
fn estimator_kinds_are_labeled_correctly() {
    let x = fgn(0.7, 4_096, 1);
    assert_eq!(variance_time(&x).unwrap().kind, EstimatorKind::VarianceTime);
    assert_eq!(
        rescaled_range(&x).unwrap().kind,
        EstimatorKind::RescaledRange
    );
    assert_eq!(
        periodogram_hurst(&x).unwrap().kind,
        EstimatorKind::Periodogram
    );
    assert_eq!(whittle(&x).unwrap().kind, EstimatorKind::Whittle);
    assert_eq!(abry_veitch(&x).unwrap().kind, EstimatorKind::AbryVeitch);
}

#[test]
fn suite_detects_antipersistent_series_as_non_lrd() {
    let x = fgn(0.3, 32_768, 7);
    let suite = HurstSuite::estimate(&x).expect("suite runs");
    assert!(!suite.consensus_lrd());
    // Whittle should place H well below 0.5.
    assert!(suite.whittle.expect("whittle runs").h < 0.45);
}
