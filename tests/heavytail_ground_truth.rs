//! Ground-truth validation of the heavy-tail battery: planted Pareto and
//! lognormal samples must be recovered/discriminated the way §5.2 uses the
//! methods.

use rand::rngs::StdRng;
use rand::SeedableRng;
use webpuzzle::heavytail::{curvature_test, hill_estimate, llcd_fit, CurvatureModel, TailRegime};
use webpuzzle::stats::dist::{Exponential, LogNormal, Pareto, Sampler};

fn pareto(alpha: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Pareto::new(alpha, 1.0)
        .expect("valid")
        .sample_n(&mut rng, n)
}

#[test]
fn llcd_and_hill_track_alpha_across_table_range() {
    // The α range spanned by the paper's Tables 2-4: 0.79 … 3.1.
    for &alpha in &[0.8, 1.0, 1.4, 1.67, 2.15, 2.6, 3.1] {
        let data = pareto(alpha, 30_000, (alpha * 100.0) as u64);
        let llcd = llcd_fit(&data, 0.14).expect("llcd fits");
        assert!(
            (llcd.alpha - alpha).abs() < 0.15 + 0.05 * alpha,
            "LLCD: planted α = {alpha}, got {}",
            llcd.alpha
        );
        assert!(
            llcd.r_squared > 0.97,
            "R² = {} at α = {alpha}",
            llcd.r_squared
        );

        let hill = hill_estimate(&data, 0.14).expect("hill runs");
        let got = hill.alpha.expect("pure Pareto stabilizes");
        assert!(
            (got - alpha).abs() < 0.15 + 0.05 * alpha,
            "Hill: planted α = {alpha}, got {got}"
        );
    }
}

#[test]
fn llcd_and_hill_cross_validate() {
    // Paper highlight (1): "in most cases LLCD plot and Hill estimator give
    // consistent results."
    for seed in 0..5 {
        let data = pareto(1.7, 20_000, 40 + seed);
        let llcd = llcd_fit(&data, 0.14).unwrap().alpha;
        let hill = hill_estimate(&data, 0.14).unwrap().alpha.unwrap();
        assert!((llcd - hill).abs() < 0.25, "LLCD {llcd} vs Hill {hill}");
    }
}

#[test]
fn regimes_match_table_conclusions() {
    // CSEE bytes/session: α ≈ 0.95 → infinite mean.
    let csee_like = pareto(0.95, 30_000, 50);
    let fit = llcd_fit(&csee_like, 0.14).unwrap();
    assert_eq!(TailRegime::from_alpha(fit.alpha), TailRegime::InfiniteMean);

    // WVU session length: α ≈ 1.8 → finite mean, infinite variance.
    let wvu_like = pareto(1.8, 30_000, 51);
    let fit = llcd_fit(&wvu_like, 0.14).unwrap();
    assert_eq!(
        TailRegime::from_alpha(fit.alpha),
        TailRegime::InfiniteVariance
    );

    // CSEE week session length: α ≈ 2.33 → finite variance.
    let light = pareto(2.33, 30_000, 52);
    let fit = llcd_fit(&light, 0.14).unwrap();
    assert_eq!(
        TailRegime::from_alpha(fit.alpha),
        TailRegime::FiniteVariance
    );
}

#[test]
fn exponential_produces_ns_hill_plot() {
    // Paper tables annotate light-tail cells NS: the Hill plot climbs
    // without stabilizing.
    let mut rng = StdRng::seed_from_u64(60);
    let data = Exponential::new(0.1).unwrap().sample_n(&mut rng, 30_000);
    let hill = hill_estimate(&data, 0.5).expect("hill runs");
    assert!(
        !hill.stabilized(),
        "exponential stabilized at {:?}",
        hill.alpha
    );
}

#[test]
fn curvature_test_ambiguous_when_tail_is_thin_discriminating_when_thick() {
    // Paper highlights (2) and (4): Pareto AND lognormal both survive the
    // curvature test on intra-session data *because very few observations
    // live in the extreme tail*. Verify the mechanism: with a thin tail
    // both models survive; with a much larger sample the test gains power
    // and rejects the wrong (Pareto) model on lognormal data.
    let mut rng = StdRng::seed_from_u64(70);
    let ln = LogNormal::new(3.0, 2.0).unwrap();

    let thin = ln.sample_n(&mut rng, 500);
    let p_par_thin = curvature_test(&thin, CurvatureModel::Pareto, 0.14, 99, 1)
        .unwrap()
        .p_value;
    let p_ln_thin = curvature_test(&thin, CurvatureModel::LogNormal, 0.14, 99, 2)
        .unwrap()
        .p_value;
    assert!(p_ln_thin > 0.05, "true lognormal rejected: p = {p_ln_thin}");
    assert!(
        p_par_thin > 0.05,
        "thin tail should be ambiguous, Pareto p = {p_par_thin}"
    );

    let thick = ln.sample_n(&mut rng, 60_000);
    let p_par_thick = curvature_test(&thick, CurvatureModel::Pareto, 0.14, 99, 3)
        .unwrap()
        .p_value;
    let p_ln_thick = curvature_test(&thick, CurvatureModel::LogNormal, 0.14, 99, 4)
        .unwrap()
        .p_value;
    assert!(
        p_ln_thick > 0.05,
        "true lognormal rejected: p = {p_ln_thick}"
    );
    assert!(
        p_par_thick < 0.05,
        "thick tail should discriminate, Pareto p = {p_par_thick}"
    );
}

#[test]
fn curvature_pvalue_sensitive_to_replicate_seed() {
    // Paper highlight (3): the MC p-value moves with the simulated sample.
    let data = pareto(1.5, 5_000, 80);
    let ps: Vec<f64> = (0..4)
        .map(|s| {
            curvature_test(&data, CurvatureModel::Pareto, 0.14, 49, s)
                .unwrap()
                .p_value
        })
        .collect();
    let distinct = ps.iter().filter(|&&p| (p - ps[0]).abs() > 1e-12).count();
    assert!(distinct >= 1, "p-values identical across seeds: {ps:?}");
}

#[test]
fn curvature_rejects_exponential_under_pareto_model() {
    // Negative control: a genuinely light tail must NOT pass as Pareto.
    let mut rng = StdRng::seed_from_u64(90);
    let data = Exponential::new(1.0).unwrap().sample_n(&mut rng, 10_000);
    let t = curvature_test(&data, CurvatureModel::Pareto, 0.3, 99, 3).unwrap();
    assert!(
        t.reject_5pct(),
        "exponential accepted as Pareto: p = {}",
        t.p_value
    );
}
