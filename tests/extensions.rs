//! Integration tests for the extension features beyond the paper's exact
//! scope: the FARIMA cross-family generator, the extra Hurst estimators,
//! the moment (DEdH) tail estimator, the Ljung-Box cross-check inside the
//! Poisson battery, and the CBMG baseline comparison.

use rand::rngs::StdRng;
use rand::SeedableRng;
use webpuzzle::core::{AnalysisConfig, FullWebModel, TailAnalysis};
use webpuzzle::heavytail::{hill_estimate, moment_estimator};
use webpuzzle::lrd::arfima::FarimaGenerator;
use webpuzzle::lrd::fgn::FgnGenerator;
use webpuzzle::lrd::{absolute_moments, variance_of_residuals, HurstSuite};
use webpuzzle::stats::dist::{Sampler, Weibull};
use webpuzzle::weblog::{WeekDataset, DEFAULT_SESSION_THRESHOLD};
use webpuzzle::workload::cbmg::Cbmg;
use webpuzzle::workload::{ServerProfile, WorkloadGenerator};

#[test]
fn seven_estimators_agree_on_fgn() {
    // The paper's five (via the suite) plus the two extensions must tell
    // one coherent story on clean synthetic LRD data.
    let h = 0.8;
    let x = FgnGenerator::new(h)
        .unwrap()
        .seed(900)
        .generate(65_536)
        .unwrap();
    let suite = HurstSuite::estimate(&x).unwrap();
    let am = absolute_moments(&x).unwrap().h;
    let vr = variance_of_residuals(&x).unwrap().h;
    for (name, est) in [("abs-moments", am), ("var-residuals", vr)] {
        assert!((est - h).abs() < 0.1, "{name}: {est}");
    }
    let spread = suite
        .iter()
        .map(|e| e.h)
        .chain([am, vr])
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(v), hi.max(v))
        });
    assert!(spread.1 - spread.0 < 0.25, "estimator spread {spread:?}");
}

#[test]
fn farima_and_fgn_same_h_same_verdict() {
    // Cross-family: two different exactly-LRD processes with the same H
    // should give matching suite conclusions.
    let h = 0.75;
    let fgn = FgnGenerator::new(h)
        .unwrap()
        .seed(901)
        .generate(32_768)
        .unwrap();
    let farima = FarimaGenerator::new(h - 0.5)
        .unwrap()
        .seed(901)
        .generate(32_768)
        .unwrap();
    let s1 = HurstSuite::estimate(&fgn).unwrap();
    let s2 = HurstSuite::estimate(&farima).unwrap();
    assert!(s1.consensus_lrd());
    assert!(s2.consensus_lrd());
    let (m1, m2) = (s1.mean_h().unwrap(), s2.mean_h().unwrap());
    assert!((m1 - m2).abs() < 0.12, "fGn {m1} vs FARIMA {m2}");
}

#[test]
fn moment_estimator_resolves_ns_cells() {
    // The paper's NS cells (Hill won't stabilize) are ambiguous: heavy tail
    // with a bad plot, or genuinely light tail? The DEdH moment estimator
    // answers: Weibull data → Hill NS *and* γ ≈ 0 (light); Pareto-tailed
    // data with the same Hill instability would show γ > 0.
    let mut rng = StdRng::seed_from_u64(902);
    let light = Weibull::new(0.6, 100.0).unwrap().sample_n(&mut rng, 30_000);
    let hill = hill_estimate(&light, 0.5).unwrap();
    assert!(!hill.stabilized(), "Weibull should be NS");
    // γ converges to 0 slowly for stretched exponentials (small-sample
    // positive bias), so the discriminating statement is relative: the
    // Weibull's γ sits far below a genuinely heavy tail's γ at the same
    // tail fraction.
    let g_light = moment_estimator(&light, 0.14).unwrap().gamma;
    let heavy = webpuzzle::stats::dist::Pareto::new(1.3, 1.0)
        .unwrap()
        .sample_n(&mut rng, 30_000);
    let g_heavy = moment_estimator(&heavy, 0.14).unwrap().gamma;
    assert!(
        g_light < g_heavy - 0.3,
        "Weibull γ {g_light} should sit far below Pareto γ {g_heavy}"
    );
    assert!(g_light < 0.4, "Weibull γ = {g_light}");
}

#[test]
fn pipeline_populates_extension_fields() {
    let records = WorkloadGenerator::new(ServerProfile::clarknet().with_scale(0.03))
        .seed(903)
        .generate()
        .unwrap();
    let ds = WeekDataset::from_records(records, DEFAULT_SESSION_THRESHOLD).unwrap();
    let model = FullWebModel::analyze("x", &ds, &AnalysisConfig::fast()).unwrap();

    // Moment estimate present on week-level tails.
    let check = |t: &TailAnalysis| {
        let m = t.moment.expect("moment estimate present");
        assert!(m.gamma.is_finite());
        assert!(m.k > 0);
    };
    for t in model.intra_session_week.iter() {
        check(t);
    }
    // Heavy-tailed bytes: γ should be clearly positive.
    let bytes_gamma = model.intra_session_week.bytes.moment.unwrap().gamma;
    assert!(bytes_gamma > 0.15, "bytes γ = {bytes_gamma}");

    // Ljung-Box battery recorded on testable intervals.
    let high = &model.levels[2];
    if let Some(outcome) = &high.request_poisson.hourly_uniform {
        assert_eq!(outcome.ljung_box.n, 4);
        // LRD request arrivals: Ljung-Box should reject at least as often
        // as the lag-1 test (it pools 10 lags).
        assert!(outcome.ljung_box.passes <= outcome.independence.passes + 1);
    }
    // Inter-arrival summary present and sane.
    let ia = model.request_level.inter_arrival.expect("summary present");
    assert!(ia.mean > 0.0);
    assert!(ia.min >= 0.0 && ia.max >= ia.median);
}

#[test]
fn cbmg_baseline_cannot_reproduce_table3() {
    // Fit a CBMG to the generator's sessions (using request counts as
    // repeated visits to a single "page" state won't do — use a 4-state
    // resource-class trail), then compare tails: the generator's planted
    // heavy tail survives in its own data but the CBMG's regenerated
    // sessions are light-tailed.
    let records = WorkloadGenerator::new(ServerProfile::nasa_pub2().with_scale(2.0))
        .seed(904)
        .generate()
        .unwrap();
    let ds = WeekDataset::from_records(records, DEFAULT_SESSION_THRESHOLD).unwrap();

    // Build state trails per session: resource id bucketed into 4 classes.
    let mut trails: Vec<Vec<usize>> = Vec::new();
    let mut by_client: std::collections::HashMap<u32, Vec<(f64, usize)>> =
        std::collections::HashMap::new();
    for r in ds.records() {
        by_client
            .entry(r.client)
            .or_default()
            .push((r.timestamp, (r.resource % 4) as usize));
    }
    for (_, mut events) in by_client {
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        trails.push(events.into_iter().map(|(_, s)| s).collect());
    }

    let cbmg = Cbmg::fit(&trails, 4).unwrap();
    let mut rng = StdRng::seed_from_u64(905);
    let cbmg_lengths: Vec<f64> = (0..trails.len())
        .map(|_| cbmg.generate_session(&mut rng, 100_000).len() as f64)
        .collect();
    let real_lengths: Vec<f64> = trails.iter().map(|t| t.len() as f64).collect();

    // Same mean (the CBMG matches first moments)...
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        (mean(&cbmg_lengths) / mean(&real_lengths) - 1.0).abs() < 0.25,
        "CBMG mean {} vs real {}",
        mean(&cbmg_lengths),
        mean(&real_lengths)
    );
    // ...but a much lighter tail: the real p999/mean ratio dwarfs the
    // CBMG's (geometric tails die fast).
    let p999 = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[(s.len() - 1) * 999 / 1000]
    };
    let real_ratio = p999(&real_lengths) / mean(&real_lengths);
    let cbmg_ratio = p999(&cbmg_lengths) / mean(&cbmg_lengths);
    assert!(
        real_ratio > 2.0 * cbmg_ratio,
        "real p999/mean {real_ratio} vs CBMG {cbmg_ratio}"
    );
}
