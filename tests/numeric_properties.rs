//! Property-based invariants of the numerical substrate: FFT inversion,
//! distribution CDF/quantile/sampler coherence, aggregation, and ACF
//! bounds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use webpuzzle::stats::dist::{
    BoundedPareto, ContinuousDistribution, Exponential, LogNormal, Pareto, Sampler,
};
use webpuzzle::timeseries::fft::{fft, ifft, Complex};
use webpuzzle::timeseries::{acf, aggregate};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fft_roundtrip_any_length(
        values in prop::collection::vec(-1000.0f64..1000.0, 2..300),
    ) {
        let original: Vec<Complex> =
            values.iter().map(|&v| Complex::new(v, -v * 0.5)).collect();
        let mut buf = original.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in original.iter().zip(&buf) {
            prop_assert!((*a - *b).abs() < 1e-6, "roundtrip error at n = {}", values.len());
        }
    }

    #[test]
    fn fft_linearity(
        values in prop::collection::vec(-100.0f64..100.0, 4..128),
        scale in -5.0f64..5.0,
    ) {
        let mut a: Vec<Complex> =
            values.iter().map(|&v| Complex::from_real(v)).collect();
        let mut b: Vec<Complex> =
            values.iter().map(|&v| Complex::from_real(v * scale)).collect();
        fft(&mut a);
        fft(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.scale(scale) - *y).abs() < 1e-6);
        }
    }

    #[test]
    fn pareto_quantile_cdf_coherent(
        alpha in 0.3f64..4.0,
        k in 0.1f64..100.0,
        p in 0.001f64..0.999,
    ) {
        let d = Pareto::new(alpha, k).unwrap();
        let x = d.quantile(p);
        prop_assert!(x >= k);
        prop_assert!((d.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn bounded_pareto_support_and_coherence(
        alpha in 0.3f64..4.0,
        low in 0.1f64..10.0,
        span in 1.5f64..1000.0,
        p in 0.001f64..0.999,
    ) {
        let d = BoundedPareto::new(alpha, low, low * span).unwrap();
        let x = d.quantile(p);
        prop_assert!(x >= low && x <= low * span);
        prop_assert!((d.cdf(x) - p).abs() < 1e-9);
        // Mean lies within the support.
        prop_assert!(d.mean() >= low && d.mean() <= low * span);
    }

    #[test]
    fn lognormal_quantile_monotone(
        mu in -3.0f64..5.0,
        sigma in 0.1f64..3.0,
        p1 in 0.01f64..0.5,
        p2 in 0.5f64..0.99,
    ) {
        let d = LogNormal::new(mu, sigma).unwrap();
        prop_assert!(d.quantile(p1) <= d.quantile(p2));
    }

    #[test]
    fn exponential_memoryless_cdf(rate in 0.01f64..50.0, s in 0.0f64..5.0, t in 0.0f64..5.0) {
        let d = Exponential::new(rate).unwrap();
        // P[X > s+t] = P[X > s] P[X > t].
        let lhs = d.ccdf(s + t);
        let rhs = d.ccdf(s) * d.ccdf(t);
        prop_assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn aggregation_composes(values in prop::collection::vec(-50.0f64..50.0, 24..400)) {
        // Aggregating by 2 then 3 equals aggregating by 6 on the common
        // prefix.
        let by6 = aggregate(&values, 6).unwrap();
        let by2 = aggregate(&values, 2).unwrap();
        let by2then3 = aggregate(&by2, 3).unwrap();
        for (a, b) in by6.iter().zip(&by2then3) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn acf_lag_zero_unity_and_bounded(
        values in prop::collection::vec(-100.0f64..100.0, 16..200),
    ) {
        // Skip degenerate constant vectors.
        let spread = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-9);
        let r = acf(&values, values.len() / 4).unwrap();
        prop_assert!((r[0] - 1.0).abs() < 1e-12);
        for (lag, v) in r.iter().enumerate() {
            prop_assert!(v.abs() <= 1.0 + 1e-9, "lag {lag}: {v}");
        }
    }

    #[test]
    fn samplers_stay_in_support(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Pareto::new(1.5, 2.0).unwrap();
        let bp = BoundedPareto::new(1.1, 1.0, 100.0).unwrap();
        let e = Exponential::new(3.0).unwrap();
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        for _ in 0..50 {
            prop_assert!(p.sample(&mut rng) >= 2.0);
            let b = bp.sample(&mut rng);
            prop_assert!((1.0..=100.0).contains(&b));
            prop_assert!(e.sample(&mut rng) >= 0.0);
            prop_assert!(ln.sample(&mut rng) > 0.0);
        }
    }
}

#[test]
fn fgn_autocovariance_is_positive_definite_in_practice() {
    // The Davies-Harte construction requires non-negative circulant
    // eigenvalues; verify the generator works across the full H range (it
    // clamps tiny negatives, so success = no NaNs and correct variance
    // scale).
    for &h in &[0.05, 0.3, 0.5, 0.7, 0.95] {
        // A single strongly-LRD path has a very noisy sample variance;
        // average the second moment over several independent paths.
        let mut second_moment = 0.0;
        let paths = 8;
        for seed in 0..paths {
            let x = webpuzzle::lrd::fgn::FgnGenerator::new(h)
                .unwrap()
                .seed(seed)
                .generate(4_096)
                .unwrap();
            assert!(x.iter().all(|v| v.is_finite()), "H = {h}");
            second_moment += x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64;
        }
        second_moment /= paths as f64;
        assert!(
            (second_moment - 1.0).abs() < 0.25,
            "H = {h}: E[X²] ≈ {second_moment}"
        );
    }
}
