//! End-to-end pipeline validation: the FULL-Web pipeline run on synthetic
//! workloads with known ground truth must reach the paper's qualitative
//! conclusions — and must NOT reach them on the Poisson negative control.

use webpuzzle::core::{AnalysisConfig, FullWebModel, PoissonVerdict};
use webpuzzle::weblog::{WeekDataset, DEFAULT_SESSION_THRESHOLD};
use webpuzzle::workload::{ArrivalModel, ServerProfile, WorkloadGenerator};

fn analyze(profile: ServerProfile, seed: u64) -> FullWebModel {
    let records = WorkloadGenerator::new(profile)
        .seed(seed)
        .generate()
        .expect("generation succeeds");
    let ds = WeekDataset::from_records(records, DEFAULT_SESSION_THRESHOLD)
        .expect("records fit the week");
    FullWebModel::analyze("test", &ds, &AnalysisConfig::fast()).expect("pipeline runs")
}

#[test]
fn lrd_workload_is_flagged_lrd_at_request_level() {
    // KPSS loses power against the trend as bins coarsen (the 60 s fast
    // config dilutes it); 10 s bins keep the paper's conclusion visible
    // while staying quick.
    let cfg = AnalysisConfig {
        bin_width: 10.0,
        ..AnalysisConfig::fast()
    };
    let records = WorkloadGenerator::new(ServerProfile::clarknet().with_scale(0.05))
        .seed(1)
        .generate()
        .expect("generation succeeds");
    let ds = WeekDataset::from_records(records, DEFAULT_SESSION_THRESHOLD)
        .expect("records fit the week");
    let model = FullWebModel::analyze("test", &ds, &cfg).expect("pipeline runs");
    assert!(
        model.request_level.long_range_dependent(),
        "request level should be LRD:\n{}",
        model.request_level.hurst_stationary
    );
    // Raw nonstationarity detected, stationarized accepted (1% level).
    assert!(model.request_level.kpss_raw.nonstationary_5pct());
    assert!(!model.request_level.kpss_stationary.nonstationary_1pct());
    // The diurnal cycle is found.
    let period = model.request_level.period_seconds.expect("period detected");
    assert!((period - 86_400.0).abs() < 10_000.0, "period {period}");
}

#[test]
fn poisson_control_is_not_flagged_lrd() {
    // Same profile, arrivals forced Poisson, flat envelope, and *light*
    // tails everywhere (session structure could otherwise induce LRD).
    let profile = ServerProfile::clarknet()
        .with_scale(0.05)
        .with_arrival(ArrivalModel::Poisson)
        .with_seasonality(0.0, 0.0)
        .expect("valid seasonality");
    let model = analyze(profile, 2);
    // Session *arrival* process must look non-LRD (sessions are seeded by a
    // Poisson stream).
    let h = model
        .inter_session
        .hurst_stationary
        .whittle
        .expect("whittle runs")
        .h;
    assert!(h < 0.6, "Poisson session arrivals estimated H = {h}");
}

#[test]
fn session_level_poisson_verdicts_follow_load() {
    // LRD arrivals: the busiest request-level intervals must reject
    // Poisson; sparse session-level intervals are NA (the NASA situation).
    let model = analyze(ServerProfile::wvu().with_scale(0.05), 3);
    let high = &model.levels[2];
    assert_eq!(
        high.request_poisson.hourly_verdict(),
        PoissonVerdict::Rejected,
        "busiest interval must reject Poisson at request level"
    );

    let nasa = analyze(ServerProfile::nasa_pub2(), 4);
    for lvl in &nasa.levels {
        assert_eq!(
            lvl.session_poisson.hourly_verdict(),
            PoissonVerdict::NotApplicable,
            "NASA-Pub2 session tests must be NA at this scale"
        );
    }
}

#[test]
fn poisson_sessions_pass_session_level_test_at_moderate_load() {
    // The CSEE-Low regime: Poisson session arrivals at a rate high enough
    // to test but low enough that ties are rare → consistent with Poisson.
    let profile = ServerProfile::csee()
        .with_scale(1.0)
        .with_arrival(ArrivalModel::Poisson)
        .with_seasonality(0.0, 0.0)
        .expect("valid seasonality");
    let model = analyze(profile, 5);
    let verdicts: Vec<PoissonVerdict> = model
        .levels
        .iter()
        .map(|l| l.session_poisson.hourly_verdict())
        .collect();
    assert!(
        verdicts.contains(&PoissonVerdict::ConsistentWithPoisson),
        "no interval consistent with Poisson: {verdicts:?}"
    );
}

#[test]
fn intra_session_tails_recovered_from_generator_truth() {
    let profile = ServerProfile::clarknet().with_scale(0.1);
    let planted_req_alpha = profile.requests_per_session().tail_alpha();
    let planted_bytes_alpha = profile.bytes_per_request().alpha();
    let model = analyze(profile, 6);

    let req = model
        .intra_session_week
        .requests
        .llcd
        .expect("requests/session fits");
    assert!(
        (req.alpha - planted_req_alpha).abs() < 0.6,
        "requests/session: planted α = {planted_req_alpha}, got {}",
        req.alpha
    );

    let bytes = model
        .intra_session_week
        .bytes
        .llcd
        .expect("bytes/session fits");
    assert!(
        (bytes.alpha - planted_bytes_alpha).abs() < 0.6,
        "bytes/session: planted α = {planted_bytes_alpha}, got {}",
        bytes.alpha
    );
    // Bytes per session inherit the per-request byte tail, which is heavier
    // than the request-count tail for ClarkNet (1.84 < 2.59) — the Table 4
    // vs Table 3 ordering.
    assert!(bytes.alpha < req.alpha + 0.3);
}

#[test]
fn model_json_roundtrip_through_public_api() {
    let model = analyze(ServerProfile::nasa_pub2().with_scale(0.5), 7);
    let json = model.to_json().expect("serializes");
    let back: FullWebModel = serde_json::from_str(&json).expect("parses");
    assert_eq!(model, back);
}
