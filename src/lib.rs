//! # webpuzzle
//!
//! A Rust reproduction of *"A Contribution Towards Solving the Web Workload
//! Puzzle"* (Goševa-Popstojanova, Li, Wang, Sangle — DSN 2006): rigorous
//! request-level and session-level Web workload characterization.
//!
//! This facade crate re-exports the whole suite:
//!
//! * [`stats`] — distributions, regression, KPSS / Anderson-Darling /
//!   binomial meta-tests.
//! * [`timeseries`] — event binning, ACF, aggregation, detrending,
//!   seasonality, FFT, periodogram.
//! * [`lrd`] — the five Hurst-exponent estimators (Variance-time, R/S,
//!   Periodogram, Whittle, Abry-Veitch), aggregation sweeps, and fractional
//!   Gaussian noise synthesis.
//! * [`heavytail`] — LLCD regression, Hill plots, and Downey's curvature
//!   test for Pareto-vs-lognormal discrimination.
//! * [`weblog`] — Common Log Format parsing, log merging, sessionization,
//!   and week-dataset handling.
//! * [`workload`] — synthetic workload generation calibrated to the paper's
//!   four server profiles.
//! * [`core`] — the FULL-Web analysis pipeline tying it all together.
//! * [`stream`] — one-pass, bounded-memory streaming analysis: chunked CLF
//!   reading, TTL sessionization, and online estimators.
//!
//! # Quickstart
//!
//! ```
//! use webpuzzle::workload::{ServerProfile, WorkloadGenerator};
//! use webpuzzle::weblog::WeekDataset;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small synthetic workload for the CSEE-like profile.
//! let profile = ServerProfile::csee().with_scale(0.02);
//! let records = WorkloadGenerator::new(profile).seed(7).generate()?;
//! let dataset = WeekDataset::from_records(records, 1800.0)?;
//! println!(
//!     "{} requests in {} sessions",
//!     dataset.records().len(),
//!     dataset.sessions().len()
//! );
//! # Ok(())
//! # }
//! ```

pub use webpuzzle_core as core;
pub use webpuzzle_heavytail as heavytail;
pub use webpuzzle_lrd as lrd;
pub use webpuzzle_stats as stats;
pub use webpuzzle_stream as stream;
pub use webpuzzle_timeseries as timeseries;
pub use webpuzzle_weblog as weblog;
pub use webpuzzle_workload as workload;
