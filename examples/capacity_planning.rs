//! Capacity planning under long-range dependent vs Poisson request
//! arrivals.
//!
//! §4 of the paper concludes that Web request arrivals are long-range
//! dependent, so "several Web performance models which used queuing
//! networks … are based on incorrect assumptions and most likely provide
//! misleading results." This example shows the mistake concretely: the same
//! mean request rate fed into the same fixed-capacity server produces
//! dramatically different backlog tails when arrivals are LRD.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use webpuzzle::weblog::SECONDS_PER_WEEK;
use webpuzzle::workload::{generate_session_starts, ArrivalModel};

/// Requests generated per simulated week.
const REQUESTS: usize = 600_000;

// Fluid queue: per-second arrivals against a fixed service capacity.
fn backlog_profile(arrivals: &[f64], capacity: f64) -> (f64, f64, f64) {
    let mut counts = vec![0u32; SECONDS_PER_WEEK as usize];
    for &t in arrivals {
        counts[t as usize] += 1;
    }
    let mut backlog = 0.0f64;
    let mut trace = Vec::with_capacity(counts.len());
    for &c in &counts {
        backlog = (backlog + c as f64 - capacity).max(0.0);
        trace.push(backlog);
    }
    trace.sort_by(|a, b| a.partial_cmp(b).expect("finite backlog"));
    let q = |p: f64| trace[((trace.len() - 1) as f64 * p) as usize];
    (q(0.5), q(0.99), trace[trace.len() - 1])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mean_rate = REQUESTS as f64 / SECONDS_PER_WEEK;
    println!(
        "mean arrival rate {mean_rate:.2} req/s; flat envelope (no diurnal cycle) so\n\
         the only difference between the scenarios is the correlation structure.\n"
    );

    let mut rng = StdRng::seed_from_u64(9);
    let poisson = generate_session_starts(&ArrivalModel::Poisson, REQUESTS, 0.0, 0.0, &mut rng)?;
    let lrd = generate_session_starts(
        &ArrivalModel::FgnCox { h: 0.85, cv: 0.7 },
        REQUESTS,
        0.0,
        0.0,
        &mut rng,
    )?;

    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "arrivals", "capacity", "p50 backlog", "p99 backlog", "max backlog"
    );
    for utilization in [0.7, 0.8, 0.9] {
        let capacity = mean_rate / utilization;
        for (name, stream) in [("Poisson", &poisson), ("LRD (H=0.85)", &lrd)] {
            let (p50, p99, max) = backlog_profile(stream, capacity);
            println!(
                "{:<22} {:>11.2}/s {:>12.1} {:>12.1} {:>12.1}",
                format!("{name} @ ρ={utilization}"),
                capacity,
                p50,
                p99,
                max
            );
        }
    }

    println!(
        "\ntakeaway: at equal utilization the LRD stream's p99/max backlog is an\n\
         order of magnitude worse — M/M/1-style provisioning sized on the mean\n\
         rate (the Poisson row) badly underestimates the headroom a real Web\n\
         server needs."
    );
    Ok(())
}
