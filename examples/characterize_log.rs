//! Characterize a real (or synthetic) Common Log Format access log.
//!
//! ```text
//! cargo run --release --example characterize_log -- /path/to/access.log [base-epoch]
//! ```
//!
//! With no arguments, the example writes a small synthetic CLF log to a
//! temporary file first and then analyzes it — demonstrating the full
//! round trip the paper's Figure 1 pipeline performs: raw log text → parsed
//! records → sessions → statistical characterization.

use std::fs;
use std::io::Write as _;

use webpuzzle::core::{AnalysisConfig, FullWebModel};
use webpuzzle::weblog::clf::{format_line, parse_log};
use webpuzzle::weblog::{WeekDataset, DEFAULT_SESSION_THRESHOLD};
use webpuzzle::workload::{ServerProfile, WorkloadGenerator};

/// 2004-01-12 00:00:00 UTC — the start date of the paper's WVU log.
const DEFAULT_BASE_EPOCH: i64 = 1_073_865_600;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let (path, base_epoch) = match args.next() {
        Some(p) => (
            p,
            args.next()
                .map(|s| s.parse::<i64>())
                .transpose()?
                .unwrap_or(DEFAULT_BASE_EPOCH),
        ),
        None => (write_demo_log()?, DEFAULT_BASE_EPOCH),
    };

    println!("parsing {path}…");
    let text = fs::read_to_string(&path)?;
    let records = parse_log(&text, base_epoch)?;
    println!("parsed {} records", records.len());

    let dataset = WeekDataset::from_records(records, DEFAULT_SESSION_THRESHOLD)?;
    let model = FullWebModel::analyze(&path, &dataset, &AnalysisConfig::fast())?;
    println!("\n{model}");
    Ok(())
}

// Generate a small synthetic log and serialize it as CLF text.
fn write_demo_log() -> Result<String, Box<dyn std::error::Error>> {
    let profile = ServerProfile::clarknet().with_scale(0.01);
    let records = WorkloadGenerator::new(profile).seed(7).generate()?;
    let path = std::env::temp_dir().join("webpuzzle_demo_access.log");
    let mut file = fs::File::create(&path)?;
    for r in &records {
        writeln!(file, "{}", format_line(r, DEFAULT_BASE_EPOCH))?;
    }
    println!(
        "no log supplied — wrote a {}-line synthetic CLF log to {}",
        records.len(),
        path.display()
    );
    Ok(path.display().to_string())
}
