//! Quickstart: generate a synthetic week of Web traffic, sessionize it, and
//! run the FULL-Web characterization pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use webpuzzle::core::{AnalysisConfig, FullWebModel};
use webpuzzle::weblog::{WeekDataset, DEFAULT_SESSION_THRESHOLD};
use webpuzzle::workload::{ServerProfile, WorkloadGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a server profile (CSEE: the departmental-server preset) and
    //    scale it down so this example runs in seconds.
    let profile = ServerProfile::csee().with_scale(0.05);
    println!(
        "generating ~{} sessions (≈{} requests) for profile {}…",
        profile.target_sessions(),
        profile.expected_requests() as u64,
        profile.name()
    );

    // 2. Generate one week of log records and build the dataset (requests
    //    sorted, sessions derived with the paper's 30-minute threshold).
    let records = WorkloadGenerator::new(profile).seed(42).generate()?;
    let dataset = WeekDataset::from_records(records, DEFAULT_SESSION_THRESHOLD)?;
    let (requests, sessions, mb) = dataset.summary();
    println!("dataset: {requests} requests, {sessions} sessions, {mb:.0} MB");

    // 3. Run the full pipeline: stationarity tests, Hurst estimator battery,
    //    Poisson tests, and intra-session heavy-tail analysis.
    //    `AnalysisConfig::fast()` uses 60-second bins to keep this example
    //    quick; drop to `AnalysisConfig::default()` for the paper's
    //    1-second resolution.
    let model = FullWebModel::analyze("CSEE", &dataset, &AnalysisConfig::fast())?;

    // 4. The model prints as a readable report and serializes as JSON.
    println!("\n{model}");
    let json = model.to_json().map_err(std::io::Error::other)?;
    println!("JSON report: {} bytes (first 200 shown)", json.len());
    println!("{}…", &json[..200.min(json.len())]);
    Ok(())
}
