//! Session-based admission control under Poisson vs long-range dependent
//! session arrivals.
//!
//! The paper shows (§5.1) that Web *session arrivals* are long-range
//! dependent, and (§5.2.1) that session lengths are heavy-tailed rather
//! than exponential — while the session-based admission control of
//! Cherkasova & Phaal [5, 6] was evaluated under Poisson/exponential
//! assumptions. This example runs the same admission controller (reject new
//! sessions when the server already holds `CAPACITY` active sessions)
//! against both assumptions and against the paper's measured reality.
//!
//! Two effects are separated deliberately:
//!
//! * **Service-time insensitivity.** For Poisson arrivals, the blocking
//!   probability of a loss system depends on the service distribution only
//!   through its mean (Erlang-B insensitivity) — so swapping exponential
//!   durations for equal-mean Pareto durations barely moves rejections.
//!   The exponential-duration assumption is "wrong but lucky" *for this
//!   single metric*.
//! * **Arrival correlation is NOT insensitive.** Making the arrivals LRD
//!   (what the paper actually measured) inflates rejections and blockade
//!   episodes dramatically at identical offered load — this is the error
//!   that breaks Erlang-style provisioning.
//!
//! ```text
//! cargo run --release --example admission_control
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use webpuzzle::stats::dist::{ContinuousDistribution, Exponential, Pareto, Sampler};
use webpuzzle::weblog::SECONDS_PER_WEEK;
use webpuzzle::workload::{generate_session_starts, ArrivalModel};

/// Concurrent-session capacity of the simulated server.
const CAPACITY: usize = 60;
/// Mean session duration in seconds (all duration models share it).
const MEAN_DURATION: f64 = 600.0;
/// Offered sessions per week, sized for ~90% nominal utilization.
const SESSIONS: usize = (0.9 * CAPACITY as f64 / MEAN_DURATION * SECONDS_PER_WEEK) as usize;

#[derive(Debug, Default)]
struct Outcome {
    offered: u64,
    rejected: u64,
    longest_blockade: f64,
}

fn simulate(arrivals: &[f64], duration: &mut dyn FnMut(&mut StdRng) -> f64, seed: u64) -> Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
    let mut out = Outcome::default();
    let mut blockade_start: Option<f64> = None;
    for &t in arrivals {
        while let Some(&Reverse(end_bits)) = active.peek() {
            if f64::from_bits(end_bits) <= t {
                active.pop();
            } else {
                break;
            }
        }
        out.offered += 1;
        if active.len() >= CAPACITY {
            out.rejected += 1;
            if blockade_start.is_none() {
                blockade_start = Some(t);
            }
        } else {
            if let Some(start) = blockade_start.take() {
                out.longest_blockade = out.longest_blockade.max(t - start);
            }
            active.push(Reverse((t + duration(&mut rng)).to_bits()));
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "capacity {CAPACITY} concurrent sessions, mean duration {MEAN_DURATION} s,\n\
         {SESSIONS} sessions over one week (nominal utilization 90%)\n"
    );

    let mut rng = StdRng::seed_from_u64(1);
    let poisson_arrivals =
        generate_session_starts(&ArrivalModel::Poisson, SESSIONS, 0.0, 0.0, &mut rng)?;
    let lrd_arrivals = generate_session_starts(
        &ArrivalModel::FgnCox { h: 0.85, cv: 0.7 },
        SESSIONS,
        0.0,
        0.0,
        &mut rng,
    )?;

    let exp = Exponential::from_mean(MEAN_DURATION)?;
    let alpha = 1.67; // the paper's WVU-High session-length tail index
    let pareto = Pareto::new(alpha, MEAN_DURATION * (alpha - 1.0) / alpha)?;
    assert!((pareto.mean() - MEAN_DURATION).abs() < 1e-9);

    println!(
        "{:<44} {:>9} {:>8} {:>16}",
        "scenario (arrivals × durations)", "rejected", "rej %", "worst blockade(s)"
    );
    let scenarios: [(&str, &[f64], bool); 4] = [
        (
            "Poisson × exponential (the [5,6] model)",
            &poisson_arrivals,
            false,
        ),
        (
            "Poisson × Pareto α=1.67 (insensitivity)",
            &poisson_arrivals,
            true,
        ),
        ("LRD H=0.85 × exponential", &lrd_arrivals, false),
        (
            "LRD H=0.85 × Pareto α=1.67 (measured reality)",
            &lrd_arrivals,
            true,
        ),
    ];
    for (name, arrivals, heavy) in scenarios {
        let mut dur: Box<dyn FnMut(&mut StdRng) -> f64> = if heavy {
            Box::new(|rng| pareto.sample(rng))
        } else {
            Box::new(|rng| exp.sample(rng))
        };
        let o = simulate(arrivals, &mut *dur, 42);
        println!(
            "{:<44} {:>9} {:>7.2}% {:>16.0}",
            name,
            o.rejected,
            100.0 * o.rejected as f64 / o.offered as f64,
            o.longest_blockade
        );
    }

    println!(
        "\ntakeaway: swapping the *duration* model barely moves the loss rate\n\
         (Erlang-B insensitivity), but swapping the *arrival* model — the LRD\n\
         property the paper actually measured — multiplies rejections and\n\
         stretches blockade episodes at identical offered load. Admission\n\
         thresholds tuned under the Poisson/exponential assumption are wrong."
    );
    Ok(())
}
