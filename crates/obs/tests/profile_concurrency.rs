//! Flight-recorder behaviour under threads: aggregation across worker
//! threads, reset while spans and traces are live, and the determinism
//! of 1-in-N sampling. Profiler and span state are process-global, so
//! the tests serialize on one lock (this file is its own test binary,
//! but `cargo test` still runs `#[test]`s in parallel threads).

use std::sync::Mutex;

use webpuzzle_obs as obs;
use webpuzzle_obs::profile::{self, Stage};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn spans_and_profile_aggregate_across_threads() {
    let _guard = locked();
    obs::reset();
    profile::enable(1);

    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let _span = obs::spans::enter("worker");
                    // Traces are thread-local until finish_trace folds
                    // them into the shared histograms.
                    profile::begin_trace((t as u64) * PER_THREAD + i, i as f64);
                    profile::trace_add(Stage::Sessionize, 100);
                    profile::trace_add(Stage::Estimators, 50);
                    profile::finish_trace();
                    profile::record_stage_ns(Stage::WindowClose, 10);
                }
            });
        }
    });

    let report = profile::snapshot();
    let n = (THREADS as u64) * PER_THREAD;
    assert_eq!(report.records_sampled, n);
    let sess = report.stage("sessionize").expect("sessionize stage");
    assert_eq!(sess.count, n);
    assert_eq!(sess.total_ns, n * 100);
    let est = report.stage("estimators").expect("estimators stage");
    assert_eq!(est.count, n);
    assert_eq!(est.total_ns, n * 50);
    let close = report.stage("window_close").expect("window_close stage");
    assert_eq!(close.count, n);
    assert_eq!(close.total_ns, n * 10);

    let spans = obs::spans::snapshot();
    let worker = spans
        .iter()
        .find(|s| s.name == "worker")
        .expect("worker span");
    assert_eq!(worker.count, n);
    obs::reset();
}

#[test]
fn reset_with_live_guards_and_traces_does_not_panic() {
    let _guard = locked();
    obs::reset();
    profile::enable(1);

    // A span guard and a trace are live on this thread when another
    // thread resets the world out from under them.
    let span = obs::spans::enter("doomed");
    profile::begin_trace(7, 1.0);
    profile::trace_add(Stage::ClfParse, 500);

    std::thread::scope(|s| {
        s.spawn(obs::reset);
    });

    // The trace is thread-local, so it survives the reset; finishing it
    // lands in the freshly cleared (now disabled) state without panics.
    profile::trace_add(Stage::ClfParse, 500);
    profile::finish_trace();
    drop(span); // arena may have shrunk; Drop must tolerate that

    let report = profile::snapshot();
    assert!(!report.enabled, "reset disables profiling");
    let leaked = report.records_sampled;
    assert!(leaked <= 1);
    // The world is still usable afterwards.
    profile::enable(2);
    profile::begin_trace(0, 0.0);
    profile::trace_add(Stage::SourceRead, 1);
    profile::finish_trace();
    assert_eq!(profile::snapshot().records_sampled, leaked + 1);
    obs::reset();
}

#[test]
fn sampling_is_deterministic_across_runs() {
    let _guard = locked();

    // Synthetic per-record cost: varies with the index but is a pure
    // function of it, so two passes over the "stream" are identical.
    let cost = |i: u64| 100 + (i * 37) % 5_000;
    let run = || -> (Vec<u64>, u64) {
        obs::reset();
        profile::enable(8);
        profile::set_exemplar_capacity(1_024);
        for i in 0..1_000u64 {
            if profile::should_sample(i) {
                profile::begin_trace(i, i as f64);
                profile::trace_add(Stage::ClfParse, cost(i));
                profile::finish_trace();
            }
        }
        let report = profile::snapshot();
        let mut indexes: Vec<u64> = report.exemplars.iter().map(|e| e.record_index).collect();
        indexes.sort_unstable();
        (indexes, report.records_sampled)
    };

    let (first, sampled_first) = run();
    let (second, sampled_second) = run();
    assert_eq!(sampled_first, 125, "1-in-8 over 1000 records");
    assert_eq!(sampled_first, sampled_second);
    assert_eq!(first, second, "exemplar sets must be reproducible");
    // The sampling grid is exactly the multiples of N — record 0 first,
    // so short streams still yield at least one trace.
    assert!(first.iter().all(|i| i % 8 == 0));
    assert!(first.contains(&0));
    obs::reset();
}
