//! Property tests for the telemetry time-series store (`obs::tsdb`):
//! delta encoding must be bit-exact, ring wraparound must keep a
//! contiguous suffix with correct tick indices, downsampling must
//! preserve true bucket extremes, and a concurrent scraper must only
//! ever observe consistent, monotone history.
//!
//! The property tests drive *owned* [`Tsdb`] instances, so they run in
//! parallel freely; only the concurrent-scrape test touches the
//! process-global store (and nothing else in this binary does).

use std::time::Duration;

use proptest::prelude::*;
use webpuzzle_obs as obs;

use obs::metrics::SampleKind;
use obs::tsdb::{Tsdb, TsdbConfig};

/// An owned store with a test-sized cadence and no global budget
/// pressure (the budget path is exercised separately in unit tests).
fn store(dense_bytes: usize, coarse_every: u64, coarse_points: usize) -> Tsdb {
    Tsdb::new(TsdbConfig {
        interval: Duration::from_millis(100),
        dense_bytes,
        coarse_every,
        coarse_points,
        memory_budget_bytes: usize::MAX,
    })
}

/// Push one raw sample per tick for a single metric.
fn drive(st: &mut Tsdb, kind: SampleKind, raws: &[u64]) {
    for &raw in raws {
        st.ingest(&[("m".to_string(), kind, raw)]);
    }
}

fn kind_of(is_gauge: bool) -> SampleKind {
    if is_gauge {
        SampleKind::Gauge
    } else {
        SampleKind::Counter
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // With a ring far larger than the input, decode must reproduce
    // every pushed raw value verbatim — arbitrary bit patterns, so for
    // gauges this covers NaNs, infinities, and negative zero going
    // through the XOR delta path.
    #[test]
    fn dense_history_is_bit_exact(
        raws in collection::vec(any::<u64>(), 1..200),
        is_gauge in any::<bool>(),
    ) {
        let kind = kind_of(is_gauge);
        let mut st = store(1 << 20, 1 << 20, 8);
        drive(&mut st, kind, &raws);
        let got = st.dense_raw("m", 0).expect("series exists");
        prop_assert_eq!(got.len(), raws.len());
        for (i, ((tick, raw), want)) in got.iter().zip(&raws).enumerate() {
            prop_assert_eq!(*tick, i as u64 + 1, "ticks start at 1 and are contiguous");
            prop_assert_eq!(*raw, *want, "decode must be bit-exact at tick {}", tick);
        }
    }

    // A small ring forces wraparound: what remains must be a contiguous
    // *suffix* of the input, bit-exact, with tick indices that still
    // name the original positions, and the `since` cursor must slice
    // that suffix exactly. Eviction accounting must add up.
    #[test]
    fn wraparound_keeps_a_contiguous_bit_exact_suffix(
        raws in collection::vec(any::<u64>(), 50..300),
        is_gauge in any::<bool>(),
        dense_bytes in 64usize..512,
        cursor in 0u64..400,
    ) {
        let kind = kind_of(is_gauge);
        let mut st = store(dense_bytes, 1 << 20, 8);
        drive(&mut st, kind, &raws);
        let n = raws.len() as u64;
        let got = st.dense_raw("m", 0).expect("series exists");
        prop_assert!(!got.is_empty(), "the newest sample is always retained");
        prop_assert_eq!(got.last().expect("non-empty").0, n);
        let first = got[0].0;
        for (j, (tick, raw)) in got.iter().enumerate() {
            prop_assert_eq!(*tick, first + j as u64, "retained ticks are contiguous");
            prop_assert_eq!(*raw, raws[(*tick - 1) as usize], "suffix must stay bit-exact");
        }
        let after = st.dense_raw("m", cursor).expect("series exists");
        let want: Vec<(u64, u64)> = got.iter().copied().filter(|(t, _)| *t > cursor).collect();
        prop_assert_eq!(after, want, "cursor slicing must match post-hoc filtering");
        prop_assert_eq!(st.stats().evicted_samples, n - got.len() as u64);
    }

    // Every closed coarse bucket covers exactly `coarse_every` ticks;
    // its `last` is the final raw of that span and min/max are the true
    // extremes (numeric for counters, float-ordered for gauges).
    #[test]
    fn coarse_buckets_carry_true_extremes(
        raws in collection::vec(any::<u64>(), 1..200),
        is_counter in any::<bool>(),
        every in 1u64..13,
    ) {
        // Gauge raws are drawn as finite floats (not arbitrary bits):
        // the reference min/max below compares float values, which NaN
        // would derail (the store itself tolerates NaN — covered by the
        // bit-exactness properties above).
        let kind = kind_of(!is_counter);
        let raws: Vec<u64> = if is_counter {
            raws
        } else {
            raws.iter().map(|&r| (((r as f64) - (u64::MAX / 2) as f64) * 1e-3).to_bits()).collect()
        };
        let mut st = store(1 << 20, every, 1 << 16);
        drive(&mut st, kind, &raws);
        let buckets = st.coarse_raw("m", 0).expect("series exists");
        prop_assert_eq!(buckets.len(), raws.len() / every as usize);
        for (b_i, b) in buckets.iter().enumerate() {
            let end = (b_i as u64 + 1) * every;
            prop_assert_eq!(b.end_index, end, "buckets close on coarse_every boundaries");
            let span = &raws[(end - every) as usize..end as usize];
            prop_assert_eq!(b.last, span[span.len() - 1]);
            if is_counter {
                prop_assert_eq!(b.min, *span.iter().min().expect("non-empty"));
                prop_assert_eq!(b.max, *span.iter().max().expect("non-empty"));
            } else {
                let vals: Vec<f64> = span.iter().map(|&r| f64::from_bits(r)).collect();
                let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
                let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                prop_assert_eq!(f64::from_bits(b.min), min);
                prop_assert_eq!(f64::from_bits(b.max), max);
            }
        }
    }

    // The SLO engine's window-edge lookup: with full dense retention,
    // the value at-or-before tick i is exactly the i-th input (clamped
    // to the newest), and tick 0 — before any sample — is a miss.
    #[test]
    fn at_or_before_matches_the_input(
        raws in collection::vec(any::<u64>(), 1..150),
        is_gauge in any::<bool>(),
        probe in 0u64..200,
    ) {
        let kind = kind_of(is_gauge);
        let mut st = store(1 << 20, 5, 1 << 16);
        drive(&mut st, kind, &raws);
        let n = raws.len() as u64;
        prop_assert_eq!(st.raw_at_or_before("m", 0), None);
        if probe >= 1 {
            let want = raws[(probe.min(n) - 1) as usize];
            prop_assert_eq!(st.raw_at_or_before("m", probe), Some(want));
        }
    }
}

/// Scrape the global store from one thread while another samples a
/// live counter as fast as it can. Every query answer must be
/// internally consistent (contiguous ticks, all past the cursor) and
/// consecutive answers must be monotone — in cursor and, because a
/// counter only goes up, in decoded value.
#[test]
fn concurrent_scrape_while_sampling_is_consistent() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    obs::tsdb::install(TsdbConfig {
        interval: Duration::from_millis(1),
        dense_bytes: 512, // small ring: wrap under the reader's feet
        ..TsdbConfig::default()
    });
    let counter = obs::metrics::counter("props/live");
    let stop = Arc::new(AtomicBool::new(false));
    let writer = std::thread::spawn({
        let stop = Arc::clone(&stop);
        move || {
            while !stop.load(Ordering::Relaxed) {
                counter.add(3);
                obs::tsdb::sample_now();
            }
        }
    });

    let mut since = 0u64;
    let mut last_value = 0.0f64;
    let mut nonempty_answers = 0u32;
    for _ in 0..500 {
        let Some(r) = obs::tsdb::query("props/live", since, 0) else {
            continue; // first tick may not have landed yet
        };
        assert!(
            r.next >= since,
            "cursor went backwards: {} < {since}",
            r.next
        );
        let mut prev_index = since;
        let mut prev_value = last_value;
        for (i, p) in r.points.iter().enumerate() {
            assert!(p.index > since, "point at or before the cursor");
            if i > 0 {
                assert_eq!(p.index, prev_index + 1, "dense answer must be contiguous");
            }
            assert!(
                p.value >= prev_value,
                "counter went down: {} after {prev_value}",
                p.value
            );
            prev_index = p.index;
            prev_value = p.value;
        }
        if let Some(p) = r.points.last() {
            nonempty_answers += 1;
            since = r.next;
            last_value = p.value;
        }
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread");
    assert!(
        nonempty_answers > 0,
        "the reader never saw a sample despite a busy writer"
    );
    obs::tsdb::uninstall();
}
