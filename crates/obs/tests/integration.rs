//! Integration tests for the instrumentation layer: nested span timing,
//! concurrent metric updates, and report round-trips.
//!
//! Spans and metrics are process-global, so every test funnels through
//! one lock to stay deterministic under the parallel test runner.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use webpuzzle_obs as obs;

fn global_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[test]
fn nested_span_timing_is_monotonic() {
    let _guard = global_lock();
    obs::reset();

    {
        let _outer = obs::span!("it/outer");
        {
            let _inner = obs::span!("it/inner");
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let report = obs::RunReport::collect("test", None, serde::Value::Null, vec![]);
    let outer = report.find_span("it/outer").expect("outer recorded");
    let inner = report.find_span("it/inner").expect("inner recorded");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 1);
    // A parent's wall-clock covers all of its children's.
    assert!(
        outer.total_ms >= inner.total_ms,
        "outer {} ms < inner {} ms",
        outer.total_ms,
        inner.total_ms
    );
    // And the inner sleep is visible in both.
    assert!(inner.total_ms >= 4.0, "inner {} ms", inner.total_ms);
    assert!(outer.total_ms >= 6.0, "outer {} ms", outer.total_ms);
    // Nesting is structural, not just by name.
    assert_eq!(outer.children.len(), 1);
    assert_eq!(outer.children[0].name, "it/inner");
}

#[test]
fn repeated_spans_aggregate_instead_of_fanning_out() {
    let _guard = global_lock();
    obs::reset();

    for _ in 0..50 {
        let _span = obs::span!("it/loop_body");
    }
    let report = obs::RunReport::collect("test", None, serde::Value::Null, vec![]);
    let node = report.find_span("it/loop_body").expect("recorded");
    assert_eq!(node.count, 50);
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    let _guard = global_lock();
    obs::reset();

    const THREADS: u64 = 8;
    const INCREMENTS: u64 = 10_000;
    static OBSERVED_MAX: AtomicU64 = AtomicU64::new(0);

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                let counter = obs::metrics::counter("it/concurrent");
                for _ in 0..INCREMENTS {
                    counter.incr();
                }
                OBSERVED_MAX.fetch_max(counter.get(), Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    assert_eq!(
        obs::metrics::counter("it/concurrent").get(),
        THREADS * INCREMENTS
    );
    // Each thread saw at least its own increments at read time.
    assert!(OBSERVED_MAX.load(Ordering::Relaxed) >= INCREMENTS);
}

#[test]
fn run_report_round_trips_through_json() {
    let _guard = global_lock();
    obs::reset();

    {
        let _outer = obs::span!("it/rt_outer");
        let _inner = obs::span!("it/rt_inner");
    }
    obs::metrics::counter("it/rt_counter").add(7);
    obs::metrics::gauge("it/rt_gauge").set(2.5);
    let h = obs::metrics::histogram("it/rt_hist");
    for v in [0, 1, 3, 1000] {
        h.record(v);
    }

    let config = serde::Value::Object(vec![(
        "scale".to_string(),
        serde::Value::Num(serde::Number::F(0.05)),
    )]);
    let report = obs::RunReport::collect("roundtrip", Some(99), config, vec!["--json".to_string()]);
    let json = report.to_json_pretty();
    let back: obs::RunReport = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(report, back);

    assert_eq!(back.tool, "roundtrip");
    assert_eq!(back.seed, Some(99));
    let counter = back
        .counters
        .iter()
        .find(|c| c.name == "it/rt_counter")
        .expect("counter present");
    assert_eq!(counter.value, 7);
    let hist = back
        .histograms
        .iter()
        .find(|h| h.name == "it/rt_hist")
        .expect("histogram present");
    assert_eq!(hist.count, 4);
    assert_eq!(hist.sum, 1004);
    assert!(back.find_span("it/rt_inner").is_some());
}
