//! End-to-end test of the telemetry HTTP endpoint: start `obs::serve`
//! on an ephemeral port, scrape it with a raw `TcpStream` (no HTTP
//! client in the tree), and validate the Prometheus exposition rules a
//! real scraper depends on.
//!
//! Metrics are process-global; this file is its own test binary (own
//! process), and the tests here share one `#[test]` so the snapshot the
//! server renders is exactly what the test recorded.

use std::io::{Read, Write};
use std::net::TcpStream;

use webpuzzle_obs as obs;

/// Issue one `GET path` against the server and return (status line, body).
fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw.lines().next().unwrap_or_default().to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn serve_scrape_and_shutdown() {
    obs::reset();
    obs::metrics::counter("scrape/events").add(7);
    obs::metrics::sharded_counter("scrape/hot_loop").add(1000);
    obs::metrics::gauge("scrape/h_estimate").set(0.83);
    let hist = obs::metrics::histogram("scrape/latency");
    for v in [1u64, 3, 9, 100, 5000] {
        hist.record(v);
    }

    let server =
        obs::serve("127.0.0.1:0", obs::ReportContext::default()).expect("bind ephemeral port");
    let addr = server.local_addr();

    // /healthz is a plain liveness probe.
    let (status, body) = get(addr, "/healthz");
    assert!(status.contains("200"), "healthz status: {status}");
    assert_eq!(body, "ok\n");

    // /metrics follows the Prometheus text exposition rules.
    let (status, text) = get(addr, "/metrics");
    assert!(status.contains("200"), "metrics status: {status}");
    assert!(text.contains("# HELP webpuzzle_scrape_events_total"));
    assert!(text.contains("# TYPE webpuzzle_scrape_events_total counter"));
    assert!(text.contains("webpuzzle_scrape_events_total 7"));
    // Sharded counters export as one summed series.
    assert!(text.contains("webpuzzle_scrape_hot_loop_total 1000"));
    assert!(text.contains("webpuzzle_scrape_h_estimate 0.83"));

    // Every series has HELP and TYPE lines preceding its samples.
    for family in ["webpuzzle_scrape_events_total", "webpuzzle_scrape_latency"] {
        let help = text
            .lines()
            .position(|l| l.starts_with(&format!("# HELP {family}")))
            .unwrap_or_else(|| panic!("missing HELP for {family}"));
        let ty = text
            .lines()
            .position(|l| l.starts_with(&format!("# TYPE {family}")))
            .unwrap_or_else(|| panic!("missing TYPE for {family}"));
        let first_sample = text
            .lines()
            .position(|l| l.starts_with(family) && !l.starts_with('#'))
            .unwrap_or_else(|| panic!("missing samples for {family}"));
        assert!(help < ty && ty < first_sample, "{family} ordering");
    }

    // Histogram buckets must be cumulative (monotone non-decreasing in
    // `le` order) and end with le="+Inf" equal to _count.
    let bucket_counts: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with("webpuzzle_scrape_latency_bucket"))
        .map(|l| l.rsplit(' ').next().unwrap().parse().expect("bucket count"))
        .collect();
    assert!(bucket_counts.len() >= 2, "expected several buckets: {text}");
    assert!(
        bucket_counts.windows(2).all(|w| w[0] <= w[1]),
        "buckets not cumulative: {bucket_counts:?}"
    );
    let inf_line = text
        .lines()
        .find(|l| l.contains("le=\"+Inf\""))
        .expect("+Inf bucket");
    assert!(
        inf_line.ends_with(" 5"),
        "+Inf bucket should be total count: {inf_line}"
    );
    assert!(text.contains("webpuzzle_scrape_latency_count 5"));

    // Unknown paths 404; non-GET methods 405.
    let (status, _) = get(addr, "/nope");
    assert!(status.contains("404"), "{status}");
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");

    // /events serves the drift-event ring as a JSON array with a
    // `?since=` cursor for incremental polling.
    let seq = obs::events::publish(obs::events::Event::new(
        obs::events::Severity::Warn,
        "cusum",
        "stream/arrival_rate",
        3,
        1_000_000.0,
        1.0,
        2.5,
        6.1,
        5.0,
        "rate step".to_string(),
    ));
    let (status, body) = get(addr, "/events");
    assert!(status.contains("200"), "events status: {status}");
    let all: Vec<obs::events::Event> = serde_json::from_str(&body).expect("events parse");
    assert!(all.iter().any(|e| e.seq == seq && e.detector == "cusum"));
    let (_, body) = get(addr, &format!("/events?since={seq}"));
    let later: Vec<obs::events::Event> = serde_json::from_str(&body).expect("events parse");
    assert!(later.is_empty(), "cursor past newest event: {later:?}");
    // The per-severity counter family is live on /metrics.
    let (_, text) = get(addr, "/metrics");
    assert!(
        text.contains("webpuzzle_events_total{severity=\"warn\"} 1"),
        "missing labeled events_total: {text}"
    );

    // /report returns the current RunReport as JSON and round-trips.
    let (status, body) = get(addr, "/report");
    assert!(status.contains("200"), "{status}");
    let report: obs::RunReport = serde_json::from_str(&body).expect("report parses");
    assert!(report
        .counters
        .iter()
        .any(|c| c.name == "scrape/events" && c.value == 7));

    // /profile serves the flight recorder: JSON snapshot by default,
    // folded flamegraph stacks with ?format=folded.
    obs::profile::enable(4);
    obs::profile::begin_trace(0, 1.5);
    obs::profile::trace_add(obs::profile::Stage::ClfParse, 1_000);
    obs::profile::finish_trace();
    obs::profile::record_stage_ns(obs::profile::Stage::WindowClose, 2_000_000);
    let (status, body) = get(addr, "/profile");
    assert!(status.contains("200"), "profile status: {status}");
    let prof: obs::profile::ProfileReport = serde_json::from_str(&body).expect("profile parses");
    assert_eq!(prof.schema, obs::profile::PROFILE_SCHEMA_VERSION);
    assert!(prof.enabled);
    assert_eq!(prof.sample_every, 4);
    assert_eq!(prof.records_sampled, 1);
    assert_eq!(prof.stage("clf_parse").expect("clf_parse stage").count, 1);
    assert_eq!(prof.exemplars.len(), 1);
    let (status, folded) = get(addr, "/profile?format=folded");
    assert!(status.contains("200"), "folded status: {status}");
    assert!(folded.contains("pipeline;clf_parse 1000"), "{folded}");
    assert!(folded.contains("pipeline;window_close 2000000"), "{folded}");

    // /timeseries answers 503 until the history store is installed.
    let (status, _) = get(addr, "/timeseries");
    assert!(status.contains("503"), "uninstalled tsdb: {status}");

    // Install the store, take two samples, and range-query a counter.
    obs::tsdb::install(obs::tsdb::TsdbConfig {
        interval: std::time::Duration::from_millis(50),
        ..obs::tsdb::TsdbConfig::default()
    });
    obs::tsdb::sample_now();
    obs::metrics::counter("scrape/events").add(3); // 7 -> 10
    obs::tsdb::sample_now();
    let (status, body) = get(addr, "/timeseries?metric=scrape/events");
    assert!(status.contains("200"), "timeseries status: {status}");
    let range: obs::tsdb::RangeResult = serde_json::from_str(&body).expect("range parses");
    assert_eq!(range.metric, "scrape/events");
    assert_eq!(range.kind, "counter");
    assert_eq!(range.tier, "dense");
    assert!(range.points.len() >= 2, "{range:?}");
    assert_eq!(range.points.last().unwrap().value, 10.0);
    // The `next` cursor polls incrementally: nothing new yet.
    let (_, body) = get(
        addr,
        &format!("/timeseries?metric=scrape/events&since={}", range.next),
    );
    let tail: obs::tsdb::RangeResult = serde_json::from_str(&body).expect("range parses");
    assert!(tail.points.is_empty(), "{tail:?}");
    // Discovery listing names the series.
    let (status, body) = get(addr, "/timeseries");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("scrape/events"), "{body}");
    // Unknown series 404.
    let (status, _) = get(addr, "/timeseries?metric=no/such/series");
    assert!(status.contains("404"), "{status}");

    // /healthz?deep=1 serves the deep-health rollup (healthy here: no
    // SLO engine installed, nothing degraded).
    let (status, body) = get(addr, "/healthz?deep=1");
    assert!(status.contains("200"), "deep healthz: {status}");
    let health: obs::slo::DeepHealth = serde_json::from_str(&body).expect("health parses");
    assert_eq!(health.status, "healthy");
    assert!(!health.slo_installed);
    assert_eq!(health.subsystems.len(), obs::slo::SUBSYSTEMS.len());
    assert!(health.telemetry.is_some(), "store stats present");
    // Plain /healthz stays the cheap liveness probe.
    let (_, body) = get(addr, "/healthz");
    assert_eq!(body, "ok\n");
    obs::tsdb::uninstall();

    // Shutdown joins the listener thread; the port must stop answering.
    server.shutdown();
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A TIME_WAIT race can still accept the connect; a request
            // must at least get no response.
            let mut s = TcpStream::connect(addr).unwrap();
            let _ = write!(
                s,
                "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
            );
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap_or(0) == 0
        },
        "server still answering after shutdown"
    );
}
