//! Hardening tests for the telemetry endpoint: a half-open (slowloris
//! style) client must cost the handler thread at most one read timeout,
//! oversized requests must be rejected with a proper status, and normal
//! scrapes must keep working throughout.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use webpuzzle_obs as obs;
use webpuzzle_obs::http::HttpLimits;

fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw.lines().next().unwrap_or_default().to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn half_open_connection_cannot_pin_the_server() {
    let limits = HttpLimits {
        read_timeout: Some(Duration::from_millis(250)),
        write_timeout: Some(Duration::from_millis(250)),
        max_head_bytes: 1024,
        ..HttpLimits::default()
    };
    let server = obs::serve_with_limits("127.0.0.1:0", obs::ReportContext::default(), limits)
        .expect("bind ephemeral port");
    let addr = server.local_addr();

    // A half-open client: sends a partial request line, then goes quiet
    // while keeping the socket open.
    let mut stuck = TcpStream::connect(addr).expect("connect half-open client");
    stuck.write_all(b"GET /metr").expect("partial write");

    // A well-behaved scrape right behind it must still be answered; the
    // single handler thread may be pinned for at most one read timeout.
    let started = Instant::now();
    let (status, body) = get(addr, "/healthz");
    let waited = started.elapsed();
    assert!(status.contains("200"), "healthz under slowloris: {status}");
    assert_eq!(body, "ok\n");
    assert!(
        waited < Duration::from_secs(2),
        "scrape delayed {waited:?}; read timeout did not bound the half-open peer"
    );

    // The half-open socket was dropped without a response.
    stuck
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut out = Vec::new();
    let got = stuck.read_to_end(&mut out).unwrap_or(0);
    assert_eq!(got, 0, "half-open peer received bytes: {out:?}");

    // Oversized request heads get a 431, not an unbounded buffer. Send
    // just past the cap (and no head terminator) so the server consumes
    // everything we wrote before rejecting — over-stuffing further would
    // risk an RST racing the response off the wire.
    let mut big = TcpStream::connect(addr).expect("connect oversized client");
    big.write_all(b"GET / HTTP/1.1\r\n").unwrap();
    let filler = vec![b'a'; 1200];
    big.write_all(&filler).unwrap();
    let mut raw = String::new();
    big.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    big.read_to_string(&mut raw).expect("read 431 response");
    assert!(raw.starts_with("HTTP/1.1 431"), "{raw}");

    // Malformed requests get a 400.
    let mut bad = TcpStream::connect(addr).expect("connect malformed client");
    bad.write_all(b"NOTARGET\r\n\r\n").unwrap();
    let mut raw = String::new();
    bad.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    bad.read_to_string(&mut raw).expect("read 400 response");
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

    // And the server is still healthy after all of that.
    let (status, _) = get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    server.shutdown();
}
