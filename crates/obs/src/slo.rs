//! SLO engine: burn-rate alerting and the deep-health rollup over the
//! telemetry history ([`crate::tsdb`]).
//!
//! Objectives load from a committed `slo.toml` (same deliberately small
//! TOML subset as `paper_targets.toml`, extended with single-line
//! string arrays) and come in three kinds:
//!
//! - `ratio` — a bad-event fraction over counter deltas:
//!   `bad / (bad + good)` across the alerting window, guarded by
//!   `min_events` so an idle window cannot alarm on noise;
//! - `gauge_max` / `gauge_min` — the fraction of samples in the window
//!   where a gauge crosses `limit` (above / below respectively).
//!
//! Each objective is evaluated Google-SRE style with **two window
//! pairs** computed from the rings: a *fast* pair (defaults 5 m short /
//! 1 h long, burn ≥ 14.4× the error budget in **both** windows pages
//! `critical`) and a *slow* pair (defaults 1 h / 6 h, burn ≥ 6× warns).
//! Requiring both windows keeps a brief spike from paging while the
//! short window makes a real page fire within one sampling tick of the
//! budget burning hot. Windows shorter than retained history evaluate
//! over what exists (partial windows), which is what lets a CI drill
//! observe an alert within seconds of injected shed.
//!
//! State transitions publish typed `slo/<name>` events through
//! [`crate::events`] (`warn`/`critical` on the way up, `info` on
//! recovery), so alerts ride the existing ring, JSONL sink,
//! `/events?since=` endpoint, and `--alert-on` exit codes unchanged.
//!
//! The deep-health rollup ([`deep_health`], served at
//! `/healthz?deep=1`) folds active alerts per subsystem — `ingest`,
//! `engine`, `estimators`, `checkpointing`, `telemetry` — into one
//! `healthy`/`degraded`/`critical` verdict; the telemetry subsystem
//! also degrades itself when the history store sheds under its memory
//! budget. The same structure lands in [`crate::report::RunReport`] as
//! the end-of-run SLO verdict block.

use std::fmt;
use std::path::Path;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::events::{self, Severity};
use crate::tsdb::{self, Tsdb};

/// Schema stamped into serialized [`DeepHealth`] blocks.
pub const SLO_SCHEMA_VERSION: u32 = 1;

/// The fixed subsystem set of the deep-health rollup.
pub const SUBSYSTEMS: [&str; 5] = [
    "ingest",
    "engine",
    "estimators",
    "checkpointing",
    "telemetry",
];

/// Default fast (page) window pair and burn threshold.
pub const DEFAULT_FAST_SHORT_SECS: u64 = 300;
/// Long window of the fast pair.
pub const DEFAULT_FAST_LONG_SECS: u64 = 3_600;
/// Fast-pair burn multiple (Google SRE workbook's 14.4× for a 30-day
/// budget at 2% burn in 1 h).
pub const DEFAULT_FAST_BURN: f64 = 14.4;
/// Default slow (warn) window pair and burn threshold.
pub const DEFAULT_SLOW_SHORT_SECS: u64 = 3_600;
/// Long window of the slow pair.
pub const DEFAULT_SLOW_LONG_SECS: u64 = 21_600;
/// Slow-pair burn multiple.
pub const DEFAULT_SLOW_BURN: f64 = 6.0;
/// Default `min_events` guard for ratio objectives.
pub const DEFAULT_MIN_EVENTS: u64 = 100;

/// How an objective measures badness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveKind {
    /// Bad-counter fraction of total counter deltas over the window.
    Ratio,
    /// Fraction of gauge samples strictly above `limit`.
    GaugeMax,
    /// Fraction of gauge samples strictly below `limit`.
    GaugeMin,
}

impl ObjectiveKind {
    fn parse(token: &str) -> Option<Self> {
        match token {
            "ratio" => Some(ObjectiveKind::Ratio),
            "gauge_max" => Some(ObjectiveKind::GaugeMax),
            "gauge_min" => Some(ObjectiveKind::GaugeMin),
            _ => None,
        }
    }
}

/// One parsed `[[objective]]` section.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Objective name; alerts publish as `slo/<name>`.
    pub name: String,
    /// Deep-health subsystem the objective rolls up into (one of
    /// [`SUBSYSTEMS`]).
    pub subsystem: String,
    /// Measurement kind.
    pub kind: ObjectiveKind,
    /// Bad-event counters (`ratio`).
    pub bad: Vec<String>,
    /// Good-event counters (`ratio`); total = good + bad.
    pub good: Vec<String>,
    /// Watched gauge (`gauge_max`/`gauge_min`).
    pub gauge: String,
    /// Gauge limit.
    pub limit: f64,
    /// Target success fraction, e.g. `0.999`; the error budget is
    /// `1 - objective`.
    pub objective: f64,
    /// Minimum total events in a window before a ratio can alarm.
    pub min_events: u64,
    /// Fast (page) pair: short window seconds.
    pub fast_short_secs: u64,
    /// Fast pair: long window seconds.
    pub fast_long_secs: u64,
    /// Fast pair: burn multiple that pages.
    pub fast_burn: f64,
    /// Slow (warn) pair: short window seconds.
    pub slow_short_secs: u64,
    /// Slow pair: long window seconds.
    pub slow_long_secs: u64,
    /// Slow pair: burn multiple that warns.
    pub slow_burn: f64,
}

/// Parsed `slo.toml`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloConfig {
    /// All objectives, file order.
    pub objectives: Vec<Objective>,
}

/// Parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Offending (or section-opening) line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

enum TomlVal {
    Str(String),
    Num(f64),
    List(Vec<String>),
}

fn parse_scalar(raw: &str, line: usize) -> Result<TomlVal, ParseError> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('[') {
        let Some(inner) = stripped.strip_suffix(']') else {
            return Err(ParseError {
                line,
                message: format!("unterminated array: {raw}"),
            });
        };
        let mut items = Vec::new();
        for piece in inner.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            match parse_scalar(piece, line)? {
                TomlVal::Str(s) => items.push(s),
                _ => {
                    return Err(ParseError {
                        line,
                        message: "arrays may only hold quoted strings".to_string(),
                    })
                }
            }
        }
        return Ok(TomlVal::List(items));
    }
    if let Some(stripped) = raw.strip_prefix('"') {
        let Some(inner) = stripped.strip_suffix('"') else {
            return Err(ParseError {
                line,
                message: format!("unterminated string: {raw}"),
            });
        };
        return Ok(TomlVal::Str(inner.replace("\\\"", "\"")));
    }
    raw.parse::<f64>()
        .map(TomlVal::Num)
        .map_err(|_| ParseError {
            line,
            message: format!("expected number, quoted string, or [array], got `{raw}`"),
        })
}

#[derive(Debug)]
struct PendingObjective {
    line: usize,
    name: Option<String>,
    subsystem: Option<String>,
    kind: Option<ObjectiveKind>,
    bad: Vec<String>,
    good: Vec<String>,
    gauge: String,
    limit: Option<f64>,
    objective: Option<f64>,
    min_events: u64,
    fast_short_secs: u64,
    fast_long_secs: u64,
    fast_burn: f64,
    slow_short_secs: u64,
    slow_long_secs: u64,
    slow_burn: f64,
}

impl PendingObjective {
    fn new(line: usize) -> Self {
        PendingObjective {
            line,
            name: None,
            subsystem: None,
            kind: None,
            bad: Vec::new(),
            good: Vec::new(),
            gauge: String::new(),
            limit: None,
            objective: None,
            min_events: DEFAULT_MIN_EVENTS,
            fast_short_secs: DEFAULT_FAST_SHORT_SECS,
            fast_long_secs: DEFAULT_FAST_LONG_SECS,
            fast_burn: DEFAULT_FAST_BURN,
            slow_short_secs: DEFAULT_SLOW_SHORT_SECS,
            slow_long_secs: DEFAULT_SLOW_LONG_SECS,
            slow_burn: DEFAULT_SLOW_BURN,
        }
    }

    fn finish(self) -> Result<Objective, ParseError> {
        let err = |message: String| ParseError {
            line: self.line,
            message,
        };
        let name = self
            .name
            .ok_or_else(|| err("[[objective]] missing `name`".to_string()))?;
        let subsystem = self
            .subsystem
            .ok_or_else(|| err(format!("[[objective]] {name} missing `subsystem`")))?;
        if !SUBSYSTEMS.contains(&subsystem.as_str()) {
            return Err(err(format!(
                "[[objective]] {name}: unknown subsystem `{subsystem}` (expected one of {SUBSYSTEMS:?})"
            )));
        }
        let kind = self
            .kind
            .ok_or_else(|| err(format!("[[objective]] {name} missing `kind`")))?;
        let objective = self
            .objective
            .ok_or_else(|| err(format!("[[objective]] {name} missing `objective`")))?;
        if !(objective > 0.0 && objective < 1.0) {
            return Err(err(format!(
                "[[objective]] {name}: objective must be in (0, 1), got {objective}"
            )));
        }
        match kind {
            ObjectiveKind::Ratio => {
                if self.bad.is_empty() {
                    return Err(err(format!(
                        "[[objective]] {name}: ratio kind needs a non-empty `bad` array"
                    )));
                }
                if self.good.is_empty() {
                    return Err(err(format!(
                        "[[objective]] {name}: ratio kind needs a non-empty `good` array"
                    )));
                }
            }
            ObjectiveKind::GaugeMax | ObjectiveKind::GaugeMin => {
                if self.gauge.is_empty() {
                    return Err(err(format!(
                        "[[objective]] {name}: gauge kinds need `gauge`"
                    )));
                }
                let limit = self
                    .limit
                    .ok_or_else(|| err(format!("[[objective]] {name} missing `limit`")))?;
                if !limit.is_finite() {
                    return Err(err(format!("[[objective]] {name}: limit must be finite")));
                }
            }
        }
        for (label, short, long) in [
            ("fast", self.fast_short_secs, self.fast_long_secs),
            ("slow", self.slow_short_secs, self.slow_long_secs),
        ] {
            if short == 0 || long == 0 || short > long {
                return Err(err(format!(
                    "[[objective]] {name}: {label} windows must satisfy 0 < short <= long"
                )));
            }
        }
        let positive = |b: f64| b.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if !positive(self.fast_burn) || !positive(self.slow_burn) {
            return Err(err(format!(
                "[[objective]] {name}: burn thresholds must be > 0"
            )));
        }
        Ok(Objective {
            name,
            subsystem,
            kind,
            bad: self.bad,
            good: self.good,
            gauge: self.gauge,
            limit: self.limit.unwrap_or(f64::NAN),
            objective,
            min_events: self.min_events,
            fast_short_secs: self.fast_short_secs,
            fast_long_secs: self.fast_long_secs,
            fast_burn: self.fast_burn,
            slow_short_secs: self.slow_short_secs,
            slow_long_secs: self.slow_long_secs,
            slow_burn: self.slow_burn,
        })
    }
}

impl SloConfig {
    /// Parse the TOML subset described in the module docs.
    ///
    /// # Errors
    ///
    /// [`ParseError`] naming the offending line for unknown keys or
    /// sections, type mismatches, and invalid objective parameters.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut out = SloConfig::default();
        let mut current: Option<PendingObjective> = None;

        fn flush(out: &mut SloConfig, current: Option<PendingObjective>) -> Result<(), ParseError> {
            if let Some(pending) = current {
                out.objectives.push(pending.finish()?);
            }
            Ok(())
        }

        for (i, raw_line) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = match raw_line.find('#') {
                Some(pos) => &raw_line[..pos],
                None => raw_line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[objective]]" {
                flush(&mut out, current.take())?;
                current = Some(PendingObjective::new(lineno));
                continue;
            }
            if line.starts_with('[') {
                return Err(ParseError {
                    line: lineno,
                    message: format!("unsupported section `{line}` (only [[objective]])"),
                });
            }
            let Some((key, raw_value)) = line.split_once('=') else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = key.trim();
            let value = parse_scalar(raw_value, lineno)?;
            let type_err = |what: &str| ParseError {
                line: lineno,
                message: format!("`{key}` must be {what}"),
            };
            let Some(pending) = current.as_mut() else {
                match key {
                    "schema" => continue, // reserved for format bumps
                    other => {
                        return Err(ParseError {
                            line: lineno,
                            message: format!("unknown top-level key `{other}`"),
                        })
                    }
                }
            };
            match (key, value) {
                ("name", TomlVal::Str(s)) => pending.name = Some(s),
                ("subsystem", TomlVal::Str(s)) => pending.subsystem = Some(s),
                ("kind", TomlVal::Str(s)) => {
                    pending.kind = Some(ObjectiveKind::parse(&s).ok_or_else(|| ParseError {
                        line: lineno,
                        message: format!(
                            "unknown kind `{s}` (expected ratio, gauge_max, or gauge_min)"
                        ),
                    })?)
                }
                ("bad", TomlVal::List(items)) => pending.bad = items,
                ("good", TomlVal::List(items)) => pending.good = items,
                ("gauge", TomlVal::Str(s)) => pending.gauge = s,
                ("limit", TomlVal::Num(n)) => pending.limit = Some(n),
                ("objective", TomlVal::Num(n)) => pending.objective = Some(n),
                ("min_events", TomlVal::Num(n)) => pending.min_events = n.max(0.0) as u64,
                ("fast_short_secs", TomlVal::Num(n)) => pending.fast_short_secs = n.max(0.0) as u64,
                ("fast_long_secs", TomlVal::Num(n)) => pending.fast_long_secs = n.max(0.0) as u64,
                ("fast_burn", TomlVal::Num(n)) => pending.fast_burn = n,
                ("slow_short_secs", TomlVal::Num(n)) => pending.slow_short_secs = n.max(0.0) as u64,
                ("slow_long_secs", TomlVal::Num(n)) => pending.slow_long_secs = n.max(0.0) as u64,
                ("slow_burn", TomlVal::Num(n)) => pending.slow_burn = n,
                ("name" | "subsystem" | "kind" | "gauge", _) => return Err(type_err("a string")),
                ("bad" | "good", _) => return Err(type_err("an array of strings")),
                (
                    "limit" | "objective" | "min_events" | "fast_short_secs" | "fast_long_secs"
                    | "fast_burn" | "slow_short_secs" | "slow_long_secs" | "slow_burn",
                    _,
                ) => return Err(type_err("a number")),
                (other, _) => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown [[objective]] key `{other}`"),
                    })
                }
            }
        }
        flush(&mut out, current)?;
        Ok(out)
    }

    /// Read and parse an objectives file.
    ///
    /// # Errors
    ///
    /// I/O and parse errors, both as strings naming the path.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// One objective's latest evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveHealth {
    /// Objective name.
    pub name: String,
    /// Subsystem it rolls into.
    pub subsystem: String,
    /// `"ok"`, `"warn"`, `"critical"`, or `"no-data"` (none of the
    /// watched metrics have a series yet — skipped, never alarmed).
    pub status: String,
    /// Burn multiple over the fast short window (0 without data).
    pub burn_fast: f64,
    /// Burn multiple over the slow short window (0 without data).
    pub burn_slow: f64,
    /// Bad fraction (or violating-sample fraction) over the fast short
    /// window.
    pub ratio: f64,
    /// Alerts fired for this objective during the run (upward
    /// transitions, both severities).
    pub alerts: u64,
}

/// One subsystem's rollup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsystemHealth {
    /// Subsystem name (one of [`SUBSYSTEMS`]).
    pub name: String,
    /// `"healthy"`, `"degraded"`, or `"critical"`.
    pub status: String,
    /// Why, when not healthy (or why the subsystem cannot degrade:
    /// `"no objectives"`).
    pub reason: String,
}

/// The deep-health verdict: served at `/healthz?deep=1`, embedded in
/// [`crate::report::RunReport::slo`], and rendered as the end-of-run
/// verdict block by the binaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeepHealth {
    /// Serialization schema ([`SLO_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Worst subsystem status: `"healthy"`, `"degraded"`, or
    /// `"critical"`.
    pub status: String,
    /// Whether an SLO engine is installed (without one the rollup
    /// reflects only telemetry self-accounting).
    pub slo_installed: bool,
    /// Evaluation passes taken.
    pub evaluations: u64,
    /// Per-subsystem rollup, fixed order.
    pub subsystems: Vec<SubsystemHealth>,
    /// Per-objective detail, config order.
    pub objectives: Vec<ObjectiveHealth>,
    /// Telemetry-history store accounting, when installed (`null`
    /// otherwise — the vendored serde derive has no skip attribute).
    pub telemetry: Option<tsdb::TsdbStats>,
}

impl DeepHealth {
    /// Fixed-width verdict table for end-of-run output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("deep health: {}\n", self.status));
        out.push_str(&format!(
            "{:<24} {:>10}  {}\n",
            "subsystem", "status", "reason"
        ));
        for s in &self.subsystems {
            out.push_str(&format!("{:<24} {:>10}  {}\n", s.name, s.status, s.reason));
        }
        if !self.objectives.is_empty() {
            out.push_str(&format!(
                "{:<24} {:<14} {:>9} {:>11} {:>11} {:>7}\n",
                "objective", "subsystem", "status", "burn(fast)", "burn(slow)", "alerts"
            ));
            for o in &self.objectives {
                out.push_str(&format!(
                    "{:<24} {:<14} {:>9} {:>11.2} {:>11.2} {:>7}\n",
                    o.name, o.subsystem, o.status, o.burn_fast, o.burn_slow, o.alerts
                ));
            }
        }
        out
    }
}

struct ObjectiveState {
    active: Option<Severity>,
    alerts: u64,
    last: ObjectiveHealth,
}

struct SloEngine {
    cfg: SloConfig,
    states: Vec<ObjectiveState>,
    evaluations: u64,
}

static ENGINE: Mutex<Option<SloEngine>> = Mutex::new(None);

/// Install (replacing any prior) the global SLO engine.
pub fn install(cfg: SloConfig) {
    let states = cfg
        .objectives
        .iter()
        .map(|o| ObjectiveState {
            active: None,
            alerts: 0,
            last: ObjectiveHealth {
                name: o.name.clone(),
                subsystem: o.subsystem.clone(),
                status: "no-data".to_string(),
                burn_fast: 0.0,
                burn_slow: 0.0,
                ratio: 0.0,
                alerts: 0,
            },
        })
        .collect();
    *ENGINE.lock().expect("slo engine poisoned") = Some(SloEngine {
        cfg,
        states,
        evaluations: 0,
    });
}

/// Remove the global engine ([`crate::reset`] calls this).
pub fn uninstall() {
    *ENGINE.lock().expect("slo engine poisoned") = None;
}

/// Whether an engine is installed.
pub fn is_installed() -> bool {
    ENGINE.lock().expect("slo engine poisoned").is_some()
}

/// Window edge values for a counter: delta between the newest tick and
/// the tick `window_ticks` back (partial window: the oldest retained
/// sample stands in for the missing edge). `None` when the metric has
/// no series at all.
fn counter_window_delta(store: &Tsdb, metric: &str, now: u64, window_ticks: u64) -> Option<u64> {
    let end = store.raw_at_or_before(metric, now)?;
    let start_tick = now.saturating_sub(window_ticks);
    let start = store
        .raw_at_or_before(metric, start_tick)
        .or_else(|| store.oldest_raw(metric).map(|(_, raw)| raw))?;
    Some(end.saturating_sub(start))
}

/// Violating-sample fraction of a gauge over the window: dense samples
/// where they reach, coarse buckets (weighted by their tick span,
/// judged by their retained extreme) for the older remainder.
fn gauge_violation(
    store: &Tsdb,
    metric: &str,
    now: u64,
    window_ticks: u64,
    kind: ObjectiveKind,
    limit: f64,
) -> Option<(f64, u64)> {
    let start_tick = now.saturating_sub(window_ticks);
    let dense = store.dense_raw(metric, start_tick)?;
    let violates = |v: f64| match kind {
        ObjectiveKind::GaugeMax => v > limit,
        ObjectiveKind::GaugeMin => v < limit,
        ObjectiveKind::Ratio => false,
    };
    let mut total = 0f64;
    let mut viol = 0f64;
    let dense_first = dense.first().map(|(i, _)| *i);
    if let Some(df) = dense_first {
        if df > start_tick + 1 {
            if let Some(coarse) = store.coarse_raw(metric, start_tick) {
                let weight = store.coarse_every() as f64;
                for bucket in coarse.iter().filter(|b| b.end_index < df) {
                    total += weight;
                    let extreme = match kind {
                        ObjectiveKind::GaugeMax => f64::from_bits(bucket.max),
                        _ => f64::from_bits(bucket.min),
                    };
                    if violates(extreme) {
                        viol += weight;
                    }
                }
            }
        }
    }
    for (_, raw) in &dense {
        total += 1.0;
        if violates(f64::from_bits(*raw)) {
            viol += 1.0;
        }
    }
    if total == 0.0 {
        return None;
    }
    Some((viol / total, total as u64))
}

/// Bad fraction of an objective over one window, with the sample/event
/// volume backing it. `None` = no data (every watched metric missing,
/// or below the `min_events` guard).
fn window_ratio(store: &Tsdb, o: &Objective, now: u64, window_ticks: u64) -> Option<f64> {
    match o.kind {
        ObjectiveKind::Ratio => {
            let mut bad = 0u64;
            let mut seen = false;
            for m in &o.bad {
                if let Some(d) = counter_window_delta(store, m, now, window_ticks) {
                    bad += d;
                    seen = true;
                }
            }
            let mut good = 0u64;
            for m in &o.good {
                if let Some(d) = counter_window_delta(store, m, now, window_ticks) {
                    good += d;
                    seen = true;
                }
            }
            if !seen {
                return None;
            }
            let total = bad + good;
            if total < o.min_events.max(1) {
                return None;
            }
            Some(bad as f64 / total as f64)
        }
        ObjectiveKind::GaugeMax | ObjectiveKind::GaugeMin => {
            let (frac, samples) =
                gauge_violation(store, &o.gauge, now, window_ticks, o.kind, o.limit)?;
            // At least two samples before a gauge objective may alarm:
            // a single startup sample is not a trend.
            if samples < 2 {
                return None;
            }
            Some(frac)
        }
    }
}

fn ticks_for(store: &Tsdb, secs: u64) -> u64 {
    let interval_ms = (store.interval().as_millis() as u64).max(1);
    (secs.saturating_mul(1_000) / interval_ms).max(1)
}

/// Evaluate every objective against the global history store, publish
/// `slo/*` events on state transitions, and refresh the rollup. No-op
/// (returns `false`) unless both the engine and the store are
/// installed.
pub fn evaluate_now() -> bool {
    let mut guard = ENGINE.lock().expect("slo engine poisoned");
    let Some(engine) = guard.as_mut() else {
        return false;
    };
    let mut transitions: Vec<(Severity, String, f64, f64, u64, f64, String)> = Vec::new();
    let evaluated = tsdb::with_store(|store| {
        let now = store.ticks();
        if now == 0 {
            return;
        }
        engine.evaluations += 1;
        let interval_secs = store.interval().as_secs_f64();
        for (o, state) in engine.cfg.objectives.iter().zip(engine.states.iter_mut()) {
            let budget = (1.0 - o.objective).max(f64::MIN_POSITIVE);
            let burn_of = |ratio: Option<f64>| ratio.map(|r| r / budget);
            let fast_short = burn_of(window_ratio(store, o, now, ticks_for(store, o.fast_short_secs)));
            let fast_long = burn_of(window_ratio(store, o, now, ticks_for(store, o.fast_long_secs)));
            let slow_short = burn_of(window_ratio(store, o, now, ticks_for(store, o.slow_short_secs)));
            let slow_long = burn_of(window_ratio(store, o, now, ticks_for(store, o.slow_long_secs)));
            let has_data = fast_short.is_some() || slow_short.is_some();
            let paged = matches!((fast_short, fast_long), (Some(s), Some(l)) if s >= o.fast_burn && l >= o.fast_burn);
            let warned = matches!((slow_short, slow_long), (Some(s), Some(l)) if s >= o.slow_burn && l >= o.slow_burn);
            let level = if paged {
                Some(Severity::Critical)
            } else if warned {
                Some(Severity::Warn)
            } else {
                None
            };
            let burn_fast = fast_short.unwrap_or(0.0);
            let burn_slow = slow_short.unwrap_or(0.0);
            match (state.active, level) {
                (prev, Some(sev)) if prev.is_none_or(|p| sev > p) => {
                    state.alerts += 1;
                    let (burn, bar) = if sev == Severity::Critical {
                        (burn_fast, o.fast_burn)
                    } else {
                        (burn_slow, o.slow_burn)
                    };
                    transitions.push((
                        sev,
                        o.name.clone(),
                        burn,
                        bar,
                        now,
                        now as f64 * interval_secs,
                        format!(
                            "slo {} burning at {:.1}x its error budget (threshold {:.1}x, objective {})",
                            o.name, burn, bar, o.objective
                        ),
                    ));
                }
                (Some(prev), lower) if lower.is_none_or(|l| l < prev) => {
                    transitions.push((
                        Severity::Info,
                        o.name.clone(),
                        burn_fast,
                        o.fast_burn,
                        now,
                        now as f64 * interval_secs,
                        match lower {
                            Some(l) => format!(
                                "slo {} downgraded from {} to {}",
                                o.name,
                                prev.as_str(),
                                l.as_str()
                            ),
                            None => format!("slo {} recovered (burn {:.2}x)", o.name, burn_fast),
                        },
                    ));
                }
                _ => {}
            }
            state.active = level;
            state.last = ObjectiveHealth {
                name: o.name.clone(),
                subsystem: o.subsystem.clone(),
                status: match (has_data, level) {
                    (false, _) => "no-data".to_string(),
                    (true, None) => "ok".to_string(),
                    (true, Some(Severity::Warn)) => "warn".to_string(),
                    (true, Some(_)) => "critical".to_string(),
                },
                burn_fast,
                burn_slow,
                ratio: fast_short.map_or(0.0, |b| b * budget),
                alerts: state.alerts,
            };
        }
    })
    .is_some();
    drop(guard);
    for (sev, name, burn, bar, tick, window_start, message) in transitions {
        events::publish(events::Event::new(
            sev,
            "slo",
            &format!("slo/{name}"),
            tick,
            window_start,
            bar,
            burn,
            burn,
            bar,
            message,
        ));
    }
    evaluated
}

/// Rollup of the current state. Always answers — without an engine the
/// subsystems report healthy with a `"no objectives"` reason and only
/// telemetry self-accounting can degrade the verdict.
pub fn deep_health() -> DeepHealth {
    let guard = ENGINE.lock().expect("slo engine poisoned");
    let telemetry = tsdb::stats();
    let (slo_installed, evaluations, objectives) = match guard.as_ref() {
        Some(engine) => (
            true,
            engine.evaluations,
            engine.states.iter().map(|s| s.last.clone()).collect(),
        ),
        None => (false, 0, Vec::new()),
    };
    drop(guard);
    let objectives: Vec<ObjectiveHealth> = objectives;
    let mut subsystems = Vec::with_capacity(SUBSYSTEMS.len());
    let mut worst = 0u8; // 0 healthy, 1 degraded, 2 critical
    for name in SUBSYSTEMS {
        let mut level = 0u8;
        let mut reason = String::new();
        let mut any = false;
        for o in objectives.iter().filter(|o| o.subsystem == name) {
            any = true;
            let o_level = match o.status.as_str() {
                "critical" => 2,
                "warn" => 1,
                _ => 0,
            };
            if o_level > level {
                level = o_level;
                reason = format!("slo {} is {}", o.name, o.status);
            }
        }
        if name == "telemetry" {
            if let Some(stats) = &telemetry {
                if stats.budget_evictions > 0 && level == 0 {
                    level = 1;
                    reason = format!(
                        "history store shed {} samples under its memory budget",
                        stats.budget_evictions
                    );
                }
            }
        }
        if reason.is_empty() {
            reason = if any {
                "all objectives ok".to_string()
            } else {
                "no objectives".to_string()
            };
        }
        worst = worst.max(level);
        subsystems.push(SubsystemHealth {
            name: name.to_string(),
            status: match level {
                0 => "healthy",
                1 => "degraded",
                _ => "critical",
            }
            .to_string(),
            reason,
        });
    }
    DeepHealth {
        schema: SLO_SCHEMA_VERSION,
        status: match worst {
            0 => "healthy",
            1 => "degraded",
            _ => "critical",
        }
        .to_string(),
        slo_installed,
        evaluations,
        subsystems,
        objectives,
        telemetry,
    }
}

/// The verdict block for [`crate::report::RunReport`]: `None` unless an
/// engine is installed (reports from tools that never enabled SLOs stay
/// unchanged).
pub fn current_report() -> Option<DeepHealth> {
    if !is_installed() {
        return None;
    }
    Some(deep_health())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SampleKind;
    use crate::tsdb::{Tsdb, TsdbConfig};
    use std::time::Duration;

    const SAMPLE: &str = r#"
# SLO objectives
schema = 1

[[objective]]
name = "ingest-shed"           # records dropped on the wire path
subsystem = "ingest"
kind = "ratio"
bad = ["ingest/records_late_dropped", "ingest/lines_torn"]
good = ["ingest/records_admitted"]
objective = 0.999
min_events = 10

[[objective]]
name = "profiler-overhead"
subsystem = "telemetry"
kind = "gauge_max"
gauge = "profile/overhead_pct"
limit = 3.0
objective = 0.99
fast_short_secs = 60
fast_long_secs = 300
"#;

    #[test]
    fn parses_objectives_with_defaults_and_overrides() {
        let cfg = SloConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.objectives.len(), 2);
        let shed = &cfg.objectives[0];
        assert_eq!(shed.kind, ObjectiveKind::Ratio);
        assert_eq!(shed.bad.len(), 2);
        assert_eq!(shed.good, vec!["ingest/records_admitted".to_string()]);
        assert_eq!(shed.min_events, 10);
        assert_eq!(shed.fast_short_secs, DEFAULT_FAST_SHORT_SECS);
        assert_eq!(shed.fast_burn, DEFAULT_FAST_BURN);
        let ovh = &cfg.objectives[1];
        assert_eq!(ovh.kind, ObjectiveKind::GaugeMax);
        assert_eq!(ovh.limit, 3.0);
        assert_eq!(ovh.fast_short_secs, 60);
        assert_eq!(ovh.slow_long_secs, DEFAULT_SLOW_LONG_SECS);
    }

    #[test]
    fn parse_errors_name_the_line_and_field() {
        let err = SloConfig::parse("[[objective]]\nname = \"x\"\n").unwrap_err();
        assert!(err.message.contains("missing `subsystem`"), "{err}");
        let err = SloConfig::parse(
            "[[objective]]\nname = \"x\"\nsubsystem = \"nope\"\nkind = \"ratio\"\nobjective = 0.9\nbad = [\"a\"]\ngood = [\"b\"]\n",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown subsystem"), "{err}");
        let err = SloConfig::parse("[[objective]]\nkind = \"sum\"\n").unwrap_err();
        assert!(err.message.contains("unknown kind"), "{err}");
        let err = SloConfig::parse("bad_top = 1\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = SloConfig::parse(
            "[[objective]]\nname = \"x\"\nsubsystem = \"ingest\"\nkind = \"ratio\"\nobjective = 1.5\nbad = [\"a\"]\ngood = [\"b\"]\n",
        )
        .unwrap_err();
        assert!(err.message.contains("objective must be in (0, 1)"), "{err}");
    }

    fn shed_config() -> SloConfig {
        SloConfig::parse(SAMPLE).unwrap()
    }

    /// End-to-end through the globals: hostile shed must page, a clean
    /// stream must stay silent, recovery must downgrade via an info
    /// event. Burn math works on window *deltas*, so whatever absolute
    /// counter values other tests left behind do not matter.
    #[test]
    fn burn_rate_pages_on_shed_and_stays_silent_when_clean() {
        let _lock = crate::global_test_lock();
        crate::tsdb::install(TsdbConfig {
            interval: Duration::from_millis(100),
            ..TsdbConfig::default()
        });
        install(shed_config());
        events::reset();

        let bad = crate::metrics::counter("ingest/records_late_dropped");
        let good = crate::metrics::counter("ingest/records_admitted");

        // Clean traffic: a baseline tick, then enough good volume to
        // clear the min_events guard with zero bad events.
        crate::tsdb::sample_now();
        good.add(500);
        crate::tsdb::sample_now();
        assert!(evaluate_now());
        assert_eq!(events::total_at_or_above(Severity::Warn), 0);
        let health = deep_health();
        assert_eq!(health.status, "healthy");
        assert_eq!(health.objectives[0].status, "ok", "{health:?}");

        // Hostile shed: half the new volume drops. Partial windows mean
        // the page fires on the very next evaluation tick.
        bad.add(400);
        good.add(400);
        crate::tsdb::sample_now();
        assert!(evaluate_now());
        assert_eq!(events::total(Severity::Critical), 1, "page fired once");
        let health = deep_health();
        assert_eq!(health.status, "critical");
        assert_eq!(health.objectives[0].status, "critical");
        assert_eq!(
            health
                .subsystems
                .iter()
                .find(|s| s.name == "ingest")
                .unwrap()
                .status,
            "critical"
        );
        let alert = events::since(0)
            .into_iter()
            .find(|e| e.severity == Severity::Critical)
            .unwrap();
        assert_eq!(alert.detector, "slo");
        assert_eq!(alert.metric, "slo/ingest-shed");
        assert!(alert.score > DEFAULT_FAST_BURN, "{}", alert.score);

        // Same state next tick: hysteresis, no duplicate page.
        crate::tsdb::sample_now();
        evaluate_now();
        assert_eq!(events::total(Severity::Critical), 1);

        // Recovery: the shed stops and good volume dilutes the window
        // below the burn bar; the objective downgrades with an info
        // event.
        let mut recovered = false;
        for _ in 0..64 {
            good.add(1_000_000);
            crate::tsdb::sample_now();
            evaluate_now();
            if deep_health().objectives[0].status == "ok" {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "{:?}", deep_health());
        assert!(
            events::since(0)
                .iter()
                .any(|e| e.severity == Severity::Info && e.metric == "slo/ingest-shed"),
            "recovery info event"
        );

        uninstall();
        crate::tsdb::uninstall();
        events::reset();
    }

    #[test]
    fn gauge_objective_counts_violating_samples() {
        let mut store = Tsdb::new(TsdbConfig {
            interval: Duration::from_millis(100),
            ..TsdbConfig::default()
        });
        for v in [1.0f64, 5.0, 5.0, 5.0] {
            store.ingest(&[(
                "profile/overhead_pct".to_string(),
                SampleKind::Gauge,
                v.to_bits(),
            )]);
        }
        let cfg = shed_config();
        let ovh = &cfg.objectives[1];
        // 3 of 4 samples exceed limit 3.0 → fraction 0.75, budget 0.01
        // → burn 75x, far over both bars.
        let ratio = window_ratio(&store, ovh, store.ticks(), 1_000).unwrap();
        assert!((ratio - 0.75).abs() < 1e-12, "{ratio}");
    }

    #[test]
    fn deep_health_without_engine_is_healthy_with_reasons() {
        uninstall();
        let health = deep_health();
        assert!(!health.slo_installed);
        assert_eq!(health.status, "healthy");
        assert_eq!(health.subsystems.len(), SUBSYSTEMS.len());
        assert!(health
            .subsystems
            .iter()
            .all(|s| s.reason == "no objectives"));
        // Render never panics and names the verdict.
        assert!(health.render().contains("deep health: healthy"));
    }
}
