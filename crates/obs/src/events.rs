//! Typed drift/anomaly events: a bounded in-memory ring, per-severity
//! counters, and an append-only JSONL sink.
//!
//! Detectors (the `webpuzzle-stream` drift observatory) publish
//! [`Event`]s through [`publish`]; the subsystem then
//!
//! 1. assigns a monotonically increasing sequence number and stores the
//!    event in a bounded ring (oldest events drop first), which the
//!    `/events?since=<seq>` endpoint on [`crate::server`] polls;
//! 2. bumps the `events/total/<severity>` counter family (exported to
//!    Prometheus as `webpuzzle_events_total{severity="..."}`);
//! 3. appends one schema-versioned JSON line to the installed
//!    [`JsonlEventSink`], if any (`stream-analyze --events <path>`).
//!
//! The JSONL append is atomic at the line level: the file is opened in
//! append mode and each event is written with a single `write_all` of a
//! complete line, so concurrent readers never observe a torn record.
//!
//! # Schema
//!
//! Every serialized event carries `"schema": 1`
//! ([`EVENT_SCHEMA_VERSION`]); consumers should ignore unknown fields
//! and reject unknown major versions. See DESIGN.md §10 for the field
//! table.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

use crate::metrics;

/// Version stamped into every serialized event (`schema` field). Bump on
/// breaking field changes only; additive fields keep the version.
pub const EVENT_SCHEMA_VERSION: u32 = 1;

/// Default capacity of the in-memory event ring.
pub const DEFAULT_RING_CAPACITY: usize = 1_024;

/// Prefix of the counter-family names fed by [`publish`]; the
/// Prometheus exporter folds `events/total/<severity>` counters into a
/// single `webpuzzle_events_total{severity="..."}` family.
pub const EVENTS_TOTAL_PREFIX: &str = "events/total/";

/// Severity of a drift event, ordered `Info < Warn < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: a detector re-baselined or a watched quantity
    /// moved without crossing an alarm threshold.
    Info,
    /// A detector fired: the watched statistic left its control region.
    Warn,
    /// A detector fired far beyond its threshold (score at or above
    /// twice the alarm bar).
    Critical,
}

impl Severity {
    /// Lower-case token used in counter names and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }

    /// Parse a CLI token (case-insensitive).
    pub fn parse(token: &str) -> Option<Severity> {
        match token.to_ascii_lowercase().as_str() {
            "info" => Some(Severity::Info),
            "warn" | "warning" => Some(Severity::Warn),
            "critical" | "crit" => Some(Severity::Critical),
            _ => None,
        }
    }

    /// All severities, ascending.
    pub const ALL: [Severity; 3] = [Severity::Info, Severity::Warn, Severity::Critical];
}

/// One drift event. Timestamps are split: `unix_time` is wall-clock
/// publication time; `window_start`/`window_index` locate the alarm in
/// *event time* (stream seconds), which is what detection-latency
/// measurements compare against injected ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Serialization schema version ([`EVENT_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Monotonic sequence number, assigned by [`publish`] (0 before).
    pub seq: u64,
    /// Unix seconds when the event was published.
    pub unix_time: u64,
    /// Event severity.
    pub severity: Severity,
    /// Detector that fired, e.g. `"cusum"`, `"page_hinkley"`, `"ewma"`.
    pub detector: String,
    /// Watched metric key, e.g. `"request_rate"`, `"hill_alpha/bytes"`.
    pub metric: String,
    /// Zero-based analysis-window index at which the alarm fired.
    pub window_index: u64,
    /// Start of that window, stream seconds.
    pub window_start: f64,
    /// Baseline statistic before the change (detector's calibrated mean).
    pub before: f64,
    /// Observed statistic that triggered the alarm.
    pub after: f64,
    /// Detector decision statistic at alarm time.
    pub score: f64,
    /// Alarm threshold the score crossed.
    pub threshold: f64,
    /// Human-readable one-liner.
    pub message: String,
}

struct Ring {
    buf: VecDeque<Event>,
    capacity: usize,
    next_seq: u64,
}

static RING: Mutex<Ring> = Mutex::new(Ring {
    buf: VecDeque::new(),
    capacity: DEFAULT_RING_CAPACITY,
    next_seq: 1,
});

/// Published-event totals per severity (index = `Severity as usize`),
/// immune to ring overflow.
static TOTALS: [AtomicU64; 3] = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

static SINK: Mutex<Option<JsonlEventSink>> = Mutex::new(None);

/// Append-only JSONL event log. One complete line per event, written
/// with a single `write_all` against a file opened in append mode, so
/// external `tail -f` readers and crash-time inspection never see a
/// partial record.
#[derive(Debug)]
pub struct JsonlEventSink {
    file: std::fs::File,
    path: PathBuf,
}

impl JsonlEventSink {
    /// Open (creating if absent) the JSONL log at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlEventSink {
            file,
            path: path.to_path_buf(),
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one event as a single JSON line.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn append(&mut self, event: &Event) -> io::Result<()> {
        let mut line = serde_json::to_string(event)
            .map_err(|e| io::Error::other(format!("event serialization failed: {e}")))?;
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }

    /// Force appended lines to durable storage (`fsync`). A checkpoint
    /// that records this log's cursor must call this first, or a crash
    /// can leave the checkpoint pointing past events the kernel never
    /// wrote out.
    ///
    /// # Errors
    ///
    /// Propagates the sync failure.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

/// Parse a JSONL event log back into events (newest last). Lines that
/// fail to parse are skipped and counted — a crashed writer can leave at
/// most a torn *final* line, and schema-foreign files shouldn't abort
/// inspection tooling.
pub fn parse_jsonl(text: &str) -> (Vec<Event>, usize) {
    let mut events = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match serde_json::from_str::<Event>(line) {
            Ok(e) => events.push(e),
            Err(_) => skipped += 1,
        }
    }
    (events, skipped)
}

/// Install a JSONL sink; every subsequent [`publish`] appends to it.
/// Replaces (and closes) any previously installed sink.
pub fn set_jsonl_sink(sink: JsonlEventSink) {
    *SINK.lock().expect("event sink poisoned") = Some(sink);
}

/// Remove the installed JSONL sink, if any.
pub fn clear_jsonl_sink() {
    *SINK.lock().expect("event sink poisoned") = None;
}

/// `fsync` the installed JSONL sink. Returns `Ok(false)` when no sink is
/// installed (nothing to make durable). Checkpoint writers call this
/// before persisting a cursor into the event log.
///
/// # Errors
///
/// Propagates the sync failure.
pub fn sync_jsonl_sink() -> io::Result<bool> {
    match SINK.lock().expect("event sink poisoned").as_mut() {
        Some(sink) => sink.sync().map(|()| true),
        None => Ok(false),
    }
}

/// Fast-forward sequence numbering so the next published event gets a
/// `seq` strictly above `seq` — used when resuming from a checkpoint
/// whose event log already holds sequences up to `seq`. Never moves the
/// counter backwards.
pub fn resume_from(seq: u64) {
    let mut ring = RING.lock().expect("event ring poisoned");
    ring.next_seq = ring.next_seq.max(seq + 1);
}

/// Override the ring capacity (existing overflow drops oldest-first).
pub fn set_ring_capacity(capacity: usize) {
    let mut ring = RING.lock().expect("event ring poisoned");
    ring.capacity = capacity.max(1);
    while ring.buf.len() > ring.capacity {
        ring.buf.pop_front();
    }
}

/// Publish one event: assign its sequence number and wall-clock stamp,
/// store it in the ring, bump `events/total/<severity>`, and append to
/// the JSONL sink when one is installed. Returns the assigned sequence
/// number.
pub fn publish(mut event: Event) -> u64 {
    event.schema = EVENT_SCHEMA_VERSION;
    if event.unix_time == 0 {
        event.unix_time = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
    }
    let seq = {
        let mut ring = RING.lock().expect("event ring poisoned");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        event.seq = seq;
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
        }
        ring.buf.push_back(event.clone());
        seq
    };
    TOTALS[event.severity as usize].fetch_add(1, Ordering::Relaxed);
    metrics::counter(&format!(
        "{}{}",
        EVENTS_TOTAL_PREFIX,
        event.severity.as_str()
    ))
    .incr();
    if let Some(sink) = SINK.lock().expect("event sink poisoned").as_mut() {
        // Flight-recorder timing of the append: event publication is
        // rare, so this is always-on while profiling is enabled.
        let t0 = crate::profile::is_enabled().then(std::time::Instant::now);
        if let Err(e) = sink.append(&event) {
            crate::sink::warn(&format!("event log append failed: {e}"));
        }
        if let Some(t0) = t0 {
            crate::profile::record_stage_ns(
                crate::profile::Stage::EventSink,
                t0.elapsed().as_nanos() as u64,
            );
        }
    }
    seq
}

/// Events with `seq > cursor`, oldest first. A cursor of 0 returns the
/// whole ring. Events older than the ring capacity are gone — pollers
/// that fall behind resynchronize from whatever remains.
pub fn since(cursor: u64) -> Vec<Event> {
    let ring = RING.lock().expect("event ring poisoned");
    ring.buf
        .iter()
        .filter(|e| e.seq > cursor)
        .cloned()
        .collect()
}

/// Highest sequence number assigned so far (0 before the first event).
pub fn latest_seq() -> u64 {
    RING.lock().expect("event ring poisoned").next_seq - 1
}

/// Total events published at `severity` (ring overflow does not lower
/// this).
pub fn total(severity: Severity) -> u64 {
    TOTALS[severity as usize].load(Ordering::Relaxed)
}

/// Total events published at or above `severity`.
pub fn total_at_or_above(severity: Severity) -> u64 {
    Severity::ALL
        .iter()
        .filter(|s| **s >= severity)
        .map(|s| total(*s))
        .sum()
}

/// Clear the ring and severity totals (the JSONL sink stays installed).
/// Sequence numbering restarts at 1. For tests and multi-run tools.
pub fn reset() {
    let mut ring = RING.lock().expect("event ring poisoned");
    ring.buf.clear();
    ring.next_seq = 1;
    for t in &TOTALS {
        t.store(0, Ordering::Relaxed);
    }
}

impl Event {
    /// An event with the bookkeeping fields (schema, seq, unix_time)
    /// zeroed for [`publish`] to fill in.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        severity: Severity,
        detector: &str,
        metric: &str,
        window_index: u64,
        window_start: f64,
        before: f64,
        after: f64,
        score: f64,
        threshold: f64,
        message: String,
    ) -> Self {
        Event {
            schema: EVENT_SCHEMA_VERSION,
            seq: 0,
            unix_time: 0,
            severity,
            detector: detector.to_string(),
            metric: metric.to_string(),
            window_index,
            window_start,
            before,
            after,
            score,
            threshold,
            message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(severity: Severity, window: u64) -> Event {
        Event::new(
            severity,
            "cusum",
            "request_rate",
            window,
            window as f64 * 14_400.0,
            1.0,
            2.0,
            6.5,
            5.0,
            "unit test event".to_string(),
        )
    }

    #[test]
    fn severity_orders_and_parses() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Critical);
        assert_eq!(Severity::parse("WARN"), Some(Severity::Warn));
        assert_eq!(Severity::parse("crit"), Some(Severity::Critical));
        assert_eq!(Severity::parse("nope"), None);
        assert_eq!(Severity::Critical.as_str(), "critical");
    }

    #[test]
    fn publish_assigns_monotone_seqs_and_counts() {
        let _lock = crate::global_test_lock();
        reset();
        let a = publish(ev(Severity::Warn, 0));
        let b = publish(ev(Severity::Critical, 1));
        assert!(b > a);
        assert_eq!(latest_seq(), b);
        assert_eq!(total(Severity::Warn), 1);
        assert_eq!(total(Severity::Critical), 1);
        assert_eq!(total_at_or_above(Severity::Warn), 2);
        assert_eq!(total_at_or_above(Severity::Critical), 1);
        let all = since(0);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].seq, a);
        assert!(all[0].unix_time > 0);
        assert_eq!(all[0].schema, EVENT_SCHEMA_VERSION);
        assert_eq!(since(a).len(), 1);
        assert_eq!(since(b).len(), 0);
        reset();
    }

    #[test]
    fn ring_is_bounded_oldest_first() {
        let _lock = crate::global_test_lock();
        reset();
        set_ring_capacity(4);
        for i in 0..10 {
            publish(ev(Severity::Info, i));
        }
        let kept = since(0);
        assert_eq!(kept.len(), 4);
        assert_eq!(kept[0].window_index, 6);
        assert_eq!(kept[3].window_index, 9);
        // Totals survive the overflow.
        assert_eq!(total(Severity::Info), 10);
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        reset();
    }

    #[test]
    fn resume_from_fast_forwards_but_never_rewinds() {
        let _lock = crate::global_test_lock();
        reset();
        resume_from(41);
        let seq = publish(ev(Severity::Info, 0));
        assert_eq!(seq, 42);
        // A stale (lower) cursor must not rewind numbering.
        resume_from(7);
        let seq = publish(ev(Severity::Info, 1));
        assert_eq!(seq, 43);
        reset();
    }

    #[test]
    fn sink_sync_reports_installation_state() {
        // No sink installed: nothing to sync, not an error.
        clear_jsonl_sink();
        assert!(!sync_jsonl_sink().unwrap());
        let dir = std::env::temp_dir().join(format!("webpuzzle-evsync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        set_jsonl_sink(JsonlEventSink::create(&path).unwrap());
        assert!(sync_jsonl_sink().unwrap());
        clear_jsonl_sink();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn event_round_trips_through_json() {
        let event = ev(Severity::Critical, 7);
        let line = serde_json::to_string(&event).unwrap();
        assert!(line.contains("\"schema\""));
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn jsonl_sink_appends_parseable_lines() {
        let dir = std::env::temp_dir().join(format!("webpuzzle-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut sink = JsonlEventSink::create(&path).unwrap();
        let mut first = ev(Severity::Warn, 1);
        first.seq = 1;
        let mut second = ev(Severity::Critical, 2);
        second.seq = 2;
        sink.append(&first).unwrap();
        sink.append(&second).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        let (events, skipped) = parse_jsonl(&text);
        assert_eq!(skipped, 0);
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].severity, Severity::Critical);
        // A torn final line (crashed writer) is skipped, not fatal.
        let torn = format!("{text}{{\"schema\": 1, \"seq\"");
        let (events, skipped) = parse_jsonl(&torn);
        assert_eq!(events.len(), 2);
        assert_eq!(skipped, 1);
        let _ = std::fs::remove_file(&path);
    }
}
