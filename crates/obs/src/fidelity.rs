//! Paper-fidelity scoreboard: compare a run's measured statistics
//! against checked-in targets.
//!
//! The pipeline records its headline numbers (Hurst exponents per
//! estimator, tail indices per method, Poisson rejection rates) as
//! `fidelity/...` gauges; a [`RunReport`] therefore carries them in its
//! `gauges` section. [`check`] compares those gauges against a
//! [`PaperTargets`] file (`paper_targets.toml` at the repo root, values
//! anchored to the paper's Tables 2–4 and Figures 6–10 with explicit
//! tolerance bands — see DESIGN.md for each band's provenance) and
//! produces a [`FidelityReport`] that names every out-of-tolerance
//! estimator. The `paper-check` binary turns that into a process exit
//! code, so CI can enforce paper fidelity on every change.
//!
//! The targets file is parsed by a deliberately small TOML-subset reader
//! (the container has no `toml` crate): comments, `key = value` pairs at
//! the top level, and `[[target]]` array-of-table sections with string /
//! float / integer values. That subset is all the format uses.

use std::fmt;
use std::path::Path;

use crate::metrics;
use crate::report::RunReport;

/// One expected statistic with its tolerance band.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityTarget {
    /// Gauge name in the run report, e.g. `fidelity/h/WVU/whittle`.
    pub metric: String,
    /// Expected value (calibrated run, anchored to the paper).
    pub value: f64,
    /// Allowed absolute deviation: `|measured - value| <= tol` passes.
    pub tol: f64,
    /// Where the expectation comes from (paper table/figure + rationale).
    pub source: String,
}

/// Parsed `paper_targets.toml`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PaperTargets {
    /// The exact command the targets are calibrated against.
    pub profile: String,
    /// All targets, in file order.
    pub targets: Vec<FidelityTarget>,
}

/// Parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A TOML-subset scalar.
enum TomlValue {
    Str(String),
    Num(f64),
}

fn parse_scalar(raw: &str, line: usize) -> Result<TomlValue, ParseError> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('"') {
        let Some(inner) = stripped.strip_suffix('"') else {
            return Err(ParseError {
                line,
                message: format!("unterminated string: {raw}"),
            });
        };
        // The format never needs escapes beyond \" — handle just that.
        Ok(TomlValue::Str(inner.replace("\\\"", "\"")))
    } else {
        raw.parse::<f64>()
            .map(TomlValue::Num)
            .map_err(|_| ParseError {
                line,
                message: format!("expected number or quoted string, got `{raw}`"),
            })
    }
}

impl PaperTargets {
    /// Parse the TOML subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the offending line for syntax the
    /// subset doesn't cover, missing required keys, or non-positive
    /// tolerances.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut out = PaperTargets::default();
        // Pending `[[target]]` fields (opening line number, metric,
        // value, tol, source); flushed when a new [[target]] opens or at
        // end of input.
        type Pending = (usize, Option<String>, Option<f64>, Option<f64>, String);
        let mut current: Option<Pending> = None;

        fn flush(out: &mut PaperTargets, current: Option<Pending>) -> Result<(), ParseError> {
            let Some((line, metric, value, tol, source)) = current else {
                return Ok(());
            };
            let metric = metric.ok_or(ParseError {
                line,
                message: "[[target]] missing `metric`".to_string(),
            })?;
            let value = value.ok_or(ParseError {
                line,
                message: format!("[[target]] {metric} missing `value`"),
            })?;
            let tol = tol.ok_or(ParseError {
                line,
                message: format!("[[target]] {metric} missing `tol`"),
            })?;
            // `<=` alone would wave NaN through; a NaN band passes nothing.
            if tol.is_nan() || tol <= 0.0 {
                return Err(ParseError {
                    line,
                    message: format!("[[target]] {metric}: tol must be > 0, got {tol}"),
                });
            }
            out.targets.push(FidelityTarget {
                metric,
                value,
                tol,
                source,
            });
            Ok(())
        }

        for (i, raw_line) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = match raw_line.find('#') {
                // A # inside a quoted string would be cut here; the
                // format keeps sources free of #.
                Some(pos) => &raw_line[..pos],
                None => raw_line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[target]]" {
                flush(&mut out, current.take())?;
                current = Some((lineno, None, None, None, String::new()));
                continue;
            }
            if line.starts_with('[') {
                return Err(ParseError {
                    line: lineno,
                    message: format!("unsupported section `{line}` (only [[target]])"),
                });
            }
            let Some((key, raw_value)) = line.split_once('=') else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = key.trim();
            let value = parse_scalar(raw_value, lineno)?;
            match (&mut current, key) {
                (Some((_, metric, ..)), "metric") => match value {
                    TomlValue::Str(s) => *metric = Some(s),
                    TomlValue::Num(_) => {
                        return Err(ParseError {
                            line: lineno,
                            message: "`metric` must be a string".to_string(),
                        })
                    }
                },
                (Some((_, _, val, ..)), "value") => match value {
                    TomlValue::Num(n) => *val = Some(n),
                    TomlValue::Str(_) => {
                        return Err(ParseError {
                            line: lineno,
                            message: "`value` must be a number".to_string(),
                        })
                    }
                },
                (Some((_, _, _, tol, _)), "tol") => match value {
                    TomlValue::Num(n) => *tol = Some(n),
                    TomlValue::Str(_) => {
                        return Err(ParseError {
                            line: lineno,
                            message: "`tol` must be a number".to_string(),
                        })
                    }
                },
                (Some((.., source)), "source") => match value {
                    TomlValue::Str(s) => *source = s,
                    TomlValue::Num(n) => *source = format!("{n}"),
                },
                (Some(_), other) => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown [[target]] key `{other}`"),
                    })
                }
                (None, "profile") => {
                    if let TomlValue::Str(s) = value {
                        out.profile = s;
                    }
                }
                (None, "schema") => {} // reserved for future format bumps
                (None, other) => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown top-level key `{other}`"),
                    })
                }
            }
        }
        flush(&mut out, current)?;
        Ok(out)
    }

    /// Read and parse a targets file.
    ///
    /// # Errors
    ///
    /// I/O errors and parse errors, both as strings naming the path.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Outcome for one target.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityCheck {
    /// The target compared against.
    pub target: FidelityTarget,
    /// Gauge value found in the report, `None` if absent.
    pub measured: Option<f64>,
    /// `measured - target.value` (NaN when the gauge is missing or NaN).
    pub drift: f64,
    /// Within tolerance?
    pub ok: bool,
}

/// Scoreboard over all targets.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityReport {
    /// One check per target, in targets-file order.
    pub checks: Vec<FidelityCheck>,
}

impl FidelityReport {
    /// True when every target is within tolerance.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// The failing checks.
    pub fn failures(&self) -> Vec<&FidelityCheck> {
        self.checks.iter().filter(|c| !c.ok).collect()
    }

    /// Fixed-width scoreboard table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>9} {:>9} {:>7} {:>8}  {}\n",
            "metric", "measured", "target", "tol", "drift", "status"
        ));
        for c in &self.checks {
            let measured = match c.measured {
                Some(v) if v.is_finite() => format!("{v:.3}"),
                Some(_) => "NaN".to_string(),
                None => "absent".to_string(),
            };
            out.push_str(&format!(
                "{:<44} {:>9} {:>9.3} {:>7.3} {:>+8.3}  {}\n",
                c.target.metric,
                measured,
                c.target.value,
                c.target.tol,
                c.drift,
                if c.ok { "ok" } else { "DRIFT" }
            ));
        }
        out
    }
}

/// Compare a run report's fidelity gauges against the targets.
///
/// Each comparison also sets a live `fidelity/drift/...` gauge (the
/// signed deviation), so a scrape of `/metrics` after a check shows
/// drift alongside the raw statistics. A missing or non-finite gauge
/// fails its check.
pub fn check(report: &RunReport, targets: &PaperTargets) -> FidelityReport {
    let checks = targets
        .targets
        .iter()
        .map(|t| {
            let measured = report
                .gauges
                .iter()
                .find(|g| g.name == t.metric)
                .map(|g| g.value);
            let drift = match measured {
                Some(v) => v - t.value,
                None => f64::NAN,
            };
            let ok = drift.is_finite() && drift.abs() <= t.tol;
            let drift_name = match t.metric.strip_prefix("fidelity/") {
                Some(rest) => format!("fidelity/drift/{rest}"),
                None => format!("fidelity/drift/{}", t.metric),
            };
            metrics::gauge(&drift_name).set(drift);
            FidelityCheck {
                target: t.clone(),
                measured,
                drift,
                ok,
            }
        })
        .collect();
    FidelityReport { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::GaugeReport;
    use serde::Value;

    const SAMPLE: &str = r#"
# paper fidelity targets
schema = 1
profile = "repro --json --fast fig6"

[[target]]
metric = "fidelity/h/WVU/whittle"   # Figure 6
value = 0.88
tol = 0.10
source = "Fig 6, WVU stationary requests/s"

[[target]]
metric = "fidelity/alpha/WVU/duration/llcd"
value = 1.80
tol = 0.35
source = "Table 2 Week row"
"#;

    fn report_with(gauges: &[(&str, f64)]) -> RunReport {
        RunReport {
            tool: "test".to_string(),
            created_unix: 0,
            seed: None,
            args: vec![],
            config: Value::Null,
            spans: vec![],
            counters: vec![],
            gauges: gauges
                .iter()
                .map(|(n, v)| GaugeReport {
                    name: n.to_string(),
                    value: *v,
                })
                .collect(),
            histograms: vec![],
            diagnostics: None,
            slo: None,
        }
    }

    #[test]
    fn parses_targets_and_profile() {
        let t = PaperTargets::parse(SAMPLE).unwrap();
        assert_eq!(t.profile, "repro --json --fast fig6");
        assert_eq!(t.targets.len(), 2);
        assert_eq!(t.targets[0].metric, "fidelity/h/WVU/whittle");
        assert_eq!(t.targets[0].value, 0.88);
        assert_eq!(t.targets[0].tol, 0.10);
        assert!(t.targets[1].source.contains("Table 2"));
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = PaperTargets::parse("[[target]]\nvalue = 1.0\n").unwrap_err();
        assert!(err.message.contains("missing `metric`"), "{err}");
        let err = PaperTargets::parse("nonsense\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err =
            PaperTargets::parse("[[target]]\nmetric = \"m\"\nvalue = 1\ntol = 0\n").unwrap_err();
        assert!(err.message.contains("tol must be > 0"), "{err}");
    }

    #[test]
    fn in_tolerance_run_passes() {
        let targets = PaperTargets::parse(SAMPLE).unwrap();
        let report = report_with(&[
            ("fidelity/h/WVU/whittle", 0.93),
            ("fidelity/alpha/WVU/duration/llcd", 1.60),
        ]);
        let result = check(&report, &targets);
        assert!(result.passed(), "{}", result.render());
    }

    #[test]
    fn drift_and_missing_gauges_fail_with_names() {
        let targets = PaperTargets::parse(SAMPLE).unwrap();
        let report = report_with(&[("fidelity/h/WVU/whittle", 0.70)]);
        let result = check(&report, &targets);
        assert!(!result.passed());
        let failures = result.failures();
        assert_eq!(failures.len(), 2);
        assert_eq!(failures[0].target.metric, "fidelity/h/WVU/whittle");
        assert!((failures[0].drift - -0.18).abs() < 1e-12);
        assert_eq!(failures[1].measured, None);
        // Drift gauges went live.
        let snap = crate::metrics::snapshot();
        assert!(snap
            .gauges
            .iter()
            .any(|(n, _)| n == "fidelity/drift/h/WVU/whittle"));
    }
}
