//! Minimal shared HTTP/1.1 request/response layer.
//!
//! One hand-rolled parser for the whole workspace: the telemetry
//! endpoint ([`crate::server`]) and the ingest POST endpoint
//! (`webpuzzle-ingest`) both read requests through [`read_request`] and
//! answer through [`write_response`], under the same [`HttpLimits`]
//! discipline — per-connection read/write timeouts and hard caps on
//! request head and body size, so a stuck or hostile peer can pin a
//! handler thread for at most one timeout, never indefinitely.
//!
//! Scope is deliberately small: HTTP/1.1, `Connection: close`, bodies
//! only via `Content-Length` (no chunked transfer encoding), no TLS.
//! These servers face `curl`, a Prometheus agent, or a log shipper on a
//! trusted network, not the internet.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// Per-connection resource limits for [`read_request`].
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Socket read timeout; a half-open peer costs at most this long.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout; a non-draining peer costs at most this long
    /// per buffered write.
    pub write_timeout: Option<Duration>,
    /// Maximum bytes of request line + headers before the request is
    /// rejected with [`HttpError::HeadTooLarge`] (`431` at the caller).
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` accepted before the request is rejected
    /// with [`HttpError::BodyTooLarge`] (`413` at the caller).
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            read_timeout: Some(Duration::from_secs(2)),
            write_timeout: Some(Duration::from_secs(2)),
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A parsed request: method, split target, headers, and the body (empty
/// unless the request carried a `Content-Length`).
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the target, before any `?`.
    pub path: String,
    /// Raw query string after `?` (empty when absent).
    pub query: String,
    /// Header name/value pairs in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// Request body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First header value matching `name` (case-insensitive), trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Value of `key=...` in the query string, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .find_map(|kv| kv.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Socket error, including read timeouts from a stalled peer.
    Io(io::Error),
    /// The peer closed (or went quiet at EOF) before sending a complete
    /// request head. Clean close before the first byte is also this.
    Closed,
    /// Request line + headers exceeded [`HttpLimits::max_head_bytes`].
    HeadTooLarge {
        /// The configured cap that was exceeded.
        limit: usize,
    },
    /// Declared `Content-Length` exceeded [`HttpLimits::max_body_bytes`].
    BodyTooLarge {
        /// The configured cap that was exceeded.
        limit: usize,
    },
    /// The bytes received do not parse as an HTTP/1.1 request.
    Malformed(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Closed => write!(f, "connection closed before a complete request"),
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            HttpError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds {limit} bytes")
            }
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Apply the configured socket timeouts to a connection. Call once per
/// accepted connection before [`read_request`].
///
/// # Errors
///
/// Propagates `setsockopt` failures.
pub fn apply_timeouts(stream: &TcpStream, limits: &HttpLimits) -> io::Result<()> {
    stream.set_read_timeout(limits.read_timeout)?;
    stream.set_write_timeout(limits.write_timeout)
}

/// Read and parse one HTTP/1.1 request from `reader` under `limits`.
///
/// Reads until the `\r\n\r\n` head terminator (capped at
/// `max_head_bytes`), parses the request line and headers, then reads
/// exactly `Content-Length` body bytes (capped at `max_body_bytes`).
/// Requests without a `Content-Length` get an empty body — chunked
/// transfer encoding is not supported and yields
/// [`HttpError::Malformed`].
///
/// # Errors
///
/// See [`HttpError`]; callers map `HeadTooLarge`/`BodyTooLarge`/
/// `Malformed` to `431`/`413`/`400` responses and drop the connection
/// on `Io`/`Closed`.
pub fn read_request<R: Read>(reader: &mut R, limits: &HttpLimits) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge {
                limit: limits.max_head_bytes,
            });
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Closed),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(HttpError::Io(e)),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("request line has no target"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header line without a colon"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };

    if request
        .header("Transfer-Encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Malformed(
            "chunked transfer encoding unsupported",
        ));
    }

    let content_length = match request.header("Content-Length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("unparseable Content-Length"))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            limit: limits.max_body_bytes,
        });
    }

    // The head read may have pulled the start of the body into `buf`;
    // splice that in before draining the rest from the socket.
    let mut body = buf.split_off(head_end + 4);
    if body.len() > content_length {
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        match reader.read(&mut chunk[..want]) {
            Ok(0) => return Err(HttpError::Closed),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(HttpError::Io(e)),
        }
    }

    Ok(Request { body, ..request })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Answer a request that was rejected mid-read (`431`/`413`/`400`) in a
/// way that actually reaches the peer: write the response, half-close
/// the write side, then drain (bounded) whatever the peer already sent.
/// Closing with unread bytes queued makes the kernel RST the connection
/// and the error response is lost off the wire; the drain — capped at
/// 64 KiB and by the socket read timeout — prevents that without
/// letting the peer feed us forever.
///
/// # Errors
///
/// Propagates socket write failures for the response itself; drain
/// errors are intentionally swallowed (the peer is being hung up on).
pub fn reject(stream: &mut TcpStream, status: &str, body: &[u8]) -> io::Result<()> {
    write_response(stream, status, "text/plain; charset=utf-8", &[], body, true)?;
    let _ = stream.shutdown(Shutdown::Write);
    let mut sink = [0u8; 512];
    let mut drained = 0usize;
    while drained < 64 * 1024 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
    Ok(())
}

/// Write a complete `Connection: close` response: status line,
/// `Content-Type`, any extra headers, a correct `Content-Length`, and —
/// unless `include_body` is false (HEAD) — the body itself.
///
/// # Errors
///
/// Propagates socket write failures (including write timeouts).
pub fn write_response<W: Write>(
    writer: &mut W,
    status: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    include_body: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n"
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(
        writer,
        "Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    if include_body {
        writer.write_all(body)?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn limits() -> HttpLimits {
        HttpLimits::default()
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let raw =
            b"GET /events?since=42&format=folded HTTP/1.1\r\nHost: x\r\nX-Thing: a b \r\n\r\n";
        let req = read_request(&mut Cursor::new(&raw[..]), &limits()).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/events");
        assert_eq!(req.query, "since=42&format=folded");
        assert_eq!(req.query_param("since"), Some("42"));
        assert_eq!(req.query_param("format"), Some("folded"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("X-THING"), Some("a b"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn reads_exact_content_length_body() {
        let raw = b"POST /ingest HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello worldTRAILING";
        let req = read_request(&mut Cursor::new(&raw[..]), &limits()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn head_cap_is_enforced() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 100));
        let small = HttpLimits {
            max_head_bytes: 64,
            ..limits()
        };
        match read_request(&mut Cursor::new(&raw[..]), &small) {
            Err(HttpError::HeadTooLarge { limit: 64 }) => {}
            other => panic!("expected HeadTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn body_cap_is_enforced_before_reading() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        let small = HttpLimits {
            max_body_bytes: 1024,
            ..limits()
        };
        match read_request(&mut Cursor::new(&raw[..]), &small) {
            Err(HttpError::BodyTooLarge { limit: 1024 }) => {}
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_head_is_closed_not_parsed() {
        let raw = b"GET /metr";
        match read_request(&mut Cursor::new(&raw[..]), &limits()) {
            Err(HttpError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_closed() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        match read_request(&mut Cursor::new(&raw[..]), &limits()) {
            Err(HttpError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn garbage_request_line_is_malformed() {
        let raw = b"\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(&raw[..]), &limits()),
            Err(HttpError::Malformed(_))
        ));
        let raw = b"ONLYMETHOD\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(&raw[..]), &limits()),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn write_response_formats_headers_and_honors_head() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            "405 Method Not Allowed",
            "text/plain",
            &[("Allow", "GET, HEAD")],
            b"nope\n",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert!(text.contains("Allow: GET, HEAD\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\nnope\n"));

        let mut out = Vec::new();
        write_response(&mut out, "200 OK", "text/plain", &[], b"body", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.ends_with("\r\n\r\n"), "HEAD response carries no body");
    }
}
