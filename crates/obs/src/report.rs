//! Machine-readable run reports.
//!
//! [`RunReport::collect`] snapshots the span arena and metrics registry
//! into a plain serializable structure; [`RunReport::save`] writes it as
//! pretty-printed JSON (the `report.json` emitted by `repro --json`).

use std::io;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize, Value};

use crate::metrics;
use crate::spans;

/// One node of the span tree, durations in milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanReport {
    /// Span name, e.g. `"hurst/whittle"`.
    pub name: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total wall-clock milliseconds across entries.
    pub total_ms: f64,
    /// Nested child spans.
    pub children: Vec<SpanReport>,
}

/// A named counter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterReport {
    /// Counter name.
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// A named gauge value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeReport {
    /// Gauge name.
    pub name: String,
    /// Final value.
    pub value: f64,
}

/// One non-empty histogram bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketReport {
    /// Exclusive upper bound of the bucket.
    pub upper: u64,
    /// Observations in the bucket.
    pub count: u64,
}

/// A named log-scale histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramReport {
    /// Histogram name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Interpolated median (absent for empty histograms and in reports
    /// written before quantiles existed).
    pub p50: Option<f64>,
    /// Interpolated 95th percentile.
    pub p95: Option<f64>,
    /// Interpolated 99th percentile.
    pub p99: Option<f64>,
    /// Interpolated 99.9th percentile (absent in reports written before
    /// it existed).
    pub p999: Option<f64>,
    /// Non-empty buckets in ascending bound order.
    pub buckets: Vec<BucketReport>,
}

/// Complete machine-readable record of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Producing tool, e.g. `"repro"`.
    pub tool: String,
    /// Unix seconds when the report was collected.
    pub created_unix: u64,
    /// RNG seed for the run, when one applies.
    pub seed: Option<u64>,
    /// Command-line arguments after the program name.
    pub args: Vec<String>,
    /// Tool-specific configuration, serialized by the caller.
    pub config: Value,
    /// Root spans with nested children.
    pub spans: Vec<SpanReport>,
    /// All counters, sorted by name.
    pub counters: Vec<CounterReport>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeReport>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramReport>,
    /// Estimator confidence/agreement evidence published by the
    /// streaming engine via [`crate::diagnostics::set_current`]
    /// (absent in reports from tools that never publish it and in
    /// reports written before diagnostics existed).
    pub diagnostics: Option<crate::diagnostics::DiagnosticsReport>,
    /// End-of-run SLO verdict: deep-health rollup, burn rates, and
    /// alert counts per objective (absent unless the run enabled
    /// `--slo`, and in reports written before SLOs existed).
    pub slo: Option<crate::slo::DeepHealth>,
}

fn build_span_tree(stats: &[spans::SpanStat]) -> Vec<SpanReport> {
    fn children_of(stats: &[spans::SpanStat], parent: Option<usize>) -> Vec<SpanReport> {
        stats
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent == parent)
            .map(|(i, n)| SpanReport {
                name: n.name.to_string(),
                count: n.count,
                total_ms: n.total_ns as f64 / 1e6,
                children: children_of(stats, Some(i)),
            })
            .collect()
    }
    children_of(stats, None)
}

impl RunReport {
    /// Snapshot the global span arena and metrics registry.
    pub fn collect(tool: &str, seed: Option<u64>, config: Value, args: Vec<String>) -> Self {
        let created_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let snapshot = metrics::snapshot();
        RunReport {
            tool: tool.to_string(),
            created_unix,
            seed,
            args,
            config,
            spans: build_span_tree(&spans::snapshot()),
            counters: snapshot
                .counters
                .into_iter()
                .map(|(name, value)| CounterReport { name, value })
                .collect(),
            gauges: snapshot
                .gauges
                .into_iter()
                .map(|(name, value)| GaugeReport { name, value })
                .collect(),
            histograms: snapshot
                .histograms
                .into_iter()
                .map(|h| HistogramReport {
                    name: h.name,
                    count: h.count,
                    sum: h.sum,
                    p50: h.p50,
                    p95: h.p95,
                    p99: h.p99,
                    p999: h.p999,
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(b, &c)| BucketReport {
                            upper: metrics::bucket_upper_bound(b),
                            count: c,
                        })
                        .collect(),
                })
                .collect(),
            diagnostics: crate::diagnostics::current(),
            slo: crate::slo::current_report(),
        }
    }

    /// Pretty-printed JSON text.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| format!("{{\"error\": \"report serialization failed: {e}\"}}"))
    }

    /// Write the report as pretty JSON to `path`, atomically: the JSON
    /// is first written to a sibling `<path>.tmp` and then renamed over
    /// `path`, so concurrent readers (`/report` scrapers, `tail`,
    /// external dashboards polling a `--snapshot-every` file) observe
    /// either the previous complete report or the new one — never a
    /// torn half-written file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on failure the temp file is
    /// removed and `path` is left untouched.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json_pretty() + "\n")?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Find the first span node with an exactly matching name, searching
    /// the tree depth-first (span names themselves contain slashes, e.g.
    /// `"hurst/whittle"`, so lookup is by name rather than tree path).
    pub fn find_span(&self, name: &str) -> Option<&SpanReport> {
        fn by_name<'a>(nodes: &'a [SpanReport], name: &str) -> Option<&'a SpanReport> {
            for n in nodes {
                if n.name == name {
                    return Some(n);
                }
                if let Some(hit) = by_name(&n.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        by_name(&self.spans, name)
    }
}
