//! Per-thread sharded counters for contended hot loops.
//!
//! A plain [`crate::metrics::Counter`] is a single `AtomicU64`: correct,
//! but when several threads bump the same counter from a tight loop
//! (sessionizer, fGn generator, Hill estimator), every increment bounces
//! the same cache line between cores. [`ShardedCounter`] spreads the
//! count over [`SHARDS`] cache-line-aligned slots; each thread is pinned
//! to one slot by a thread-local index, so the hot path stays a single
//! `Relaxed` `fetch_add` that (with enough shards) no other core is
//! writing. Reads sum the shards — reads are rare (snapshots, scrapes),
//! writes are hot, so the asymmetry is the right trade.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards. A small power of two: enough to separate the
/// handful of analysis threads a pipeline run spawns, small enough that
/// summing on scrape stays trivial.
pub const SHARDS: usize = 16;

/// One cache line worth of counter. 128-byte alignment covers the
/// adjacent-line prefetcher on modern x86 as well as the 64-byte line.
#[repr(align(128))]
#[derive(Default)]
struct Shard(AtomicU64);

/// Monotonically increasing event count, sharded across cache lines.
///
/// The API mirrors [`crate::metrics::Counter`] (`add` / `incr` / `get`)
/// so call sites can switch by changing the constructor only. `get` is a
/// sum over shards and, like the plain counter, is monotone but not a
/// linearizable point-in-time read under concurrent writers.
#[derive(Default)]
pub struct ShardedCounter {
    shards: [Shard; SHARDS],
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCounter")
            .field("value", &self.get())
            .finish()
    }
}

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Shard index for the current thread: threads are assigned
    /// round-robin at first use, so up to `SHARDS` concurrent threads
    /// never share a slot.
    static SHARD_INDEX: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

impl ShardedCounter {
    /// Add `n` to the calling thread's shard.
    pub fn add(&self, n: u64) {
        let i = SHARD_INDEX.with(|i| *i);
        self.shards[i].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value: the sum over all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_counts_exactly() {
        let c = ShardedCounter::default();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 50_000;
        let c = Arc::new(ShardedCounter::default());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), THREADS * PER_THREAD);
    }

    #[test]
    fn threads_spread_across_shards() {
        // Two fresh threads writing the same counter must not collapse
        // into one shard *sum*-wise; we can only check the total, plus
        // that the shard assignment machinery hands out differing indices
        // across the first SHARDS threads.
        let mut seen = std::collections::HashSet::new();
        let handles: Vec<_> = (0..SHARDS)
            .map(|_| std::thread::spawn(|| SHARD_INDEX.with(|i| *i)))
            .collect();
        for h in handles {
            seen.insert(h.join().unwrap());
        }
        // Round-robin assignment interleaves with other concurrently
        // running tests, so we can't demand all SHARDS distinct values —
        // but more than one must appear.
        assert!(seen.len() > 1, "all threads landed on one shard: {seen:?}");
    }
}
