//! Rate-limited progress reporting for long-running stages.

use std::time::{Duration, Instant};

use crate::sink::{self, Event};

/// Counts work units and forwards progress to the sink at most once per
/// interval (default 200 ms), so tight loops never flood the terminal.
pub struct ProgressMeter {
    stage: &'static str,
    total: Option<u64>,
    done: u64,
    last_emit: Option<Instant>,
    interval: Duration,
}

impl ProgressMeter {
    /// Start a meter for `stage`; pass the expected total when known.
    pub fn new(stage: &'static str, total: Option<u64>) -> Self {
        ProgressMeter {
            stage,
            total,
            done: 0,
            last_emit: None,
            interval: Duration::from_millis(200),
        }
    }

    /// Override the minimum interval between emitted events.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Record `n` completed units, emitting on the first tick and then
    /// whenever the interval has elapsed.
    pub fn tick(&mut self, n: u64) {
        self.done += n;
        let due = match self.last_emit {
            None => true,
            Some(at) => at.elapsed() >= self.interval,
        };
        if due {
            self.emit();
        }
    }

    /// Units recorded so far.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// Emit a final event unconditionally.
    pub fn finish(mut self) {
        self.emit();
    }

    fn emit(&mut self) {
        sink::emit(&Event::Progress {
            stage: self.stage,
            done: self.done,
            total: self.total,
        });
        self.last_emit = Some(Instant::now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_accumulates() {
        let mut meter = ProgressMeter::new("test/stage", Some(100));
        for _ in 0..10 {
            meter.tick(5);
        }
        assert_eq!(meter.done(), 50);
        meter.finish();
    }
}
