//! Pluggable event sinks.
//!
//! Instrumented code emits [`Event`]s; the process-wide sink decides how
//! they surface. The default sink is [`NullSink`] (silence), so library
//! code can emit freely without polluting test output; binaries install
//! [`StderrSink`] (human lines) or [`JsonSink`] (one JSON object per
//! line, machine-readable) according to their flags.

use std::sync::Mutex;

use serde::{Number, Value};

/// Severity of a [`Event::Message`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Routine progress information.
    Info,
    /// Something surprising but recoverable.
    Warn,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// One instrumentation event.
#[derive(Debug)]
pub enum Event<'a> {
    /// A span finished; `depth` is its nesting level (0 = root).
    SpanClose {
        /// Span name.
        name: &'a str,
        /// Nesting depth at entry.
        depth: usize,
        /// Wall-clock duration.
        nanos: u64,
    },
    /// Rate-limited progress from a long-running stage.
    Progress {
        /// Stage name, e.g. `"genlog/records"`.
        stage: &'a str,
        /// Units completed so far.
        done: u64,
        /// Expected total, when known.
        total: Option<u64>,
    },
    /// Free-form diagnostic line.
    Message {
        /// Severity.
        level: Level,
        /// The text.
        text: &'a str,
    },
}

/// Destination for instrumentation events.
pub trait EventSink: Send {
    /// Handle one event.
    fn event(&self, event: &Event<'_>);
}

/// Discards everything (the default).
pub struct NullSink;

impl EventSink for NullSink {
    fn event(&self, _event: &Event<'_>) {}
}

/// Human-readable lines on stderr.
pub struct StderrSink {
    /// Only spans at depth `< span_depth_limit` are printed
    /// (0 silences spans entirely); progress and messages always print.
    pub span_depth_limit: usize,
}

impl Default for StderrSink {
    fn default() -> Self {
        StderrSink {
            span_depth_limit: 2,
        }
    }
}

impl EventSink for StderrSink {
    fn event(&self, event: &Event<'_>) {
        match event {
            Event::SpanClose { name, depth, nanos } => {
                if *depth < self.span_depth_limit {
                    eprintln!(
                        "[span] {:indent$}{name} {:.1} ms",
                        "",
                        *nanos as f64 / 1e6,
                        indent = depth * 2,
                    );
                }
            }
            Event::Progress { stage, done, total } => match total {
                Some(total) => eprintln!("[progress] {stage}: {done}/{total}"),
                None => eprintln!("[progress] {stage}: {done}"),
            },
            Event::Message { level, text } => {
                eprintln!("[{}] {text}", level.as_str());
            }
        }
    }
}

/// One JSON object per event on stderr, for log scrapers.
pub struct JsonSink;

impl EventSink for JsonSink {
    fn event(&self, event: &Event<'_>) {
        let value = match event {
            Event::SpanClose { name, depth, nanos } => Value::Object(vec![
                ("type".into(), Value::Str("span".into())),
                ("name".into(), Value::Str((*name).into())),
                ("depth".into(), Value::Num(Number::U(*depth as u64))),
                ("nanos".into(), Value::Num(Number::U(*nanos))),
            ]),
            Event::Progress { stage, done, total } => Value::Object(vec![
                ("type".into(), Value::Str("progress".into())),
                ("stage".into(), Value::Str((*stage).into())),
                ("done".into(), Value::Num(Number::U(*done))),
                (
                    "total".into(),
                    match total {
                        Some(t) => Value::Num(Number::U(*t)),
                        None => Value::Null,
                    },
                ),
            ]),
            Event::Message { level, text } => Value::Object(vec![
                ("type".into(), Value::Str("message".into())),
                ("level".into(), Value::Str(level.as_str().into())),
                ("text".into(), Value::Str((*text).into())),
            ]),
        };
        eprintln!("{}", serde_json::to_string(&value).unwrap_or_default());
    }
}

static SINK: Mutex<Option<Box<dyn EventSink>>> = Mutex::new(None);

/// Install the process-wide sink.
pub fn set_sink(sink: Box<dyn EventSink>) {
    *SINK.lock().expect("sink poisoned") = Some(sink);
}

/// Restore the default [`NullSink`].
pub fn clear_sink() {
    *SINK.lock().expect("sink poisoned") = None;
}

/// Deliver an event to the current sink (no-op under the default).
pub fn emit(event: &Event<'_>) {
    if let Some(sink) = SINK.lock().expect("sink poisoned").as_ref() {
        sink.event(event);
    }
}

/// Emit an informational message.
pub fn info(text: &str) {
    emit(&Event::Message {
        level: Level::Info,
        text,
    });
}

/// Emit a warning message.
pub fn warn(text: &str) {
    emit(&Event::Message {
        level: Level::Warn,
        text,
    });
}
