//! Thread-safe metrics registry: named counters, gauges, and log-scale
//! histograms.
//!
//! Handles are `Arc`-backed and lock-free after the first lookup, so
//! hot loops should fetch a handle once and increment it directly:
//!
//! ```
//! let parsed = webpuzzle_obs::metrics::counter("weblog/records_parsed");
//! parsed.add(1);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point measurement.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: bucket 0 for the value 0, then one
/// bucket per power of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Base-2 log-scale histogram over `u64` observations.
///
/// Bucket 0 holds exactly the value 0; bucket `b >= 1` holds values in
/// `[2^(b-1), 2^b)` (the last bucket's upper bound saturates).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for an observation.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Exclusive upper bound of a bucket (saturating at `u64::MAX`).
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        1
    } else if bucket >= 64 {
        u64::MAX
    } else {
        1u64 << bucket
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    histograms: BTreeMap::new(),
});

/// Fetch (creating on first use) the counter named `name`.
pub fn counter(name: &'static str) -> Arc<Counter> {
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    Arc::clone(reg.counters.entry(name).or_default())
}

/// Fetch (creating on first use) the gauge named `name`.
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    Arc::clone(reg.gauges.entry(name).or_default())
}

/// Fetch (creating on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    Arc::clone(reg.histograms.entry(name).or_default())
}

/// Snapshot of every registered metric, sorted by name.
pub struct MetricsSnapshot {
    /// `(name, value)` for each counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for each gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, count, sum, bucket counts)` for each histogram.
    pub histograms: Vec<(String, u64, u64, Vec<u64>)>,
}

/// Read a consistent-enough snapshot of the registry.
pub fn snapshot() -> MetricsSnapshot {
    let reg = REGISTRY.lock().expect("metrics registry poisoned");
    MetricsSnapshot {
        counters: reg
            .counters
            .iter()
            .map(|(name, c)| (name.to_string(), c.get()))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(name, g)| (name.to_string(), g.get()))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(name, h)| (name.to_string(), h.count(), h.sum(), h.buckets()))
            .collect(),
    }
}

/// Drop every registered metric. Existing handles keep working but are
/// no longer reported; intended for tests and multi-run tools.
pub fn reset() {
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.counters.clear();
    reg.gauges.clear();
    reg.histograms.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 1..64 {
            let lo = 1u64 << (b - 1);
            let hi = (1u64 << b) - 1;
            assert_eq!(bucket_index(lo), b, "lower edge of bucket {b}");
            assert_eq!(bucket_index(hi), b, "upper edge of bucket {b}");
            assert!(lo < bucket_upper_bound(b));
            assert!(hi < bucket_upper_bound(b));
        }
    }

    #[test]
    fn histogram_records_count_and_sum() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1); // the zero
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets[11], 1); // 1024 = 2^10 -> bucket 11
    }

    #[test]
    fn gauge_round_trips_f64() {
        let g = Gauge::default();
        g.set(0.8432);
        assert_eq!(g.get(), 0.8432);
        g.set(-1.5e300);
        assert_eq!(g.get(), -1.5e300);
    }
}
