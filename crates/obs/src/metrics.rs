//! Thread-safe metrics registry: named counters, gauges, and log-scale
//! histograms.
//!
//! Handles are `Arc`-backed and lock-free after the first lookup, so
//! hot loops should fetch a handle once and increment it directly:
//!
//! ```
//! let parsed = webpuzzle_obs::metrics::counter("weblog/records_parsed");
//! parsed.add(1);
//! ```
//!
//! Names may be built dynamically (e.g. `fidelity/h/WVU/whittle`); the
//! registry clones them on first registration. For counters bumped from
//! tight multi-threaded loops, prefer [`crate::sharded::ShardedCounter`]
//! via [`sharded_counter`], which spreads increments across cache lines.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::sharded::ShardedCounter;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point measurement.
///
/// # Atomicity and ordering
///
/// The value is stored as the `f64` bit pattern (`f64::to_bits`) inside a
/// single `AtomicU64`, so every load observes a bit pattern that some
/// store wrote in full — torn reads are impossible by construction: the
/// hardware atomic covers all 64 bits at once, and no operation ever
/// writes a partial word. All operations use `Ordering::Relaxed`: a gauge
/// is a standalone monitoring value, never used to publish other memory,
/// so no acquire/release edges are required. `Relaxed` still guarantees a
/// single total modification order per gauge, which is what
/// [`Gauge::add`]'s CAS loop relies on.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Add `delta` to the gauge atomically (CAS loop over the bit
    /// pattern), returning the updated value.
    ///
    /// Lost updates are impossible: a concurrent `add` makes the
    /// compare-exchange fail and the loop re-reads. A concurrent [`set`]
    /// linearizes before or after this `add` in the gauge's modification
    /// order.
    ///
    /// [`set`]: Gauge::set
    pub fn add(&self, delta: f64) -> f64 {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(next),
                Err(observed) => current = observed,
            }
        }
    }

    /// Subtract `delta` atomically, returning the updated value.
    pub fn sub(&self, delta: f64) -> f64 {
        self.add(-delta)
    }
}

/// Counter-name prefix for the per-kind malformed-line family
/// (`weblog/malformed_lines/<kind>`, kinds from the weblog crate's
/// `MalformedKind::as_str`). `/metrics` folds these into one labeled
/// Prometheus family, `webpuzzle_malformed_lines_total{kind="..."}`.
pub const MALFORMED_LINES_PREFIX: &str = "weblog/malformed_lines/";

/// Number of histogram buckets: bucket 0 for the value 0, then one
/// bucket per power of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Base-2 log-scale histogram over `u64` observations.
///
/// Bucket 0 holds exactly the value 0; bucket `b >= 1` holds values in
/// `[2^(b-1), 2^b)` (the last bucket's upper bound saturates).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for an observation.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Exclusive upper bound of a bucket (saturating at `u64::MAX`).
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        1
    } else if bucket >= 64 {
        u64::MAX
    } else {
        1u64 << bucket
    }
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lower_bound(bucket: usize) -> u64 {
    if bucket <= 1 {
        (bucket as u64).min(1)
    } else {
        1u64 << (bucket - 1)
    }
}

/// Interpolated quantile from per-bucket counts (full 65-bucket layout).
///
/// Within the bucket containing rank `q·n`, the value is linearly
/// interpolated between the bucket's bounds — exact for bucket 0 (which
/// holds only the value 0), within a factor of two otherwise, which is
/// the histogram's intrinsic resolution. Returns `None` for an empty
/// histogram or a `q` outside `[0, 1]`.
pub fn quantile_from_buckets(buckets: &[u64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = q * total as f64;
    let mut cumulative = 0u64;
    for (b, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let below = cumulative as f64;
        cumulative += c;
        if cumulative as f64 >= rank {
            if b == 0 {
                return Some(0.0);
            }
            let lo = bucket_lower_bound(b) as f64;
            let hi = bucket_upper_bound(b) as f64;
            let frac = ((rank - below) / c as f64).clamp(0.0, 1.0);
            return Some(lo + frac * (hi - lo));
        }
    }
    Some(bucket_upper_bound(buckets.len().saturating_sub(1)) as f64)
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Interpolated quantile `q ∈ [0, 1]` (see [`quantile_from_buckets`]).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(&self.buckets(), q)
    }

    /// Rebuild a histogram from previously exported state. `count` and
    /// `sum` are carried explicitly because the sum is not recoverable
    /// from bucket counts. Bucket vectors shorter than
    /// [`HISTOGRAM_BUCKETS`] are zero-padded; longer ones are truncated
    /// (a future layout change would bump the checkpoint version before
    /// this could misattribute mass).
    pub fn from_parts(buckets: &[u64], count: u64, sum: u64) -> Self {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS)
                .map(|i| AtomicU64::new(buckets.get(i).copied().unwrap_or(0)))
                .collect(),
            count: AtomicU64::new(count),
            sum: AtomicU64::new(sum),
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Arc<Counter>>,
    sharded: BTreeMap<String, Arc<ShardedCounter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    sharded: BTreeMap::new(),
    gauges: BTreeMap::new(),
    histograms: BTreeMap::new(),
});

fn fetch<T: Default>(map: &mut BTreeMap<String, Arc<T>>, name: &str) -> Arc<T> {
    if let Some(existing) = map.get(name) {
        return Arc::clone(existing);
    }
    let fresh = Arc::new(T::default());
    map.insert(name.to_string(), Arc::clone(&fresh));
    fresh
}

/// Fetch (creating on first use) the counter named `name`.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    fetch(&mut reg.counters, name)
}

/// Fetch (creating on first use) the sharded counter named `name`.
///
/// Sharded and plain counters share a namespace in snapshots (values are
/// summed if a name is reused across both kinds, which callers should
/// avoid).
pub fn sharded_counter(name: &str) -> Arc<ShardedCounter> {
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    fetch(&mut reg.sharded, name)
}

/// Fetch (creating on first use) the gauge named `name`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    fetch(&mut reg.gauges, name)
}

/// Fetch (creating on first use) the histogram named `name`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    fetch(&mut reg.histograms, name)
}

/// Snapshot of one histogram, including interpolated quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// All 65 per-bucket counts.
    pub buckets: Vec<u64>,
    /// Interpolated median.
    pub p50: Option<f64>,
    /// Interpolated 95th percentile.
    pub p95: Option<f64>,
    /// Interpolated 99th percentile.
    pub p99: Option<f64>,
    /// Interpolated 99.9th percentile.
    pub p999: Option<f64>,
}

/// Snapshot of every registered metric, sorted by name.
pub struct MetricsSnapshot {
    /// `(name, value)` for each counter (plain and sharded merged).
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for each gauge.
    pub gauges: Vec<(String, f64)>,
    /// One entry per histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Human-readable one-line-per-metric summary, used by the stderr
    /// sink path at the end of a run.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (name, value) in &self.counters {
            lines.push(format!("counter {name} = {value}"));
        }
        for (name, value) in &self.gauges {
            lines.push(format!("gauge {name} = {value:.6}"));
        }
        for h in &self.histograms {
            let fmt = |q: Option<f64>| match q {
                Some(v) => format!("{v:.0}"),
                None => "-".to_string(),
            };
            lines.push(format!(
                "histogram {} count={} sum={} p50={} p95={} p99={} p999={}",
                h.name,
                h.count,
                h.sum,
                fmt(h.p50),
                fmt(h.p95),
                fmt(h.p99),
                fmt(h.p999),
            ));
        }
        lines
    }
}

/// Domain of one sampled registry value; see [`sample_values`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleKind {
    /// Monotone `u64` (plain and sharded counters, histogram
    /// count/sum).
    Counter,
    /// `f64` stored as its bit pattern (`f64::to_bits`).
    Gauge,
}

/// One-pass raw read of the registry for the telemetry-history sampler
/// ([`crate::tsdb`]): every counter (plain + sharded merged), every
/// gauge (as raw bits, so the round trip stays bit-exact through
/// delta encoding), and each histogram's running `<name>/count` and
/// `<name>/sum` as derived counter series. Quantile interpolation is
/// deliberately skipped — this is the per-tick hot read.
pub fn sample_values() -> Vec<(String, SampleKind, u64)> {
    let reg = REGISTRY.lock().expect("metrics registry poisoned");
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    for (name, c) in &reg.counters {
        *counters.entry(name.clone()).or_insert(0) += c.get();
    }
    for (name, c) in &reg.sharded {
        *counters.entry(name.clone()).or_insert(0) += c.get();
    }
    let mut out: Vec<(String, SampleKind, u64)> = counters
        .into_iter()
        .map(|(name, v)| (name, SampleKind::Counter, v))
        .collect();
    for (name, g) in &reg.gauges {
        out.push((name.clone(), SampleKind::Gauge, g.get().to_bits()));
    }
    for (name, h) in &reg.histograms {
        out.push((format!("{name}/count"), SampleKind::Counter, h.count()));
        out.push((format!("{name}/sum"), SampleKind::Counter, h.sum()));
    }
    out
}

/// Remove the gauge named `name` from the registry, returning whether
/// it was present. Outstanding handles keep working but the gauge no
/// longer appears in snapshots or scrapes — how the ingest hub retires
/// per-source gauges once a disconnected source drains, instead of
/// letting them linger on `/metrics` forever.
pub fn remove_gauge(name: &str) -> bool {
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.gauges.remove(name).is_some()
}

/// Remove the (plain) counter named `name`; counterpart of
/// [`remove_gauge`] for dynamically named counters.
pub fn remove_counter(name: &str) -> bool {
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.counters.remove(name).is_some()
}

/// Read a consistent-enough snapshot of the registry.
pub fn snapshot() -> MetricsSnapshot {
    let reg = REGISTRY.lock().expect("metrics registry poisoned");
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    for (name, c) in &reg.counters {
        *counters.entry(name.clone()).or_insert(0) += c.get();
    }
    for (name, c) in &reg.sharded {
        *counters.entry(name.clone()).or_insert(0) += c.get();
    }
    MetricsSnapshot {
        counters: counters.into_iter().collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(name, h)| {
                let buckets = h.buckets();
                HistogramSnapshot {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    p50: quantile_from_buckets(&buckets, 0.50),
                    p95: quantile_from_buckets(&buckets, 0.95),
                    p99: quantile_from_buckets(&buckets, 0.99),
                    p999: quantile_from_buckets(&buckets, 0.999),
                    buckets,
                }
            })
            .collect(),
    }
}

/// Drop every registered metric. Existing handles keep working but are
/// no longer reported; intended for tests and multi-run tools.
pub fn reset() {
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.counters.clear();
    reg.sharded.clear();
    reg.gauges.clear();
    reg.histograms.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 1..64 {
            let lo = 1u64 << (b - 1);
            let hi = (1u64 << b) - 1;
            assert_eq!(bucket_index(lo), b, "lower edge of bucket {b}");
            assert_eq!(bucket_index(hi), b, "upper edge of bucket {b}");
            assert!(lo < bucket_upper_bound(b));
            assert!(hi < bucket_upper_bound(b));
            assert_eq!(bucket_lower_bound(b), lo);
        }
    }

    #[test]
    fn histogram_records_count_and_sum() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1); // the zero
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets[11], 1); // 1024 = 2^10 -> bucket 11
    }

    #[test]
    fn gauge_round_trips_f64() {
        let g = Gauge::default();
        g.set(0.8432);
        assert_eq!(g.get(), 0.8432);
        g.set(-1.5e300);
        assert_eq!(g.get(), -1.5e300);
    }

    #[test]
    fn gauge_add_sub_accumulate() {
        let g = Gauge::default();
        g.set(1.0);
        assert_eq!(g.add(2.5), 3.5);
        assert_eq!(g.sub(1.5), 2.0);
        assert_eq!(g.get(), 2.0);
    }

    #[test]
    fn gauge_concurrent_adds_are_lossless() {
        use std::sync::Arc;
        let g = Arc::new(Gauge::default());
        g.set(0.0);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        g.add(1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 80_000.0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::default();
        // 100 observations of exactly 0 -> every quantile is 0.
        for _ in 0..100 {
            h.record(0);
        }
        assert_eq!(h.quantile(0.5), Some(0.0));
        assert_eq!(h.quantile(0.99), Some(0.0));

        // Uniform-ish spread: quantiles must be monotone in q and land
        // inside the right power-of-two band.
        let h = Histogram::default();
        for v in 1..=1024u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        let p999 = h.quantile(0.999).unwrap();
        assert!(
            p50 <= p95 && p95 <= p99 && p99 <= p999,
            "{p50} {p95} {p99} {p999}"
        );
        // The true p50 is ~512: bucket [512, 1024) must contain it.
        assert!((256.0..=1024.0).contains(&p50), "p50 = {p50}");
        assert!((512.0..=1024.0).contains(&p95), "p95 = {p95}");
        // Out-of-range q and empty histograms answer None.
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(Histogram::default().quantile(0.5), None);
    }

    #[test]
    fn snapshot_merges_sharded_and_plain_counters() {
        // Distinct names so parallel tests in this binary don't interfere.
        counter("unit/snapshot_plain").add(3);
        sharded_counter("unit/snapshot_sharded").add(4);
        let snap = snapshot();
        let get = |n: &str| {
            snap.counters
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, v)| *v)
        };
        assert_eq!(get("unit/snapshot_plain"), Some(3));
        assert_eq!(get("unit/snapshot_sharded"), Some(4));
    }

    #[test]
    fn remove_gauge_drops_it_from_snapshots() {
        gauge("unit/removable").set(1.0);
        let present = |n: &str| snapshot().gauges.iter().any(|(name, _)| name == n);
        assert!(present("unit/removable"));
        assert!(remove_gauge("unit/removable"));
        assert!(!present("unit/removable"));
        // Idempotent; absent names report false.
        assert!(!remove_gauge("unit/removable"));
        // A handle taken before removal still works, silently.
        let h = gauge("unit/removable2");
        assert!(remove_gauge("unit/removable2"));
        h.set(5.0);
        assert!(!present("unit/removable2"));
    }

    #[test]
    fn sample_values_cover_all_kinds() {
        counter("unit/sample_c").add(2);
        sharded_counter("unit/sample_s").add(3);
        gauge("unit/sample_g").set(-0.25);
        histogram("unit/sample_h").record(9);
        let values = sample_values();
        let get = |n: &str| values.iter().find(|(name, _, _)| name == n).cloned();
        assert_eq!(
            get("unit/sample_c").map(|(_, k, v)| (k, v)),
            Some((SampleKind::Counter, 2))
        );
        assert_eq!(
            get("unit/sample_s").map(|(_, k, v)| (k, v)),
            Some((SampleKind::Counter, 3))
        );
        assert_eq!(
            get("unit/sample_g").map(|(_, k, v)| (k, v)),
            Some((SampleKind::Gauge, (-0.25f64).to_bits()))
        );
        assert_eq!(get("unit/sample_h/count").map(|(_, _, v)| v), Some(1));
        assert_eq!(get("unit/sample_h/sum").map(|(_, _, v)| v), Some(9));
    }

    #[test]
    fn dynamic_names_are_supported() {
        let name = format!("unit/dyn/{}", 42);
        gauge(&name).set(0.5);
        gauge(&name).add(0.25);
        let snap = snapshot();
        let v = snap
            .gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v);
        assert_eq!(v, Some(0.75));
    }
}
