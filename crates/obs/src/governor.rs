//! Process-wide overload governor: staged degradation under pressure.
//!
//! The repo can *detect* overload (drift observatory, SLO burn rates)
//! and *recover* from crashes (supervisor, checkpoints), but sustained
//! overload needs an answer of its own: heavy-tailed object sizes and
//! long-range-dependent arrivals make overload a recurring regime, not
//! a tail event. The [`PressureGovernor`] tracks a global budget over
//! the three quantities that actually bound process memory —
//!
//! - open-session occupancy in the sessionizer,
//! - buffered bytes in the ingest hub queues,
//! - telemetry-history store memory,
//!
//! — and folds them into one **pressure** score (the max of the
//! used/budget ratios, so the tightest budget governs). Pressure maps
//! to a staged degradation state:
//!
//! ```text
//!            pressure ≥ yellow_enter          pressure ≥ red_enter
//!   Green ─────────────────────────▶ Yellow ─────────────────────▶ Red
//!     ◀───────────────────────────────  ◀──────────────────────────
//!            pressure < yellow_exit          pressure < red_exit
//! ```
//!
//! Enter and exit thresholds are split (hysteresis) so the state never
//! flaps at a boundary. Every transition publishes a typed event
//! (`governor` detector, Warn for Yellow, Critical for Red, Info for
//! recovery to Green) and the current state and pressure are exported
//! as the `governor/state` and `governor/pressure` gauges.
//!
//! Consumers react to the state, not the raw inputs: the ingest hub
//! sheds lowest-priority records proportionally under pressure, the
//! engine samples estimator input under Yellow and hard-sheds under
//! Red (see `DESIGN.md` §16). The hot-path contract is one relaxed
//! atomic load per check ([`state`]); evaluation itself runs on the
//! telemetry cadence and on the engine's 64-record health tick.
//!
//! When no governor is installed every query returns
//! [`PressureState::Green`] and consumers degrade nothing — a plain
//! file-analysis run pays one atomic load and nothing else.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use crate::events::{self, Event, Severity};
use crate::metrics;

/// Staged degradation state, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureState {
    /// Nominal: every input is comfortably inside its budget.
    Green,
    /// Sustained pressure: consumers degrade honestly (estimator
    /// sampling, tightened TTL, low-priority shedding) and say so.
    Yellow,
    /// Budget exhaustion imminent: hard shed + forced checkpoint.
    Red,
}

impl PressureState {
    /// Stable wire code (`governor/state` gauge value, checkpoint byte).
    pub fn code(self) -> u8 {
        match self {
            PressureState::Green => 0,
            PressureState::Yellow => 1,
            PressureState::Red => 2,
        }
    }

    /// Inverse of [`PressureState::code`]; unknown codes clamp to Red
    /// (fail toward caution, never toward silence).
    pub fn from_code(code: u8) -> PressureState {
        match code {
            0 => PressureState::Green,
            1 => PressureState::Yellow,
            _ => PressureState::Red,
        }
    }

    /// Lower-case token for messages and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            PressureState::Green => "green",
            PressureState::Yellow => "yellow",
            PressureState::Red => "red",
        }
    }
}

/// Budgets and thresholds for the governor. A budget of 0 disables
/// that input (it contributes no pressure).
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Open-session budget (sessionizer occupancy), sessions.
    pub session_budget: u64,
    /// Ingest-hub buffered-bytes budget.
    pub queue_bytes_budget: u64,
    /// Telemetry-store memory budget, bytes.
    pub memory_budget_bytes: u64,
    /// Pressure at or above which Green escalates to Yellow.
    pub yellow_enter: f64,
    /// Pressure below which Yellow relaxes back to Green.
    pub yellow_exit: f64,
    /// Pressure at or above which Yellow escalates to Red.
    pub red_enter: f64,
    /// Pressure below which Red relaxes back to Yellow.
    pub red_exit: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            session_budget: 0,
            queue_bytes_budget: 0,
            memory_budget_bytes: 0,
            yellow_enter: 0.70,
            yellow_exit: 0.60,
            red_enter: 0.90,
            red_exit: 0.80,
        }
    }
}

// Global slots. Inputs are plain relaxed atomics — each is a standalone
// monitoring value, never used to publish other memory. Transitions are
// serialized by `TRANSITION` so concurrent evaluators cannot publish
// duplicate or out-of-order state-change events.
static INSTALLED: AtomicBool = AtomicBool::new(false);
static STATE: AtomicU8 = AtomicU8::new(0);
static PRESSURE: AtomicU64 = AtomicU64::new(0);
static SESSIONS_USED: AtomicU64 = AtomicU64::new(0);
static QUEUE_BYTES_USED: AtomicU64 = AtomicU64::new(0);
static MEMORY_BYTES_USED: AtomicU64 = AtomicU64::new(0);
static TRANSITION: Mutex<Option<GovernorConfig>> = Mutex::new(None);

/// Install (replacing any prior) the process-global governor. Resets
/// the state to Green and publishes the initial gauges.
pub fn install(cfg: GovernorConfig) {
    let mut guard = TRANSITION.lock().expect("governor poisoned");
    SESSIONS_USED.store(0, Ordering::Relaxed);
    QUEUE_BYTES_USED.store(0, Ordering::Relaxed);
    MEMORY_BYTES_USED.store(0, Ordering::Relaxed);
    STATE.store(PressureState::Green.code(), Ordering::Relaxed);
    PRESSURE.store(0f64.to_bits(), Ordering::Relaxed);
    *guard = Some(cfg);
    INSTALLED.store(true, Ordering::Relaxed);
    metrics::gauge("governor/state").set(0.0);
    metrics::gauge("governor/pressure").set(0.0);
}

/// Remove the governor; [`state`] returns Green afterwards.
pub fn uninstall() {
    let mut guard = TRANSITION.lock().expect("governor poisoned");
    *guard = None;
    INSTALLED.store(false, Ordering::Relaxed);
    STATE.store(PressureState::Green.code(), Ordering::Relaxed);
    PRESSURE.store(0f64.to_bits(), Ordering::Relaxed);
}

/// Whether a governor is installed.
pub fn is_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Current degradation state — one relaxed atomic load, the whole
/// hot-path cost of the governor. Green when none is installed.
pub fn state() -> PressureState {
    PressureState::from_code(STATE.load(Ordering::Relaxed))
}

/// Current pressure score in `[0, ∞)` (1.0 = some input exactly at
/// budget). 0 when no governor is installed.
pub fn pressure() -> f64 {
    f64::from_bits(PRESSURE.load(Ordering::Relaxed))
}

/// Report current open-session occupancy (the engine's health tick).
pub fn set_sessions(used: u64) {
    SESSIONS_USED.store(used, Ordering::Relaxed);
}

/// Report current buffered bytes across ingest queues.
pub fn set_queue_bytes(used: u64) {
    QUEUE_BYTES_USED.store(used, Ordering::Relaxed);
}

/// Report current telemetry-store memory (the tsdb sample pass).
pub fn set_memory_bytes(used: u64) {
    MEMORY_BYTES_USED.store(used, Ordering::Relaxed);
}

/// Force the state (checkpoint restore): the resumed process starts
/// from the degradation stage the killed one was in, rather than
/// re-admitting a flood it had already shed. No transition event is
/// published — restoring is not a regime change.
pub fn restore_state(code: u8) {
    STATE.store(PressureState::from_code(code).code(), Ordering::Relaxed);
    metrics::gauge("governor/state").set(f64::from(PressureState::from_code(code).code()));
}

fn ratio(used: u64, budget: u64) -> f64 {
    if budget == 0 {
        0.0
    } else {
        used as f64 / budget as f64
    }
}

/// Re-evaluate pressure against the budgets and walk the state machine
/// one step (states never skip a stage in a single evaluation, so every
/// transition is observable). Publishes gauges always and a typed event
/// on each transition. Returns the post-evaluation state.
///
/// Cheap enough for a 64-record cadence: three atomic loads, three
/// divisions, and a mutex that is uncontended outside transitions.
pub fn evaluate() -> PressureState {
    if !is_installed() {
        return PressureState::Green;
    }
    let guard = TRANSITION.lock().expect("governor poisoned");
    let Some(cfg) = guard.as_ref() else {
        return PressureState::Green;
    };
    let inputs = [
        (
            "sessions",
            ratio(SESSIONS_USED.load(Ordering::Relaxed), cfg.session_budget),
        ),
        (
            "queue_bytes",
            ratio(
                QUEUE_BYTES_USED.load(Ordering::Relaxed),
                cfg.queue_bytes_budget,
            ),
        ),
        (
            "memory_bytes",
            ratio(
                MEMORY_BYTES_USED.load(Ordering::Relaxed),
                cfg.memory_budget_bytes,
            ),
        ),
    ];
    let (dominant, pressure) = inputs
        .iter()
        .copied()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite ratios"))
        .expect("non-empty inputs");
    PRESSURE.store(pressure.to_bits(), Ordering::Relaxed);
    metrics::gauge("governor/pressure").set(pressure);

    let before = PressureState::from_code(STATE.load(Ordering::Relaxed));
    let after = match before {
        PressureState::Green if pressure >= cfg.yellow_enter => PressureState::Yellow,
        PressureState::Yellow if pressure >= cfg.red_enter => PressureState::Red,
        PressureState::Yellow if pressure < cfg.yellow_exit => PressureState::Green,
        PressureState::Red if pressure < cfg.red_exit => PressureState::Yellow,
        same => same,
    };
    if after != before {
        STATE.store(after.code(), Ordering::Relaxed);
        metrics::gauge("governor/state").set(f64::from(after.code()));
        metrics::counter("governor/transitions").incr();
        let severity = match after {
            PressureState::Green => Severity::Info,
            PressureState::Yellow => Severity::Warn,
            PressureState::Red => Severity::Critical,
        };
        let threshold = match (before, after) {
            (PressureState::Green, _) => cfg.yellow_enter,
            (PressureState::Yellow, PressureState::Red) => cfg.red_enter,
            (PressureState::Yellow, _) => cfg.yellow_exit,
            (PressureState::Red, _) => cfg.red_exit,
        };
        events::publish(Event::new(
            severity,
            "governor",
            "governor/state",
            0,
            0.0,
            f64::from(before.code()),
            f64::from(after.code()),
            pressure,
            threshold,
            format!(
                "overload governor {} -> {} (pressure {pressure:.3}, dominant input {dominant})",
                before.as_str(),
                after.as_str(),
            ),
        ));
    }
    after
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> GovernorConfig {
        GovernorConfig {
            session_budget: 100,
            queue_bytes_budget: 1_000,
            memory_budget_bytes: 0,
            ..GovernorConfig::default()
        }
    }

    #[test]
    fn uninstalled_governor_is_always_green() {
        let _lock = crate::global_test_lock();
        uninstall();
        set_sessions(u64::MAX);
        assert_eq!(state(), PressureState::Green);
        assert_eq!(evaluate(), PressureState::Green);
        assert_eq!(pressure(), 0.0);
    }

    #[test]
    fn pressure_is_the_max_ratio_and_zero_budgets_are_ignored() {
        let _lock = crate::global_test_lock();
        install(base_cfg());
        set_sessions(50); // 0.5
        set_queue_bytes(300); // 0.3
        set_memory_bytes(u64::MAX); // budget 0: ignored
        assert_eq!(evaluate(), PressureState::Green);
        assert!((pressure() - 0.5).abs() < 1e-12);
        uninstall();
    }

    #[test]
    fn escalation_walks_one_stage_at_a_time_with_hysteresis() {
        let _lock = crate::global_test_lock();
        install(base_cfg());
        // Straight to over-red pressure: first evaluation only reaches
        // Yellow, the next one Red — no stage is skipped.
        set_sessions(95);
        assert_eq!(evaluate(), PressureState::Yellow);
        assert_eq!(evaluate(), PressureState::Red);
        assert_eq!(state(), PressureState::Red);
        // Between red_exit and red_enter: Red holds (hysteresis).
        set_sessions(85);
        assert_eq!(evaluate(), PressureState::Red);
        // Below red_exit: back to Yellow; holds above yellow_exit.
        set_sessions(65);
        assert_eq!(evaluate(), PressureState::Yellow);
        assert_eq!(evaluate(), PressureState::Yellow);
        // Below yellow_exit: recovered.
        set_sessions(10);
        assert_eq!(evaluate(), PressureState::Green);
        uninstall();
    }

    #[test]
    fn transitions_publish_events_and_gauges() {
        let _lock = crate::global_test_lock();
        crate::events::reset();
        let transitions_before = metrics::counter("governor/transitions").get();
        install(base_cfg());
        set_queue_bytes(950);
        evaluate(); // -> Yellow
        evaluate(); // -> Red
        set_queue_bytes(0);
        evaluate(); // -> Yellow
        evaluate(); // -> Green
        let evs: Vec<_> = crate::events::since(0)
            .into_iter()
            .filter(|e| e.detector == "governor")
            .collect();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].severity, Severity::Warn);
        assert_eq!(evs[1].severity, Severity::Critical);
        assert_eq!(evs[2].severity, Severity::Warn);
        assert_eq!(evs[3].severity, Severity::Info);
        assert!(evs[1].message.contains("queue_bytes"));
        assert_eq!(metrics::gauge("governor/state").get(), 0.0);
        assert_eq!(
            metrics::counter("governor/transitions").get() - transitions_before,
            4
        );
        uninstall();
    }

    #[test]
    fn state_code_round_trips_for_checkpoints() {
        for s in [
            PressureState::Green,
            PressureState::Yellow,
            PressureState::Red,
        ] {
            assert_eq!(PressureState::from_code(s.code()), s);
        }
        let _lock = crate::global_test_lock();
        install(base_cfg());
        restore_state(PressureState::Yellow.code());
        assert_eq!(state(), PressureState::Yellow);
        uninstall();
    }
}
