//! Graceful-shutdown signal wiring, std-only.
//!
//! [`install`] registers SIGTERM and SIGINT handlers that do the only
//! async-signal-safe thing worth doing: set one atomic flag. Long-
//! running loops poll [`requested`] and wind down on their own terms —
//! stop accepting input, drain what is buffered, write the final
//! checkpoint and run report, exit 0. A second Ctrl-C while draining
//! still works: the handler stays installed and the flag is already
//! set, so the drain simply continues (kill -9 remains the escape
//! hatch, and checkpoint rotation makes even that survivable).
//!
//! The handler registration goes through `signal(2)` declared directly
//! against the platform libc — no crates, and the flag-only handler
//! needs none of `sigaction`'s extras. On non-Unix targets [`install`]
//! is a no-op and [`requested`] just reads the flag (tests may
//! [`trigger`] it by hand).

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::trigger();
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() {}
}

/// Register the SIGTERM/SIGINT handlers (idempotent; call early in
/// `main`, before threads that should observe the flag start).
pub fn install() {
    sys::install();
}

/// Whether a shutdown signal has arrived (or [`trigger`] was called).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Set the flag by hand — what the signal handler does, callable from
/// tests and drills without delivering a real signal.
pub fn trigger() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Clear the flag (test isolation only; a real process never unasks
/// for shutdown).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset();
        assert!(!requested());
        trigger();
        assert!(requested());
        trigger();
        assert!(requested());
        reset();
        assert!(!requested());
    }
}
