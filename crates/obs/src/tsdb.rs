//! Fixed-memory telemetry history: delta-encoded ring buffers over the
//! metrics registry.
//!
//! The instantaneous endpoints (`/metrics`, `/report`, `/profile`)
//! answer "what is true now"; this module answers "what changed over
//! the last hour" without growing without bound. A [`Tsdb`] samples
//! every counter and gauge in [`crate::metrics`] on a fixed cadence
//! (one *tick* per pass) into two retention tiers per series:
//!
//! - a **dense ring** of every sample, stored as variable-length
//!   deltas (LEB128 varints) in a byte ring — counters as wrapping
//!   arithmetic deltas, gauges as XOR of consecutive `f64` bit
//!   patterns, so decode round-trips bit-exactly in both domains;
//! - a **coarse ring** of downsampled buckets ([`CoarsePoint`]:
//!   min/max/last over [`TsdbConfig::coarse_every`] ticks), a plain
//!   fixed-capacity deque that extends lookback far beyond the dense
//!   window at ~24 bytes per bucket.
//!
//! Memory is governed twice: each dense ring is individually capped at
//! [`TsdbConfig::dense_bytes`] encoded bytes, and the whole store is
//! held under [`TsdbConfig::memory_budget_bytes`] by evicting oldest
//! dense samples from the largest series first (eviction counts are
//! reported in [`TsdbStats`] and as `tsdb/*` metrics, so the telemetry
//! layer observes its own shedding). Sample indices (ticks) are global
//! and monotone, which is what keeps `/timeseries?since=` cursors
//! valid across ring wraparound: a cursor names a tick, not a buffer
//! position.
//!
//! Timestamps are *nominal*: tick `i` maps to
//! `start_unix_ms + i * interval_ms`. The sampler thread holds the
//! cadence; wall-clock drift of the thread shows up as a late
//! `tsdb/last_tick_unix` gauge rather than as a distorted time base
//! (see DESIGN.md §15).
//!
//! A process-global instance is managed by [`install`] / [`sample_now`]
//! / [`query`]; [`start_sampler`] runs the cadence on a background
//! thread ([`SamplerHandle`]). The engine hot path is untouched: one
//! pass locks the registry exactly as long as a `/metrics` scrape does.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::metrics::{self, SampleKind};

/// Default sampling cadence.
pub const DEFAULT_INTERVAL_MS: u64 = 1_000;

/// Default per-series dense-ring capacity in *encoded* bytes. Steady
/// counters encode at 1–2 bytes per tick, so this holds roughly half an
/// hour to an hour of 1 Hz history per well-behaved series.
pub const DEFAULT_DENSE_BYTES: usize = 4_096;

/// Default dense ticks folded into one coarse bucket (60 ticks = 1
/// minute at the default cadence).
pub const DEFAULT_COARSE_EVERY: u64 = 60;

/// Default coarse buckets retained per series (1 440 minute-buckets =
/// 24 h at the default cadence).
pub const DEFAULT_COARSE_POINTS: usize = 1_440;

/// Default hard global budget across every series and tier.
pub const DEFAULT_MEMORY_BUDGET_BYTES: usize = 4 * 1024 * 1024;

/// Estimated fixed overhead per series (map entry, ring headers), used
/// in the budget math so "many tiny series" cannot dodge the cap.
const SERIES_OVERHEAD_BYTES: usize = 160;

/// Bytes per retained coarse bucket (three raw `u64` words).
const COARSE_POINT_BYTES: usize = 24;

/// Sampler configuration; see the module docs for the tier layout.
#[derive(Debug, Clone)]
pub struct TsdbConfig {
    /// Sampling cadence. Sub-second cadences are for tests and benches;
    /// production runs use ≥ 1 s.
    pub interval: Duration,
    /// Per-series dense-ring cap in encoded bytes.
    pub dense_bytes: usize,
    /// Dense ticks per coarse bucket.
    pub coarse_every: u64,
    /// Coarse buckets retained per series.
    pub coarse_points: usize,
    /// Hard global memory budget (all series, both tiers, plus
    /// per-series overhead estimates).
    pub memory_budget_bytes: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        TsdbConfig {
            interval: Duration::from_millis(DEFAULT_INTERVAL_MS),
            dense_bytes: DEFAULT_DENSE_BYTES,
            coarse_every: DEFAULT_COARSE_EVERY,
            coarse_points: DEFAULT_COARSE_POINTS,
            memory_budget_bytes: DEFAULT_MEMORY_BUDGET_BYTES,
        }
    }
}

/// LEB128-encode `v` into `out`, returning the encoded length.
fn put_varint(out: &mut VecDeque<u8>, mut v: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        n += 1;
        if v == 0 {
            out.push_back(byte);
            return n;
        }
        out.push_back(byte | 0x80);
    }
}

/// Decode one LEB128 varint starting at `pos` in `bytes`; returns
/// `(value, bytes_consumed)`.
fn get_varint(bytes: &VecDeque<u8>, pos: usize) -> (u64, usize) {
    let mut v = 0u64;
    let mut shift = 0u32;
    let mut n = 0usize;
    loop {
        let byte = bytes[pos + n];
        v |= u64::from(byte & 0x7f) << shift;
        n += 1;
        if byte & 0x80 == 0 {
            return (v, n);
        }
        shift += 7;
    }
}

/// One completed downsample bucket: extremes and final value of the
/// ticks it covers, in the series' raw domain (`u64` counters; `f64`
/// bit patterns for gauges, compared as floats when aggregating).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoarsePoint {
    /// Tick index of the last sample folded into the bucket.
    pub end_index: u64,
    /// Minimum raw value observed in the bucket.
    pub min: u64,
    /// Maximum raw value observed in the bucket.
    pub max: u64,
    /// Last raw value observed in the bucket.
    pub last: u64,
}

/// In-progress coarse bucket accumulator.
#[derive(Debug, Clone, Copy)]
struct CoarseAcc {
    min: u64,
    max: u64,
    last: u64,
    ticks: u64,
}

/// One metric's history: the dense delta ring plus the coarse deque.
#[derive(Debug)]
struct Series {
    kind: SampleKind,
    /// Encoded deltas for samples `first_index + 1 ..= last_index`.
    bytes: VecDeque<u8>,
    /// Raw value of the oldest retained dense sample.
    head: u64,
    /// Raw value of the newest dense sample (encode anchor).
    last: u64,
    /// Global tick of the oldest retained dense sample.
    first_index: u64,
    /// Dense samples currently held (0 = empty).
    len: u64,
    coarse: VecDeque<CoarsePoint>,
    acc: Option<CoarseAcc>,
    evicted: u64,
}

impl Series {
    fn new(kind: SampleKind) -> Self {
        Series {
            kind,
            bytes: VecDeque::new(),
            head: 0,
            last: 0,
            first_index: 0,
            len: 0,
            coarse: VecDeque::new(),
            acc: None,
            evicted: 0,
        }
    }

    fn encode_delta(&self, v: u64) -> u64 {
        match self.kind {
            SampleKind::Counter => v.wrapping_sub(self.last),
            SampleKind::Gauge => v ^ self.last,
        }
    }

    fn apply_delta(kind: SampleKind, base: u64, delta: u64) -> u64 {
        match kind {
            SampleKind::Counter => base.wrapping_add(delta),
            SampleKind::Gauge => base ^ delta,
        }
    }

    /// Compare raw values in the series' domain (numeric for counters,
    /// float-ordered for gauges; NaN loses every comparison so it never
    /// poisons a min/max).
    fn raw_less(kind: SampleKind, a: u64, b: u64) -> bool {
        match kind {
            SampleKind::Counter => a < b,
            SampleKind::Gauge => match f64::from_bits(a).partial_cmp(&f64::from_bits(b)) {
                Some(std::cmp::Ordering::Less) => true,
                Some(_) => false,
                None => f64::from_bits(a).is_nan() && !f64::from_bits(b).is_nan(),
            },
        }
    }

    /// Append the sample for global tick `index`, maintaining both
    /// tiers. Ticks are contiguous per series by construction (a series
    /// absent from a pass is dropped entirely, never gapped).
    fn push(&mut self, index: u64, raw: u64, cfg: &TsdbConfig) {
        if self.len == 0 {
            self.head = raw;
            self.last = raw;
            self.first_index = index;
            self.len = 1;
        } else {
            let delta = self.encode_delta(raw);
            put_varint(&mut self.bytes, delta);
            self.last = raw;
            self.len += 1;
            while self.bytes.len() > cfg.dense_bytes && self.len > 1 {
                self.evict_oldest();
            }
        }
        // Coarse tier: fold into the in-progress bucket, close it at
        // the boundary.
        let acc = self.acc.get_or_insert(CoarseAcc {
            min: raw,
            max: raw,
            last: raw,
            ticks: 0,
        });
        if Self::raw_less(self.kind, raw, acc.min) {
            acc.min = raw;
        }
        if Self::raw_less(self.kind, acc.max, raw) {
            acc.max = raw;
        }
        acc.last = raw;
        acc.ticks += 1;
        if acc.ticks >= cfg.coarse_every {
            let point = CoarsePoint {
                end_index: index,
                min: acc.min,
                max: acc.max,
                last: acc.last,
            };
            self.acc = None;
            self.coarse.push_back(point);
            while self.coarse.len() > cfg.coarse_points {
                self.coarse.pop_front();
            }
        }
    }

    /// Drop the oldest dense sample by decoding (and discarding) the
    /// first delta. The coarse tier is unaffected.
    fn evict_oldest(&mut self) {
        debug_assert!(self.len > 1);
        let (delta, n) = get_varint(&self.bytes, 0);
        self.head = Self::apply_delta(self.kind, self.head, delta);
        self.bytes.drain(..n);
        self.first_index += 1;
        self.len -= 1;
        self.evicted += 1;
    }

    /// Decode every dense sample with tick `> since`, oldest first, as
    /// `(tick, raw)` pairs. Bit-exact: the decode walk reproduces the
    /// pushed values verbatim.
    fn dense_since(&self, since: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if self.len == 0 {
            return out;
        }
        let mut value = self.head;
        let mut index = self.first_index;
        if index > since {
            out.push((index, value));
        }
        let mut pos = 0usize;
        while pos < self.bytes.len() {
            let (delta, n) = get_varint(&self.bytes, pos);
            pos += n;
            value = Self::apply_delta(self.kind, value, delta);
            index += 1;
            if index > since {
                out.push((index, value));
            }
        }
        out
    }

    /// Coarse buckets whose `end_index > since`, oldest first.
    fn coarse_since(&self, since: u64) -> Vec<CoarsePoint> {
        self.coarse
            .iter()
            .filter(|p| p.end_index > since)
            .copied()
            .collect()
    }

    /// Raw value at the newest tick `<= index`: dense if retained
    /// there, else the nearest coarse bucket's `last`. `None` when the
    /// series has no retained sample that old.
    fn value_at_or_before(&self, index: u64) -> Option<u64> {
        if self.len > 0 && index >= self.first_index {
            let last_index = self.first_index + self.len - 1;
            if index >= last_index {
                return Some(self.last);
            }
            let mut value = self.head;
            let mut i = self.first_index;
            let mut pos = 0usize;
            while i < index && pos < self.bytes.len() {
                let (delta, n) = get_varint(&self.bytes, pos);
                pos += n;
                value = Self::apply_delta(self.kind, value, delta);
                i += 1;
            }
            return Some(value);
        }
        // Dense history no longer reaches back that far: fall back to
        // the newest coarse bucket ending at or before the tick.
        self.coarse
            .iter()
            .rev()
            .find(|p| p.end_index <= index)
            .map(|p| p.last)
    }

    fn memory_bytes(&self) -> usize {
        SERIES_OVERHEAD_BYTES + self.bytes.len() + self.coarse.len() * COARSE_POINT_BYTES
    }
}

/// Point-in-time store accounting; see [`Tsdb::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TsdbStats {
    /// Live series.
    pub series: u64,
    /// Estimated bytes held across all series and tiers.
    pub memory_bytes: u64,
    /// Dense samples evicted (ring wrap + budget pressure) since
    /// install.
    pub evicted_samples: u64,
    /// The subset of evictions forced by the *global* memory budget —
    /// ring wraparound is by design, budget evictions mean the store is
    /// under memory pressure (deep health marks telemetry degraded).
    pub budget_evictions: u64,
    /// Series dropped because their metric left the registry.
    pub dropped_series: u64,
    /// Sample passes taken.
    pub ticks: u64,
}

/// One point of a [`RangeResult`]: the decoded value (and, for coarse
/// queries, the bucket extremes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangePoint {
    /// Global tick index (the `since=` cursor domain).
    pub index: u64,
    /// Nominal unix milliseconds of the tick.
    pub unix_ms: u64,
    /// Decoded value (counters as exact integers ≤ 2^53 in JSON;
    /// gauges as the stored float).
    pub value: f64,
    /// Bucket minimum (coarse tier only; `null` on the dense tier —
    /// the vendored serde derive has no skip attribute).
    pub min: Option<f64>,
    /// Bucket maximum (coarse tier only).
    pub max: Option<f64>,
}

/// Answer to a `/timeseries` range query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeResult {
    /// Queried metric name.
    pub metric: String,
    /// `"counter"` or `"gauge"`.
    pub kind: String,
    /// `"dense"` or `"coarse"`.
    pub tier: String,
    /// Effective step between returned points, milliseconds (the
    /// requested step rounded to what the tier stores).
    pub step_ms: u64,
    /// Pass this as the next `since=` to poll incrementally.
    pub next: u64,
    /// Points with tick `> since`, oldest first.
    pub points: Vec<RangePoint>,
}

/// The time-series store. Most callers use the process-global instance
/// via [`install`]/[`sample_now`]/[`query`]; tests drive owned
/// instances tick by tick.
#[derive(Debug)]
pub struct Tsdb {
    cfg: TsdbConfig,
    series: BTreeMap<String, Series>,
    /// Next tick to assign (ticks start at 1 so `since=0` means "from
    /// the beginning", matching the `/events` cursor convention).
    next_tick: u64,
    start_unix_ms: u64,
    evicted_budget: u64,
    dropped_series: u64,
}

fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl Tsdb {
    /// An empty store stamped with the current wall clock as its
    /// nominal time base.
    pub fn new(cfg: TsdbConfig) -> Self {
        Tsdb {
            cfg,
            series: BTreeMap::new(),
            next_tick: 1,
            start_unix_ms: now_unix_ms(),
            evicted_budget: 0,
            dropped_series: 0,
        }
    }

    /// The configured cadence.
    pub fn interval(&self) -> Duration {
        self.cfg.interval
    }

    /// Ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.next_tick - 1
    }

    /// Nominal unix milliseconds of tick `index`.
    pub fn tick_unix_ms(&self, index: u64) -> u64 {
        self.start_unix_ms + index.saturating_mul(self.cfg.interval.as_millis() as u64)
    }

    /// Ingest one sample pass (one tick). `values` is the registry
    /// read from [`metrics::sample_values`]; series absent from it are
    /// dropped (their metric left the registry — e.g. a retired
    /// per-source gauge), which keeps every retained series tick-
    /// contiguous.
    pub fn ingest(&mut self, values: &[(String, SampleKind, u64)]) -> u64 {
        let tick = self.next_tick;
        self.next_tick += 1;
        let mut seen = 0usize;
        for (name, kind, raw) in values {
            let entry = self
                .series
                .entry(name.clone())
                .or_insert_with(|| Series::new(*kind));
            if entry.kind != *kind {
                // A name reused across kinds: restart the series under
                // the new kind rather than decode garbage.
                *entry = Series::new(*kind);
            }
            entry.push(tick, *raw, &self.cfg);
            seen += 1;
        }
        if self.series.len() > seen {
            let before = self.series.len();
            let live: std::collections::BTreeSet<&str> =
                values.iter().map(|(n, _, _)| n.as_str()).collect();
            self.series.retain(|name, _| live.contains(name.as_str()));
            self.dropped_series += (before - self.series.len()) as u64;
        }
        self.enforce_budget();
        tick
    }

    /// Evict oldest dense samples from the largest series until the
    /// global budget holds (coarse buckets of the largest series go
    /// last, only if every dense ring is already minimal).
    fn enforce_budget(&mut self) {
        loop {
            let total: usize = self.series.values().map(Series::memory_bytes).sum();
            if total <= self.cfg.memory_budget_bytes || self.series.is_empty() {
                return;
            }
            let heaviest = self
                .series
                .values_mut()
                .max_by_key(|s| s.memory_bytes())
                .expect("non-empty");
            if heaviest.len > 1 {
                heaviest.evict_oldest();
                self.evicted_budget += 1;
            } else if !heaviest.coarse.is_empty() {
                heaviest.coarse.pop_front();
            } else {
                // Budget smaller than the per-series floor: nothing
                // further to shed without dropping live series heads.
                return;
            }
        }
    }

    /// Store accounting.
    pub fn stats(&self) -> TsdbStats {
        let evicted_ring: u64 = self.series.values().map(|s| s.evicted).sum();
        TsdbStats {
            series: self.series.len() as u64,
            memory_bytes: self.series.values().map(|s| s.memory_bytes() as u64).sum(),
            evicted_samples: evicted_ring,
            budget_evictions: self.evicted_budget,
            dropped_series: self.dropped_series,
            ticks: self.ticks(),
        }
    }

    /// Dense ticks folded into one coarse bucket.
    pub fn coarse_every(&self) -> u64 {
        self.cfg.coarse_every.max(1)
    }

    /// Oldest retained raw value of `metric` across both tiers, as
    /// `(tick, raw)` — the window-edge fallback for partial windows
    /// (history shorter than the burn-rate window).
    pub fn oldest_raw(&self, metric: &str) -> Option<(u64, u64)> {
        let series = self.series.get(metric)?;
        let coarse = series.coarse.front();
        match (series.len > 0, coarse) {
            (true, Some(b)) if b.end_index < series.first_index => Some((b.end_index, b.last)),
            (true, _) => Some((series.first_index, series.head)),
            (false, Some(b)) => Some((b.end_index, b.last)),
            (false, None) => None,
        }
    }

    /// Registered series names (for `/timeseries` discovery).
    pub fn series_names(&self) -> Vec<String> {
        self.series.keys().cloned().collect()
    }

    /// Bit-exact dense samples of `metric` with tick `> since`, as
    /// `(tick, raw)` pairs — the test hook behind the JSON query path.
    pub fn dense_raw(&self, metric: &str, since: u64) -> Option<Vec<(u64, u64)>> {
        self.series.get(metric).map(|s| s.dense_since(since))
    }

    /// Coarse buckets of `metric` with `end_index > since`.
    pub fn coarse_raw(&self, metric: &str, since: u64) -> Option<Vec<CoarsePoint>> {
        self.series.get(metric).map(|s| s.coarse_since(since))
    }

    /// Raw value of `metric` at the newest tick `<= index` (dense, then
    /// coarse fallback); the SLO engine's window-edge lookup.
    pub fn raw_at_or_before(&self, metric: &str, index: u64) -> Option<u64> {
        self.series
            .get(metric)
            .and_then(|s| s.value_at_or_before(index))
    }

    /// Kind of `metric`, when it has a series.
    pub fn kind_of(&self, metric: &str) -> Option<SampleKind> {
        self.series.get(metric).map(|s| s.kind)
    }

    fn raw_to_f64(kind: SampleKind, raw: u64) -> f64 {
        match kind {
            SampleKind::Counter => raw as f64,
            SampleKind::Gauge => f64::from_bits(raw),
        }
    }

    /// Range query behind `/timeseries?metric=&since=&step=`.
    ///
    /// `step_ms <= interval` (or 0) serves the dense tier at native
    /// cadence; a larger step serves the coarse tier (step rounded to
    /// `coarse_every * interval`). `None` when the metric has no
    /// series.
    pub fn query(&self, metric: &str, since: u64, step_ms: u64) -> Option<RangeResult> {
        let series = self.series.get(metric)?;
        let interval_ms = (self.cfg.interval.as_millis() as u64).max(1);
        let kind = match series.kind {
            SampleKind::Counter => "counter",
            SampleKind::Gauge => "gauge",
        };
        let newest = self.ticks();
        if step_ms <= interval_ms {
            let points: Vec<RangePoint> = series
                .dense_since(since)
                .into_iter()
                .map(|(index, raw)| RangePoint {
                    index,
                    unix_ms: self.tick_unix_ms(index),
                    value: Self::raw_to_f64(series.kind, raw),
                    min: None,
                    max: None,
                })
                .collect();
            Some(RangeResult {
                metric: metric.to_string(),
                kind: kind.to_string(),
                tier: "dense".to_string(),
                step_ms: interval_ms,
                next: points.last().map_or(newest.max(since), |p| p.index),
                points,
            })
        } else {
            let points: Vec<RangePoint> = series
                .coarse_since(since)
                .into_iter()
                .map(|p| RangePoint {
                    index: p.end_index,
                    unix_ms: self.tick_unix_ms(p.end_index),
                    value: Self::raw_to_f64(series.kind, p.last),
                    min: Some(Self::raw_to_f64(series.kind, p.min)),
                    max: Some(Self::raw_to_f64(series.kind, p.max)),
                })
                .collect();
            Some(RangeResult {
                metric: metric.to_string(),
                kind: kind.to_string(),
                tier: "coarse".to_string(),
                step_ms: interval_ms * self.cfg.coarse_every.max(1),
                next: points.last().map_or(newest.max(since), |p| p.index),
                points,
            })
        }
    }
}

static GLOBAL: Mutex<Option<Tsdb>> = Mutex::new(None);

/// Install (replacing any prior) the process-global store and publish
/// its self-accounting metrics. Returns the interval for callers that
/// schedule their own ticks.
pub fn install(cfg: TsdbConfig) -> Duration {
    let interval = cfg.interval;
    *GLOBAL.lock().expect("tsdb poisoned") = Some(Tsdb::new(cfg));
    interval
}

/// Remove the global store (tests and multi-run tools; [`crate::reset`]
/// calls this).
pub fn uninstall() {
    *GLOBAL.lock().expect("tsdb poisoned") = None;
}

/// Whether a global store is installed.
pub fn is_installed() -> bool {
    GLOBAL.lock().expect("tsdb poisoned").is_some()
}

/// Take one sample pass on the global store: read the registry, ingest
/// a tick, refresh the `tsdb/*` self-metrics. Returns the tick index,
/// or `None` when no store is installed.
///
/// The registry read happens *before* the store lock is taken, so a
/// concurrent `/timeseries` scrape never waits on the registry mutex.
pub fn sample_now() -> Option<u64> {
    if !is_installed() {
        return None;
    }
    let values = metrics::sample_values();
    let mut guard = GLOBAL.lock().expect("tsdb poisoned");
    let store = guard.as_mut()?;
    let tick = store.ingest(&values);
    let stats = store.stats();
    drop(guard);
    metrics::gauge("tsdb/series").set(stats.series as f64);
    metrics::gauge("tsdb/memory_bytes").set(stats.memory_bytes as f64);
    metrics::gauge("tsdb/last_tick_unix").set(now_unix_ms() as f64 / 1e3);
    if stats.evicted_samples > 0 {
        metrics::gauge("tsdb/evicted_samples").set(stats.evicted_samples as f64);
    }
    // The telemetry store is one of the overload governor's memory
    // inputs; the sample cadence doubles as its evaluation cadence so
    // pressure is re-assessed even when the engine is idle.
    crate::governor::set_memory_bytes(stats.memory_bytes);
    crate::governor::evaluate();
    Some(tick)
}

/// Range-query the global store; `None` when no store is installed or
/// the metric has no series.
pub fn query(metric: &str, since: u64, step_ms: u64) -> Option<RangeResult> {
    GLOBAL
        .lock()
        .expect("tsdb poisoned")
        .as_ref()
        .and_then(|t| t.query(metric, since, step_ms))
}

/// Series names in the global store (empty when not installed).
pub fn series_names() -> Vec<String> {
    GLOBAL
        .lock()
        .expect("tsdb poisoned")
        .as_ref()
        .map(Tsdb::series_names)
        .unwrap_or_default()
}

/// Global-store accounting, when installed.
pub fn stats() -> Option<TsdbStats> {
    GLOBAL
        .lock()
        .expect("tsdb poisoned")
        .as_ref()
        .map(Tsdb::stats)
}

/// Run `f` against the global store under its lock (the SLO engine's
/// window evaluation path). `None` when not installed.
pub fn with_store<R>(f: impl FnOnce(&Tsdb) -> R) -> Option<R> {
    GLOBAL.lock().expect("tsdb poisoned").as_ref().map(f)
}

/// Handle to the background sampler thread; see [`start_sampler`].
#[derive(Debug)]
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl SamplerHandle {
    /// Stop the cadence thread (the global store stays installed; the
    /// binaries take one final [`sample_now`] afterwards so the last
    /// partial interval is never lost).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Install the global store under `cfg`, take an immediate first
/// sample (tick 1 is the pre-traffic baseline — this is what makes
/// short-run burn rates well-defined), then tick on a background
/// thread every `cfg.interval`. After each tick the thread asks the
/// SLO engine, when one is installed, to re-evaluate.
pub fn start_sampler(cfg: TsdbConfig) -> SamplerHandle {
    let interval = install(cfg);
    sample_now();
    crate::slo::evaluate_now();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("webpuzzle-tsdb".to_string())
        .spawn(move || {
            while !stop_flag.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                sample_now();
                crate::slo::evaluate_now();
            }
        })
        .expect("spawn tsdb sampler");
    SamplerHandle {
        stop,
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dense_bytes: usize, coarse_every: u64, coarse_points: usize) -> TsdbConfig {
        TsdbConfig {
            interval: Duration::from_millis(100),
            dense_bytes,
            coarse_every,
            coarse_points,
            memory_budget_bytes: usize::MAX / 2,
        }
    }

    fn counter_pass(value: u64) -> Vec<(String, SampleKind, u64)> {
        vec![("c".to_string(), SampleKind::Counter, value)]
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = VecDeque::new();
        let values = [0u64, 1, 127, 128, 300, u64::MAX, 1 << 35];
        let mut lens = Vec::new();
        for v in values {
            lens.push(put_varint(&mut buf, v));
        }
        let mut pos = 0;
        for (v, len) in values.iter().zip(lens) {
            let (got, n) = get_varint(&buf, pos);
            assert_eq!(got, *v);
            assert_eq!(n, len);
            pos += n;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn dense_counter_round_trip_is_bit_exact() {
        let mut t = Tsdb::new(cfg(1 << 20, 1000, 10));
        let values = [0u64, 5, 5, 1_000_000, 999_999, u64::MAX, 0];
        for v in values {
            t.ingest(&counter_pass(v));
        }
        let got = t.dense_raw("c", 0).unwrap();
        assert_eq!(got.len(), values.len());
        for (i, (tick, raw)) in got.iter().enumerate() {
            assert_eq!(*tick, i as u64 + 1);
            assert_eq!(*raw, values[i]);
        }
    }

    #[test]
    fn dense_gauge_round_trip_is_bit_exact() {
        let mut t = Tsdb::new(cfg(1 << 20, 1000, 10));
        let values = [0.0f64, -1.5, f64::NAN, f64::INFINITY, 1e-300, 0.1];
        for v in values {
            t.ingest(&[("g".to_string(), SampleKind::Gauge, v.to_bits())]);
        }
        let got = t.dense_raw("g", 0).unwrap();
        for (i, (_, raw)) in got.iter().enumerate() {
            assert_eq!(*raw, values[i].to_bits(), "sample {i}");
        }
    }

    #[test]
    fn wraparound_keeps_cursors_and_values() {
        // Ring sized to hold only a handful of encoded deltas.
        let mut t = Tsdb::new(cfg(8, 1000, 10));
        for v in 0..100u64 {
            t.ingest(&counter_pass(v * 3));
        }
        let got = t.dense_raw("c", 0).unwrap();
        assert!(got.len() < 100, "ring must have wrapped");
        // Cursors stay global: the retained window is the newest ticks,
        // contiguous, with values matching the original sequence.
        let first = got[0].0;
        for (offset, (tick, raw)) in got.iter().enumerate() {
            assert_eq!(*tick, first + offset as u64);
            assert_eq!(*raw, (*tick - 1) * 3);
        }
        assert_eq!(got.last().unwrap().0, 100);
        // since= filtering against the global cursor domain.
        let tail = t.dense_raw("c", 98).unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0], (99, 98 * 3));
    }

    #[test]
    fn coarse_preserves_min_max_last() {
        let mut t = Tsdb::new(cfg(1 << 20, 4, 100));
        let values = [5u64, 1, 9, 3, 10, 2, 8, 7];
        for v in values {
            t.ingest(&counter_pass(v));
        }
        let coarse = t.coarse_raw("c", 0).unwrap();
        assert_eq!(coarse.len(), 2);
        assert_eq!(coarse[0].end_index, 4);
        assert_eq!((coarse[0].min, coarse[0].max, coarse[0].last), (1, 9, 3));
        assert_eq!(coarse[1].end_index, 8);
        assert_eq!((coarse[1].min, coarse[1].max, coarse[1].last), (2, 10, 7));
    }

    #[test]
    fn budget_evicts_oldest_from_largest() {
        let mut t = Tsdb::new(TsdbConfig {
            interval: Duration::from_millis(100),
            dense_bytes: 1 << 20,
            coarse_every: 1_000,
            coarse_points: 4,
            memory_budget_bytes: 2 * SERIES_OVERHEAD_BYTES + 64,
        });
        // Two series; "noisy" takes large random-ish deltas (many bytes
        // per sample), "flat" never moves (1 byte per sample).
        for i in 0..200u64 {
            t.ingest(&[
                (
                    "noisy".to_string(),
                    SampleKind::Counter,
                    i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                ),
                ("flat".to_string(), SampleKind::Counter, 7),
            ]);
        }
        let stats = t.stats();
        assert!(
            stats.memory_bytes <= (2 * SERIES_OVERHEAD_BYTES + 64) as u64,
            "budget must hold: {stats:?}"
        );
        assert!(stats.evicted_samples > 0);
        // The flat series keeps far more history than the noisy one.
        let flat = t.dense_raw("flat", 0).unwrap();
        let noisy = t.dense_raw("noisy", 0).unwrap();
        assert!(
            flat.len() > noisy.len(),
            "{} vs {}",
            flat.len(),
            noisy.len()
        );
    }

    #[test]
    fn absent_series_are_dropped() {
        let mut t = Tsdb::new(cfg(1 << 20, 1000, 10));
        t.ingest(&[
            ("a".to_string(), SampleKind::Counter, 1),
            ("b".to_string(), SampleKind::Counter, 1),
        ]);
        t.ingest(&[("a".to_string(), SampleKind::Counter, 2)]);
        assert_eq!(t.series_names(), vec!["a".to_string()]);
        assert_eq!(t.stats().dropped_series, 1);
    }

    #[test]
    fn value_at_or_before_walks_dense_then_coarse() {
        let mut t = Tsdb::new(cfg(8, 2, 100));
        for v in 0..50u64 {
            t.ingest(&counter_pass(v * 10));
        }
        // Newest tick value.
        assert_eq!(t.raw_at_or_before("c", 50), Some(490));
        assert_eq!(t.raw_at_or_before("c", 10_000), Some(490));
        // A tick evicted from dense resolves through a coarse bucket
        // ending at or before it.
        let dense = t.dense_raw("c", 0).unwrap();
        let oldest_dense = dense[0].0;
        assert!(oldest_dense > 4, "test needs wraparound");
        let probe = oldest_dense - 1;
        let got = t.raw_at_or_before("c", probe).unwrap();
        // Coarse buckets close on even ticks; the answer is the last
        // value of the newest bucket ending <= probe.
        let bucket_end = (probe / 2) * 2;
        assert_eq!(got, (bucket_end - 1) * 10);
        // Before any retained history: None.
        assert_eq!(t.raw_at_or_before("c", 0), None);
    }

    #[test]
    fn query_serves_dense_and_coarse_tiers() {
        let mut t = Tsdb::new(cfg(1 << 20, 4, 100));
        for v in 0..12u64 {
            t.ingest(&[
                ("c".to_string(), SampleKind::Counter, v),
                (
                    "g".to_string(),
                    SampleKind::Gauge,
                    (v as f64 * 0.5).to_bits(),
                ),
            ]);
        }
        let dense = t.query("c", 0, 0).unwrap();
        assert_eq!(dense.tier, "dense");
        assert_eq!(dense.points.len(), 12);
        assert_eq!(dense.step_ms, 100);
        assert_eq!(dense.next, 12);
        assert_eq!(dense.points[3].value, 3.0);
        assert!(dense.points[3].min.is_none());

        let coarse = t.query("g", 0, 1_000).unwrap();
        assert_eq!(coarse.tier, "coarse");
        assert_eq!(coarse.step_ms, 400);
        assert_eq!(coarse.points.len(), 3);
        assert_eq!(coarse.points[0].index, 4);
        assert_eq!(coarse.points[0].max, Some(1.5));
        assert_eq!(coarse.points[0].min, Some(0.0));
        assert_eq!(coarse.points[0].value, 1.5);

        // since= is a cursor in both tiers.
        assert_eq!(t.query("c", 10, 0).unwrap().points.len(), 2);
        assert_eq!(t.query("g", 4, 1_000).unwrap().points.len(), 2);
        assert!(t.query("missing", 0, 0).is_none());
    }

    #[test]
    fn global_install_sample_query() {
        let _lock = crate::global_test_lock();
        install(TsdbConfig {
            interval: Duration::from_millis(10),
            ..TsdbConfig::default()
        });
        metrics::counter("tsdb_unit/global_counter").add(3);
        let t1 = sample_now().unwrap();
        metrics::counter("tsdb_unit/global_counter").add(4);
        let t2 = sample_now().unwrap();
        assert_eq!(t2, t1 + 1);
        let r = query("tsdb_unit/global_counter", 0, 0).unwrap();
        assert!(r.points.len() >= 2);
        let last = r.points.last().unwrap();
        assert_eq!(last.value, 7.0);
        assert!(series_names().contains(&"tsdb_unit/global_counter".to_string()));
        assert!(stats().unwrap().ticks >= 2);
        uninstall();
        assert!(sample_now().is_none());
        assert!(query("tsdb_unit/global_counter", 0, 0).is_none());
    }
}
