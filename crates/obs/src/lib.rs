//! # webpuzzle-obs
//!
//! Instrumentation layer for the webpuzzle workspace:
//!
//! - **Spans** ([`spans`], [`span!`]): nested wall-clock timing with an
//!   allocation-free hot path. Repeated entries aggregate, so the span
//!   tree stays small even for per-interval loops.
//! - **Metrics** ([`metrics`]): a thread-safe registry of named
//!   counters, gauges, and base-2 log-scale histograms.
//! - **Sinks** ([`sink`]): pluggable live-output backends. The default
//!   is silence; binaries install [`sink::StderrSink`] (human lines) or
//!   [`sink::JsonSink`] (JSON lines) per their flags.
//! - **Progress** ([`progress::ProgressMeter`]): rate-limited progress
//!   events for long loops.
//! - **Reports** ([`report::RunReport`]): a serializable snapshot of
//!   the span tree + metrics + run configuration, written as
//!   `report.json` by `repro --json`.
//! - **Live telemetry** ([`server::serve`]): a std-only HTTP endpoint
//!   exposing `/metrics` (Prometheus text format), `/healthz`, and
//!   `/report` while a run executes (`--telemetry-addr` in the
//!   binaries).
//! - **Sharded counters** ([`sharded::ShardedCounter`]): per-thread
//!   cache-line-sharded counters for contended hot loops.
//! - **Drift events** ([`events`]): typed, schema-versioned change
//!   events in a bounded ring with per-severity counters and an
//!   append-only JSONL log, served live at `/events?since=`.
//! - **Flight recorder** ([`profile`]): sampled per-stage latency
//!   histograms (p50/p95/p99/p999 + max), slowest-record trace
//!   exemplars, and folded flamegraph dumps for the streaming
//!   pipeline, served live at `/profile`.
//! - **Estimator diagnostics** ([`diagnostics`]): schema-versioned
//!   per-window confidence intervals, Hill-plateau evidence, and
//!   cross-estimator agreement verdicts published by the streaming
//!   engine, served live at `/diagnostics`.
//! - **Fidelity** ([`fidelity`]): paper-fidelity scoreboard comparing a
//!   run report's `fidelity/...` gauges against `paper_targets.toml`
//!   (the `paper-check` binary).
//! - **Telemetry history** ([`tsdb`]): a fixed-memory in-process
//!   time-series store sampling the registry on a cadence into
//!   delta-encoded rings (dense recent tier + downsampled coarse tier,
//!   hard global memory budget), served at
//!   `/timeseries?metric=&since=&step=`.
//! - **SLOs** ([`slo`]): burn-rate objectives loaded from `slo.toml`,
//!   evaluated multi-window over the history rings, publishing `slo/*`
//!   events and a deep-health rollup served at `/healthz?deep=1`.
//! - **Overload governor** ([`governor`]): a process-wide pressure
//!   budget over sessionizer occupancy, ingest queue bytes, and
//!   telemetry memory, staged Green/Yellow/Red with hysteresis,
//!   driving priority-aware shedding and honest engine degradation.
//!
//! ```
//! use webpuzzle_obs as obs;
//!
//! {
//!     let _span = obs::span!("hurst/whittle");
//!     obs::metrics::counter("lrd/whittle_iterations").add(17);
//! } // span recorded here
//!
//! let report = obs::report::RunReport::collect(
//!     "example", Some(42), serde::Value::Null, vec![]);
//! assert!(report.find_span("hurst/whittle").is_some());
//! ```

pub mod diagnostics;
pub mod events;
pub mod fidelity;
pub mod governor;
pub mod http;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod report;
pub mod server;
pub mod sharded;
pub mod shutdown;
pub mod sink;
pub mod slo;
pub mod spans;
pub mod tsdb;

pub use progress::ProgressMeter;
pub use report::RunReport;
pub use server::{serve, serve_with_limits, ReportContext, TelemetryServer};
pub use sharded::ShardedCounter;
pub use sink::{
    clear_sink, info, set_sink, warn, Event, EventSink, JsonSink, Level, NullSink, StderrSink,
};

/// Reset spans, metrics, the drift-event ring, the flight recorder,
/// the diagnostics slot, the telemetry-history store, and the SLO
/// engine (the message sink and any JSONL event sink are left
/// installed).
///
/// For tests and tools that run several independent analyses in one
/// process.
pub fn reset() {
    spans::reset();
    metrics::reset();
    events::reset();
    profile::reset();
    diagnostics::reset();
    tsdb::uninstall();
    slo::uninstall();
    governor::uninstall();
}

/// Serializes tests that mutate process-global observability state
/// (the metrics registry, the event ring, the global tsdb/SLO
/// singletons). Lock poisoning is ignored: a failed test must not
/// cascade into unrelated ones.
#[cfg(test)]
pub(crate) fn global_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
