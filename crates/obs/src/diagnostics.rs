//! Estimator confidence & agreement diagnostics.
//!
//! The streaming engine's per-window estimates (Hill α over session
//! bytes, variance-time H over arrival counts, Welford means) are
//! point values; this module carries the *evidence* attached to them —
//! confidence intervals, Hill-plateau locations, regression fit
//! quality, and the cross-estimator agreement verdict against the
//! heavy-tail/LRD consistency relation `2H = 3 − α`
//! (Faÿ–Roueff–Soulier 2007).
//!
//! The producing engine fills [`WindowDiagnostics`] rows and publishes
//! a [`DiagnosticsReport`] into the process-wide slot via
//! [`set_current`]; the telemetry server's `/diagnostics` endpoint and
//! [`crate::report::RunReport::collect`] read it back with
//! [`current`]. Like the metrics registry, the slot is process-global
//! and cleared by [`crate::reset`].

use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Version stamp written into every [`DiagnosticsReport`]. Bump when
/// the shape of the report changes incompatibly.
pub const DIAGNOSTICS_SCHEMA_VERSION: u32 = 1;

/// Gauge-name prefix for the estimator-confidence family on `/metrics`
/// (`estimator_confidence/alpha_ci_half_width`, `…/h_ci_half_width`,
/// `…/r_squared`, `…/agreement_score`).
pub const ESTIMATOR_CONFIDENCE_PREFIX: &str = "estimator_confidence/";

/// Cross-estimator agreement verdict for one window.
///
/// The relation `2H = 3 − α` ties the Hurst exponent of the arrival
/// process to the tail index of the transfer sizes when the LRD is
/// heavy-tail-induced. `gap = |2H − (3 − α)|` is compared against the
/// propagated error band `band = √((2·σ_H)² + σ_α²)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgreementVerdict {
    /// Both estimators confident and the relation holds within the band.
    Agree,
    /// Both estimators confident and the relation fails outside the band.
    Disagree,
    /// At least one estimator is too uncertain to judge (NS Hill plot,
    /// missing CI, or an error band wider than the feasible range).
    LowConfidence,
    /// One of the two estimates is absent for this window.
    NotApplicable,
}

impl AgreementVerdict {
    /// Stable lower-case token for tables, gauges, and CI assertions.
    pub fn as_str(self) -> &'static str {
        match self {
            AgreementVerdict::Agree => "agree",
            AgreementVerdict::Disagree => "disagree",
            AgreementVerdict::LowConfidence => "low_confidence",
            AgreementVerdict::NotApplicable => "n/a",
        }
    }
}

/// Confidence evidence for one closed window's estimates.
///
/// Every field mirrors a number the engine already emits, now paired
/// with its uncertainty: `None` means the underlying estimate was not
/// produced for this window (quiet window, NS plateau, degenerate
/// regression).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowDiagnostics {
    /// Window index (matches `WindowReport::index`).
    pub index: u64,
    /// Window start time (seconds, stream clock).
    pub start: f64,
    /// Hill plateau mean over session bytes, `None` = NS.
    pub alpha: Option<f64>,
    /// Asymptotic half-width `α·z/√k` at the plateau edge.
    pub alpha_ci_half_width: Option<f64>,
    /// Coefficient of variation over the Hill assessment window.
    pub plateau_cv: Option<f64>,
    /// Left edge of the plateau assessment window (k).
    pub plateau_k_lo: Option<u64>,
    /// Right edge of the plateau assessment window (k).
    pub plateau_k_hi: Option<u64>,
    /// Variance-time H over the window's arrival counts.
    pub h: Option<f64>,
    /// Half-width of the H confidence interval (t-based, inflated).
    pub h_ci_half_width: Option<f64>,
    /// R² of the variance-time regression.
    pub h_r_squared: Option<f64>,
    /// Aggregation levels used by the variance-time fit.
    pub h_points: u64,
    /// Mean response bytes over the window.
    pub bytes_mean: Option<f64>,
    /// Welford-based half-width `z·√(s²/n)` of the byte mean.
    pub bytes_mean_ci_half_width: Option<f64>,
    /// Mean request inter-arrival time over the window (seconds).
    pub interarrival_mean: Option<f64>,
    /// Welford-based half-width of the inter-arrival mean.
    pub interarrival_ci_half_width: Option<f64>,
    /// Cross-estimator verdict on `2H = 3 − α`.
    pub agreement: AgreementVerdict,
    /// `|2H − (3 − α)|` when both estimates exist.
    pub agreement_gap: Option<f64>,
    /// Propagated error band `√((2σ_H)² + σ_α²)`.
    pub agreement_band: Option<f64>,
    /// Normalized score `gap / band` (≤ 1 = agree).
    pub agreement_score: Option<f64>,
}

/// Schema-versioned diagnostics block for `RunReport` and
/// `/diagnostics`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosticsReport {
    /// [`DIAGNOSTICS_SCHEMA_VERSION`] at write time.
    pub schema: u32,
    /// Whether diagnostics were enabled for the producing run. A
    /// disabled run still publishes the block (with no windows) so
    /// readers can tell "off" from "missing".
    pub enabled: bool,
    /// Two-sided confidence level of every interval in the report.
    pub confidence_level: f64,
    /// Per-window evidence, ascending by window index.
    pub windows: Vec<WindowDiagnostics>,
    /// Windows whose verdict was [`AgreementVerdict::LowConfidence`].
    pub low_confidence_windows: u64,
    /// Windows whose verdict was [`AgreementVerdict::Disagree`].
    pub disagreement_windows: u64,
    /// Verdict of the most recent window with a judgeable pair, or
    /// `NotApplicable` when no window produced both estimates.
    pub final_verdict: AgreementVerdict,
}

impl DiagnosticsReport {
    /// An empty report: what `/diagnostics` serves before any window
    /// closes (or when the producing run had diagnostics disabled).
    pub fn empty(enabled: bool, confidence_level: f64) -> Self {
        DiagnosticsReport {
            schema: DIAGNOSTICS_SCHEMA_VERSION,
            enabled,
            confidence_level,
            windows: Vec::new(),
            low_confidence_windows: 0,
            disagreement_windows: 0,
            final_verdict: AgreementVerdict::NotApplicable,
        }
    }
}

static CURRENT: Mutex<Option<DiagnosticsReport>> = Mutex::new(None);

/// Publish `report` as the process-wide current diagnostics block.
///
/// The engine calls this at every window close (and once at finish), so
/// `/diagnostics` and `/report` observe diagnostics as they accrue.
pub fn set_current(report: DiagnosticsReport) {
    let mut slot = CURRENT.lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(report);
}

/// The current diagnostics block, if any producer has published one.
pub fn current() -> Option<DiagnosticsReport> {
    CURRENT.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Clear the slot (part of [`crate::reset`]).
pub fn reset() {
    let mut slot = CURRENT.lock().unwrap_or_else(|e| e.into_inner());
    *slot = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(index: u64) -> WindowDiagnostics {
        WindowDiagnostics {
            index,
            start: index as f64 * 14_400.0,
            alpha: Some(1.45),
            alpha_ci_half_width: Some(0.12),
            plateau_cv: Some(0.03),
            plateau_k_lo: Some(210),
            plateau_k_hi: Some(420),
            h: Some(0.78),
            h_ci_half_width: Some(0.09),
            h_r_squared: Some(0.97),
            h_points: 7,
            bytes_mean: Some(11_432.0),
            bytes_mean_ci_half_width: Some(310.0),
            interarrival_mean: Some(0.41),
            interarrival_ci_half_width: Some(0.02),
            agreement: AgreementVerdict::Agree,
            agreement_gap: Some(0.01),
            agreement_band: Some(0.21),
            agreement_score: Some(0.05),
        }
    }

    #[test]
    fn slot_round_trips_and_resets() {
        reset();
        assert!(current().is_none());
        let mut report = DiagnosticsReport::empty(true, 0.95);
        report.windows.push(row(0));
        report.final_verdict = AgreementVerdict::Agree;
        set_current(report.clone());
        assert_eq!(current(), Some(report));
        reset();
        assert!(current().is_none());
    }

    #[test]
    fn report_serializes_with_schema_and_verdict_tokens() {
        let mut report = DiagnosticsReport::empty(true, 0.95);
        report.windows.push(row(3));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"schema\":1"));
        assert!(json.contains("\"Agree\""));
        let back: DiagnosticsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn verdict_tokens_are_stable() {
        assert_eq!(AgreementVerdict::Agree.as_str(), "agree");
        assert_eq!(AgreementVerdict::Disagree.as_str(), "disagree");
        assert_eq!(AgreementVerdict::LowConfidence.as_str(), "low_confidence");
        assert_eq!(AgreementVerdict::NotApplicable.as_str(), "n/a");
    }
}
