//! Lightweight nested wall-clock spans.
//!
//! [`enter`] (or the [`crate::span!`] macro) opens a span; dropping the
//! returned [`SpanGuard`] records its duration. Spans nest through a
//! thread-local stack, and repeated entries of the same span name under
//! the same parent aggregate into one node (total time + hit count), so
//! per-interval loops stay compact in the report.
//!
//! The hot path allocates nothing: names are `&'static str`, node lookup
//! is a linear scan over a small arena, and timing uses [`Instant`].

use std::cell::RefCell;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::sink::{self, Event};

/// Aggregated statistics for one span node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Static span name, e.g. `"hurst/whittle"`.
    pub name: &'static str,
    /// Arena index of the parent span, `None` for roots.
    pub parent: Option<usize>,
    /// Total wall-clock nanoseconds across all entries.
    pub total_ns: u64,
    /// Number of times the span was entered and closed.
    pub count: u64,
}

static ARENA: Mutex<Vec<SpanStat>> = Mutex::new(Vec::new());

/// Lock the arena, recovering from poisoning. The arena holds plain
/// aggregates that are valid after any partial update, and span guards
/// drop during panics — in particular while the stream supervisor
/// unwinds an engine panic via `catch_unwind`. Panicking here again
/// (as `expect` would) turns that recoverable panic into an abort.
fn lock_arena() -> MutexGuard<'static, Vec<SpanStat>> {
    ARENA.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Open guard for an active span; records on drop.
#[must_use = "dropping the guard immediately records a ~zero-length span"]
pub struct SpanGuard {
    idx: usize,
    name: &'static str,
    depth: usize,
    start: Instant,
}

/// Enter a span named `name`, nested under the calling thread's current
/// innermost span (if any).
pub fn enter(name: &'static str) -> SpanGuard {
    let (parent, depth) = STACK.with(|s| {
        let stack = s.borrow();
        (stack.last().copied(), stack.len())
    });
    let idx = {
        let mut arena = lock_arena();
        match arena
            .iter()
            .position(|n| n.parent == parent && n.name == name)
        {
            Some(i) => i,
            None => {
                arena.push(SpanStat {
                    name,
                    parent,
                    total_ns: 0,
                    count: 0,
                });
                arena.len() - 1
            }
        }
    };
    STACK.with(|s| s.borrow_mut().push(idx));
    SpanGuard {
        idx,
        name,
        depth,
        start: Instant::now(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos() as u64;
        {
            let mut arena = lock_arena();
            // A concurrent `reset` may have shrunk the arena while this
            // guard was open; recording into a fresh index would
            // misattribute, so the late close is dropped instead.
            if let Some(node) = arena.get_mut(self.idx) {
                node.total_ns += nanos;
                node.count += 1;
            }
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards normally drop in LIFO order; tolerate out-of-order
            // drops (e.g. guards stored in structs) by removing the last
            // matching entry instead of blindly popping.
            if let Some(at) = stack.iter().rposition(|&i| i == self.idx) {
                stack.remove(at);
            }
        });
        sink::emit(&Event::SpanClose {
            name: self.name,
            depth: self.depth,
            nanos,
        });
    }
}

/// Snapshot the whole arena (parent links are arena indices).
pub fn snapshot() -> Vec<SpanStat> {
    lock_arena().clone()
}

/// Clear all recorded spans.
///
/// Intended for tests and for process-level tools that run several
/// independent analyses; must not be called while spans are open on
/// other threads (their guards would then record into fresh indices).
pub fn reset() {
    lock_arena().clear();
    STACK.with(|s| s.borrow_mut().clear());
}

/// Open a named span; bind the result to keep it alive:
/// `let _span = webpuzzle_obs::span!("hurst/whittle");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::spans::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The arena is process-global; serialize tests that reset it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn nesting_links_parents() {
        let _lock = TEST_LOCK.lock().unwrap();
        reset();
        {
            let _a = enter("unit/outer");
            let _b = enter("unit/inner");
        }
        let snap = snapshot();
        let outer = snap.iter().position(|n| n.name == "unit/outer").unwrap();
        let inner = snap.iter().find(|n| n.name == "unit/inner").unwrap();
        assert_eq!(inner.parent, Some(outer));
        assert_eq!(snap[outer].parent, None);
        assert_eq!(snap[outer].count, 1);
    }

    #[test]
    fn poisoned_arena_recovers_instead_of_panicking() {
        let _lock = TEST_LOCK.lock().unwrap();
        reset();
        // Poison the arena mutex by panicking while holding it, as an
        // engine panic under the supervisor's catch_unwind would.
        let _ = std::panic::catch_unwind(|| {
            let _arena = ARENA.lock().unwrap();
            panic!("poison the span arena");
        });
        assert!(ARENA.is_poisoned());
        // Every entry point must keep working instead of aborting.
        {
            let _g = enter("unit/after_poison");
        }
        let snap = snapshot();
        let node = snap.iter().find(|n| n.name == "unit/after_poison").unwrap();
        assert_eq!(node.count, 1);
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn repeated_entries_aggregate() {
        let _lock = TEST_LOCK.lock().unwrap();
        reset();
        for _ in 0..3 {
            let _g = enter("unit/repeat");
        }
        let snap = snapshot();
        let node = snap.iter().find(|n| n.name == "unit/repeat").unwrap();
        assert_eq!(node.count, 3);
    }
}
