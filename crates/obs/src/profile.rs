//! Pipeline flight recorder: sampled per-stage latency attribution.
//!
//! The streaming engine is instrumented at every stage boundary
//! (source read, CLF parse, sessionize, online estimators, window
//! close, checkpoint encode, event sink). When profiling is enabled
//! ([`enable`]), a deterministic 1-in-N sample of records (record
//! index `i` is sampled iff `i % N == 0`) is timed through the whole
//! pipeline:
//!
//! 1. each stage's nanoseconds land in a per-stage HDR-style
//!    log-bucket histogram ([`LATENCY_BUCKETS`] buckets, 4 significant
//!    bits → ~6.25 % relative resolution) from which p50/p95/p99/p999
//!    and the exact max are read;
//! 2. the sampled record carries a trace context (thread-local) with
//!    its full per-stage breakdown; a bounded slowest-K ring keeps the
//!    worst traces as [`Exemplar`]s, exported as schema-versioned JSONL
//!    and served at `/profile`;
//! 3. per-stage cumulative self-time totals ([`stage_totals`]) feed
//!    per-window timing timeline events in the engine.
//!
//! Rare, inherently per-batch operations (window close, checkpoint
//! encode, event-sink append) are timed on *every* occurrence while
//! profiling is on — they are orders of magnitude less frequent than
//! records, so always-on timing is free, and sampling 1-in-N of
//! something that happens once per 4-hour window would record nothing.
//!
//! Overhead: when profiling is **off**, the per-record cost is one
//! atomic load; when **on**, unsampled records pay one atomic load plus
//! an integer modulo — no `Instant::now()` call. Only the 1-in-N
//! sampled records (and the rare per-batch stages) take timestamps.
//! The `stream-analyze --profile` path measures this end to end and
//! records `profile/overhead_pct` in the run report; CI gates it ≤ 3 %.
//!
//! Sampling is keyed on the deterministic record index, not on wall
//! clock or RNG, so the *set* of sampled records is reproducible across
//! runs and survives checkpoint/resume (the restored engine continues
//! from the restored record count). The profiler's accumulated state
//! itself intentionally resets on resume, like every other registry
//! metric (see `EngineState` in `webpuzzle-stream`): histograms and
//! exemplars have process lifetime.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Version stamped into serialized profile reports and exemplar JSONL
/// lines (`schema` field). Bump on breaking field changes only.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// Default sampling period: 1 record in 32 is traced.
pub const DEFAULT_SAMPLE_EVERY: u64 = 32;

/// Default capacity of the slowest-record exemplar ring.
pub const DEFAULT_EXEMPLAR_CAPACITY: usize = 8;

/// One instrumented pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Pulling raw bytes for one line out of the buffered reader.
    SourceRead,
    /// Parsing the line as Common Log Format.
    ClfParse,
    /// TTL-map sessionization of the parsed record.
    Sessionize,
    /// Online estimators: moments, histograms, tails, arrival rings.
    Estimators,
    /// Closing an analysis window (variance-time + Poisson battery).
    WindowClose,
    /// Encoding and atomically writing a checkpoint.
    CheckpointEncode,
    /// Appending an event to the JSONL event sink.
    EventSink,
}

/// Number of instrumented stages.
pub const STAGE_COUNT: usize = 7;

/// All stages in pipeline order.
pub const STAGES: [Stage; STAGE_COUNT] = [
    Stage::SourceRead,
    Stage::ClfParse,
    Stage::Sessionize,
    Stage::Estimators,
    Stage::WindowClose,
    Stage::CheckpointEncode,
    Stage::EventSink,
];

impl Stage {
    /// Stable snake-case token used in reports, folded stacks, and the
    /// summary table.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::SourceRead => "source_read",
            Stage::ClfParse => "clf_parse",
            Stage::Sessionize => "sessionize",
            Stage::Estimators => "estimators",
            Stage::WindowClose => "window_close",
            Stage::CheckpointEncode => "checkpoint_encode",
            Stage::EventSink => "event_sink",
        }
    }

    /// True for the stages every record passes through (their histogram
    /// counts equal the sampled-record count, so per-record throughput
    /// can be derived from them).
    pub fn is_per_record(self) -> bool {
        matches!(
            self,
            Stage::SourceRead | Stage::ClfParse | Stage::Sessionize | Stage::Estimators
        )
    }

    fn idx(self) -> usize {
        self as usize
    }
}

// --- HDR-style latency histogram -----------------------------------------
//
// The registry's base-2 histogram (factor-of-two resolution) is too
// coarse for latency tails; here each power-of-two range is split into
// 16 linear sub-buckets (4 significant bits), giving ≤ 6.25 % relative
// error across the full u64 nanosecond range in ~1 KB per stage.

const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;

/// Number of buckets in one stage's latency histogram: values `< 16`
/// get exact unit buckets, then 16 sub-buckets per power of two.
pub const LATENCY_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// Bucket index for a nanosecond observation.
pub fn latency_bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let shift = exp - SUB_BITS;
    let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
    (shift as usize) * SUB + SUB + sub
}

/// Inclusive lower bound of a bucket.
pub fn latency_lower_bound(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let shift = (idx - SUB) / SUB;
        let sub = ((idx - SUB) % SUB) as u64;
        (SUB as u64 + sub) << shift
    }
}

/// Exclusive upper bound of a bucket (saturating at `u64::MAX`).
pub fn latency_upper_bound(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64 + 1
    } else {
        let shift = (idx - SUB) / SUB;
        latency_lower_bound(idx).saturating_add(1u64 << shift)
    }
}

/// Interpolated quantile over latency-bucket counts. `None` for an
/// empty histogram or `q` outside `[0, 1]`.
pub fn latency_quantile(buckets: &[u64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = q * total as f64;
    let mut cumulative = 0u64;
    for (b, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let below = cumulative as f64;
        cumulative += c;
        if cumulative as f64 >= rank {
            let lo = latency_lower_bound(b) as f64;
            let hi = latency_upper_bound(b) as f64;
            let frac = ((rank - below) / c as f64).clamp(0.0, 1.0);
            return Some(lo + frac * (hi - lo));
        }
    }
    Some(latency_upper_bound(buckets.len().saturating_sub(1)) as f64)
}

#[derive(Debug, Clone)]
struct StageHist {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl StageHist {
    fn new() -> Self {
        StageHist {
            buckets: vec![0; LATENCY_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn record(&mut self, ns: u64) {
        self.buckets[latency_bucket_index(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(ns);
        self.max = self.max.max(ns);
    }
}

// --- global profiler state ------------------------------------------------

struct ProfilerState {
    stages: Vec<StageHist>,
    totals: [u64; STAGE_COUNT],
    exemplars: Vec<Exemplar>,
    exemplar_capacity: usize,
    records_sampled: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(DEFAULT_SAMPLE_EVERY);
static STATE: Mutex<ProfilerState> = Mutex::new(ProfilerState {
    stages: Vec::new(),
    totals: [0; STAGE_COUNT],
    exemplars: Vec::new(),
    exemplar_capacity: DEFAULT_EXEMPLAR_CAPACITY,
    records_sampled: 0,
});

/// Lock the profiler state, recovering from poisoning: a panic while
/// the lock was held (the supervisor recovers engine panics via
/// `catch_unwind`) leaves at worst one partially recorded observation,
/// which is strictly better than aborting inside the unwind.
fn lock_state() -> MutexGuard<'static, ProfilerState> {
    let mut state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
    if state.stages.is_empty() {
        state.stages = (0..STAGE_COUNT).map(|_| StageHist::new()).collect();
    }
    state
}

struct TraceCtx {
    index: u64,
    stream_time: f64,
    stage_ns: [u64; STAGE_COUNT],
}

thread_local! {
    static CURRENT: RefCell<Option<TraceCtx>> = const { RefCell::new(None) };
}

/// Turn profiling on with the given sampling period (`0` is clamped to
/// `1`, i.e. trace every record). Accumulated data is kept; call
/// [`clear`] first for a fresh run.
pub fn enable(sample_every: u64) {
    SAMPLE_EVERY.store(sample_every.max(1), Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn profiling off. Accumulated data stays readable.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Is profiling currently enabled?
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Current sampling period N (1-in-N records traced).
pub fn sample_every() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Should the record with this deterministic 0-based index be traced?
/// Always samples index 0, so even tiny streams produce an exemplar.
pub fn should_sample(index: u64) -> bool {
    is_enabled() && index.is_multiple_of(SAMPLE_EVERY.load(Ordering::Relaxed))
}

/// Resize the slowest-K exemplar ring (existing overflow drops the
/// fastest exemplars first).
pub fn set_exemplar_capacity(capacity: usize) {
    let mut state = lock_state();
    state.exemplar_capacity = capacity.max(1);
    let cap = state.exemplar_capacity;
    state.exemplars.truncate(cap);
}

/// Begin a trace for the sampled record `index` on this thread. A
/// still-active previous trace is discarded (its owner leaked it, e.g.
/// across an error return).
pub fn begin_trace(index: u64, stream_time: f64) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(TraceCtx {
            index,
            stream_time,
            stage_ns: [0; STAGE_COUNT],
        });
    });
}

/// Is a trace active on this thread?
pub fn trace_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Drop this thread's active trace, if any, without recording an
/// exemplar (error paths).
pub fn abandon_trace() {
    CURRENT.with(|c| c.borrow_mut().take());
}

/// Accumulate `ns` nanoseconds of `stage` self-time into this thread's
/// active trace. No-op without an active trace. This is how the
/// **per-record** stages are fed: the trace carries the running totals
/// and [`finish_trace`] flushes exactly one histogram observation per
/// stage per sampled record.
pub fn trace_add(stage: Stage, ns: u64) {
    CURRENT.with(|c| {
        if let Some(trace) = c.borrow_mut().as_mut() {
            trace.stage_ns[stage.idx()] += ns;
        }
    });
}

/// Record one occurrence of a **per-batch** stage (window close,
/// checkpoint encode, event sink): one histogram observation plus the
/// cumulative total, and into this thread's active trace when one
/// exists. No-op while profiling is disabled. Per-record stages go
/// through [`trace_add`] instead — feeding them here would double-count
/// once the trace flushes.
pub fn record_stage_ns(stage: Stage, ns: u64) {
    if !is_enabled() {
        return;
    }
    {
        let mut state = lock_state();
        state.stages[stage.idx()].record(ns);
        state.totals[stage.idx()] = state.totals[stage.idx()].wrapping_add(ns);
    }
    trace_add(stage, ns);
}

/// Finish this thread's active trace: flush its per-record stage times
/// into the stage histograms (one observation per stage) and fold the
/// whole breakdown into the slowest-K exemplar ring. No-op when no
/// trace is active.
pub fn finish_trace() {
    let Some(trace) = CURRENT.with(|c| c.borrow_mut().take()) else {
        return;
    };
    let total_ns: u64 = trace.stage_ns.iter().sum();
    let exemplar = Exemplar {
        schema: PROFILE_SCHEMA_VERSION,
        record_index: trace.index,
        stream_time: trace.stream_time,
        total_ns,
        stages: STAGES
            .iter()
            .filter(|s| trace.stage_ns[s.idx()] > 0)
            .map(|s| StageBreakdown {
                stage: s.as_str().to_string(),
                ns: trace.stage_ns[s.idx()],
            })
            .collect(),
    };
    let mut state = lock_state();
    for s in STAGES {
        let ns = trace.stage_ns[s.idx()];
        if s.is_per_record() && ns > 0 {
            state.stages[s.idx()].record(ns);
            state.totals[s.idx()] = state.totals[s.idx()].wrapping_add(ns);
        }
    }
    state.records_sampled += 1;
    if state.exemplars.len() == state.exemplar_capacity
        && state
            .exemplars
            .last()
            .is_some_and(|e| e.total_ns >= total_ns)
    {
        return;
    }
    let at = state
        .exemplars
        .partition_point(|e| e.total_ns >= exemplar.total_ns);
    state.exemplars.insert(at, exemplar);
    let cap = state.exemplar_capacity;
    state.exemplars.truncate(cap);
}

/// Cumulative per-stage self-time totals, nanoseconds, in [`STAGES`]
/// order. The engine diffs consecutive readings to attribute self-time
/// to each analysis window.
pub fn stage_totals() -> [u64; STAGE_COUNT] {
    lock_state().totals
}

/// Per-record timer for one `push` through the engine. Obtained via
/// [`record_timer`]; [`RecordTimer::mark`] attributes the time since
/// the previous mark to a stage. Inactive timers (unsampled records,
/// profiling off) are free: no timestamps are ever taken.
#[must_use = "an unused timer records nothing"]
pub struct RecordTimer {
    last: Option<Instant>,
}

/// Start (or adopt) the trace for the record with deterministic index
/// `index` at stream time `stream_time` seconds. If the source already
/// began a trace for this record on this thread, the timer continues
/// it; otherwise a fresh trace begins iff the index is sampled.
pub fn record_timer(index: u64, stream_time: f64) -> RecordTimer {
    if !is_enabled() {
        return RecordTimer { last: None };
    }
    // Adopt only a trace for *this* record index; a leftover trace for
    // another index was leaked (a record pulled but never pushed, e.g.
    // around fault injection) and must not pollute this record.
    let adopted = CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        match cur.as_ref() {
            Some(t) if t.index == index => true,
            Some(_) => {
                *cur = None;
                false
            }
            None => false,
        }
    });
    if adopted || index.is_multiple_of(SAMPLE_EVERY.load(Ordering::Relaxed)) {
        if !adopted {
            begin_trace(index, stream_time);
        }
        return RecordTimer {
            last: Some(Instant::now()),
        };
    }
    RecordTimer { last: None }
}

impl RecordTimer {
    /// Attribute the time since the previous mark to the per-record
    /// `stage` (accumulated in the trace, flushed at finish).
    pub fn mark(&mut self, stage: Stage) {
        if let Some(last) = self.last {
            let now = Instant::now();
            trace_add(stage, now.duration_since(last).as_nanos() as u64);
            self.last = Some(now);
        }
    }

    /// Restart the interval without attributing the elapsed time (used
    /// around sections that time themselves, like a window close).
    pub fn resync(&mut self) {
        if self.last.is_some() {
            self.last = Some(Instant::now());
        }
    }

    /// Complete the record: the active trace becomes an exemplar
    /// candidate.
    pub fn finish(mut self) {
        if self.last.take().is_some() {
            finish_trace();
        }
    }
}

impl Drop for RecordTimer {
    /// An active timer dropped without [`RecordTimer::finish`] (error
    /// return mid-push) abandons the trace so the next record cannot
    /// adopt stale stage times.
    fn drop(&mut self) {
        if self.last.is_some() {
            abandon_trace();
        }
    }
}

// --- reports --------------------------------------------------------------

/// Per-stage self-time breakdown entry of one exemplar trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageBreakdown {
    /// Stage token ([`Stage::as_str`]).
    pub stage: String,
    /// Nanoseconds the record spent in the stage.
    pub ns: u64,
}

/// One slowest-record trace retained by the exemplar ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exemplar {
    /// Serialization schema version ([`PROFILE_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Deterministic 0-based record index in the stream.
    pub record_index: u64,
    /// Record timestamp, stream seconds.
    pub stream_time: f64,
    /// Total traced nanoseconds across all stages.
    pub total_ns: u64,
    /// Per-stage breakdown (stages with zero time omitted).
    pub stages: Vec<StageBreakdown>,
}

/// Latency distribution of one stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageLatencyReport {
    /// Stage token ([`Stage::as_str`]).
    pub stage: String,
    /// Timed occurrences (= sampled records for per-record stages).
    pub count: u64,
    /// Total nanoseconds across occurrences.
    pub total_ns: u64,
    /// Interpolated median, nanoseconds.
    pub p50_ns: Option<f64>,
    /// Interpolated 95th percentile.
    pub p95_ns: Option<f64>,
    /// Interpolated 99th percentile.
    pub p99_ns: Option<f64>,
    /// Interpolated 99.9th percentile.
    pub p999_ns: Option<f64>,
    /// Exact maximum observed, nanoseconds.
    pub max_ns: u64,
}

/// Complete serializable snapshot of the flight recorder, served at
/// `/profile` and embedded in the `stream-analyze` run report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Serialization schema version ([`PROFILE_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Was profiling enabled at snapshot time?
    pub enabled: bool,
    /// Sampling period N (1-in-N records traced).
    pub sample_every: u64,
    /// Records fully traced so far.
    pub records_sampled: u64,
    /// One entry per stage, pipeline order, empty stages included.
    pub stages: Vec<StageLatencyReport>,
    /// Slowest sampled records, worst first.
    pub exemplars: Vec<Exemplar>,
}

impl ProfileReport {
    /// Look up one stage's latency report by token.
    pub fn stage(&self, token: &str) -> Option<&StageLatencyReport> {
        self.stages.iter().find(|s| s.stage == token)
    }

    /// Collapsed-stack ("folded") rendering of the per-stage self-time
    /// totals — one `pipeline;<stage> <total_ns>` line per non-empty
    /// stage, the format `flamegraph.pl` / inferno consume directly.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for s in &self.stages {
            if s.total_ns > 0 {
                out.push_str(&format!("pipeline;{} {}\n", s.stage, s.total_ns));
            }
        }
        out
    }

    /// Exemplars as JSONL, worst record first, one schema-versioned
    /// JSON object per line.
    pub fn exemplars_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.exemplars {
            out.push_str(&serde_json::to_string(e).unwrap_or_else(|_| "{}".to_string()));
            out.push('\n');
        }
        out
    }
}

/// Snapshot the flight recorder into a [`ProfileReport`].
pub fn snapshot() -> ProfileReport {
    let state = lock_state();
    ProfileReport {
        schema: PROFILE_SCHEMA_VERSION,
        enabled: is_enabled(),
        sample_every: sample_every(),
        records_sampled: state.records_sampled,
        stages: STAGES
            .iter()
            .map(|s| {
                let h = &state.stages[s.idx()];
                StageLatencyReport {
                    stage: s.as_str().to_string(),
                    count: h.count,
                    total_ns: h.sum,
                    p50_ns: latency_quantile(&h.buckets, 0.50),
                    p95_ns: latency_quantile(&h.buckets, 0.95),
                    p99_ns: latency_quantile(&h.buckets, 0.99),
                    p999_ns: latency_quantile(&h.buckets, 0.999),
                    max_ns: h.max,
                }
            })
            .collect(),
        exemplars: state.exemplars.clone(),
    }
}

/// Clear accumulated data (histograms, totals, exemplars, sampled
/// count) but keep the enabled flag, sampling period, and exemplar
/// capacity. Used between the profiler's self-overhead measurement and
/// the real run.
pub fn clear() {
    let mut state = lock_state();
    for h in &mut state.stages {
        *h = StageHist::new();
    }
    state.totals = [0; STAGE_COUNT];
    state.exemplars.clear();
    state.records_sampled = 0;
}

/// Full reset: disable profiling, restore the default sampling period
/// and exemplar capacity, and clear all data. Called by
/// [`crate::reset`]; any trace active on the calling thread is
/// abandoned.
pub fn reset() {
    ENABLED.store(false, Ordering::Relaxed);
    SAMPLE_EVERY.store(DEFAULT_SAMPLE_EVERY, Ordering::Relaxed);
    abandon_trace();
    let mut state = lock_state();
    for h in &mut state.stages {
        *h = StageHist::new();
    }
    state.totals = [0; STAGE_COUNT];
    state.exemplars.clear();
    state.exemplar_capacity = DEFAULT_EXEMPLAR_CAPACITY;
    state.records_sampled = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Profiler state is process-global; serialize tests that touch it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn latency_buckets_partition_the_u64_range() {
        // Exact unit buckets below 16.
        for v in 0..16u64 {
            assert_eq!(latency_bucket_index(v), v as usize);
        }
        // Round trip: every value lands in a bucket whose bounds
        // contain it, and bucket bounds tile without gaps.
        for &v in &[16u64, 17, 31, 32, 33, 1_000, 65_535, 1 << 40, u64::MAX] {
            let b = latency_bucket_index(v);
            assert!(b < LATENCY_BUCKETS, "bucket {b} for {v}");
            assert!(latency_lower_bound(b) <= v, "lower bound of {b} vs {v}");
            assert!(
                v < latency_upper_bound(b) || latency_upper_bound(b) == u64::MAX,
                "upper bound of {b} vs {v}"
            );
        }
        for b in 1..LATENCY_BUCKETS {
            assert_eq!(
                latency_upper_bound(b - 1),
                latency_lower_bound(b),
                "buckets {b} tile"
            );
        }
        // Relative resolution is 1/16 of the value's power-of-two band.
        let b = latency_bucket_index(1_000_000);
        let width = (latency_upper_bound(b) - latency_lower_bound(b)) as f64;
        assert!(width / 1_000_000.0 < 0.07, "width {width}");
    }

    #[test]
    fn quantiles_interpolate_and_order() {
        let mut h = StageHist::new();
        for v in 1..=10_000u64 {
            h.record(v * 100);
        }
        let p50 = latency_quantile(&h.buckets, 0.50).unwrap();
        let p95 = latency_quantile(&h.buckets, 0.95).unwrap();
        let p99 = latency_quantile(&h.buckets, 0.99).unwrap();
        let p999 = latency_quantile(&h.buckets, 0.999).unwrap();
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
        // True quantiles are 500_050, 950_005, ...: the histogram's
        // ~6 % resolution must hold.
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.08, "p50 = {p50}");
        assert!((p95 - 950_000.0).abs() / 950_000.0 < 0.08, "p95 = {p95}");
        assert!((p999 - 999_000.0).abs() / 999_000.0 < 0.08, "p999 = {p999}");
        assert_eq!(h.max, 1_000_000);
        assert_eq!(latency_quantile(&h.buckets, 1.5), None);
        assert_eq!(latency_quantile(&[0u64; 4], 0.5), None);
    }

    #[test]
    fn sampling_is_deterministic_and_gated() {
        let _lock = locked();
        reset();
        assert!(!should_sample(0), "disabled profiler samples nothing");
        enable(10);
        assert!(should_sample(0));
        assert!(!should_sample(1));
        assert!(should_sample(10));
        assert!(should_sample(20));
        enable(0); // clamped to every record
        assert!(should_sample(7));
        reset();
    }

    #[test]
    fn traces_accumulate_into_exemplars_and_histograms() {
        let _lock = locked();
        reset();
        enable(1);
        for i in 0..5u64 {
            begin_trace(i, i as f64);
            trace_add(Stage::ClfParse, 100 * (i + 1));
            trace_add(Stage::Sessionize, 50);
            finish_trace();
        }
        let report = snapshot();
        assert_eq!(report.records_sampled, 5);
        let parse = report.stage("clf_parse").unwrap();
        assert_eq!(parse.count, 5);
        assert_eq!(parse.total_ns, 100 + 200 + 300 + 400 + 500);
        assert_eq!(parse.max_ns, 500);
        assert!(parse.p999_ns.is_some());
        // Worst record first.
        assert_eq!(report.exemplars[0].record_index, 4);
        assert_eq!(report.exemplars[0].total_ns, 550);
        assert_eq!(report.exemplars[0].stages.len(), 2);
        // Folded output covers the non-empty stages.
        let folded = report.folded();
        assert!(folded.contains("pipeline;clf_parse 1500\n"));
        assert!(folded.contains("pipeline;sessionize 250\n"));
        assert!(!folded.contains("window_close"));
        reset();
    }

    #[test]
    fn exemplar_ring_keeps_the_slowest_k() {
        let _lock = locked();
        reset();
        enable(1);
        set_exemplar_capacity(3);
        for i in 0..10u64 {
            begin_trace(i, 0.0);
            // Total ns: 10, 20, ..., 100 — only 80/90/100 survive.
            trace_add(Stage::Estimators, (i + 1) * 10);
            finish_trace();
        }
        let report = snapshot();
        assert_eq!(report.records_sampled, 10);
        let totals: Vec<u64> = report.exemplars.iter().map(|e| e.total_ns).collect();
        assert_eq!(totals, vec![100, 90, 80]);
        reset();
    }

    #[test]
    fn record_timer_adopts_or_starts_and_abandons_on_drop() {
        let _lock = locked();
        reset();
        enable(2);
        // Unsampled index: inactive timer, no trace.
        let t = record_timer(1, 0.0);
        t.finish();
        assert!(!trace_active());
        assert_eq!(snapshot().records_sampled, 0);
        // Sampled index: active timer, finish records an exemplar.
        let mut t = record_timer(2, 17.0);
        trace_add(Stage::Sessionize, 5);
        t.mark(Stage::Estimators);
        t.finish();
        assert_eq!(snapshot().records_sampled, 1);
        assert_eq!(snapshot().exemplars[0].stream_time, 17.0);
        // A source-started trace for the same index is adopted even
        // when the index itself is not on the sampling grid.
        begin_trace(1, 1.0);
        trace_add(Stage::SourceRead, 7);
        let t = record_timer(1, 1.0);
        assert!(trace_active());
        t.finish();
        assert_eq!(snapshot().records_sampled, 2);
        // A leaked trace for a *different* index is discarded, not
        // adopted.
        begin_trace(99, 3.0);
        let t = record_timer(3, 3.0);
        assert!(!trace_active());
        t.finish();
        assert_eq!(snapshot().records_sampled, 2);
        // Dropping an active timer abandons the trace (error path).
        let t = record_timer(4, 2.0);
        assert!(trace_active());
        drop(t);
        assert!(!trace_active());
        assert_eq!(snapshot().records_sampled, 2);
        reset();
    }

    #[test]
    fn clear_keeps_config_reset_restores_defaults() {
        let _lock = locked();
        reset();
        enable(5);
        set_exemplar_capacity(2);
        begin_trace(0, 0.0);
        record_stage_ns(Stage::EventSink, 9);
        finish_trace();
        assert_eq!(snapshot().records_sampled, 1);
        clear();
        let report = snapshot();
        assert!(report.enabled);
        assert_eq!(report.sample_every, 5);
        assert_eq!(report.records_sampled, 0);
        assert!(report.stages.iter().all(|s| s.count == 0));
        reset();
        assert!(!is_enabled());
        assert_eq!(sample_every(), DEFAULT_SAMPLE_EVERY);
    }

    #[test]
    fn report_round_trips_through_json() {
        let _lock = locked();
        reset();
        enable(1);
        begin_trace(3, 42.5);
        record_stage_ns(Stage::WindowClose, 1_234);
        finish_trace();
        let report = snapshot();
        let json = serde_json::to_string(&report).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.schema, PROFILE_SCHEMA_VERSION);
        // Exemplar JSONL lines parse individually.
        let jsonl = report.exemplars_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        let e: Exemplar = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(e.record_index, 3);
        reset();
    }
}
