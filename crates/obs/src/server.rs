//! Std-only live telemetry endpoint.
//!
//! [`serve`] binds a `TcpListener` and answers three routes from a
//! background thread, so a long `repro` / `genlog` run can be observed
//! while it executes:
//!
//! - `GET /metrics` — the metrics registry in Prometheus text
//!   exposition format (counters, gauges, histograms with cumulative
//!   buckets);
//! - `GET /healthz` — `200 ok` liveness probe; `GET /healthz?deep=1`
//!   returns the [`crate::slo`] deep-health rollup as JSON instead
//!   (`503` when any subsystem is critical, so a probe can alert on
//!   status code alone);
//! - `GET /report` — the current [`RunReport`] as JSON, collected at
//!   request time;
//! - `GET /events?since=SEQ` — drift events published through
//!   [`crate::events`] with sequence numbers above `SEQ` (default 0:
//!   the whole ring), as a JSON array. Pollers pass the highest `seq`
//!   they have seen as the next cursor;
//! - `GET /profile` — the flight recorder's [`crate::profile`]
//!   snapshot (per-stage latency histograms + slowest-record
//!   exemplars) as JSON; `GET /profile?format=folded` returns the
//!   collapsed-stack rendering flamegraph tooling consumes directly;
//! - `GET /diagnostics` — the current estimator-confidence block
//!   ([`crate::diagnostics::DiagnosticsReport`]) as JSON: per-window
//!   CIs, Hill-plateau evidence, and agreement verdicts;
//! - `GET /timeseries?metric=NAME&since=TICK&step=MS` — a range query
//!   against the in-process telemetry history ([`crate::tsdb`], when
//!   `--telemetry-history` installed it): points after the `since`
//!   cursor, from the dense tier (`step` ≤ the sampling interval) or
//!   the downsampled coarse tier (larger `step`, min/max per bucket).
//!   Without `metric=` it lists the stored series and the store's
//!   memory accounting.
//!
//! The server is deliberately minimal: one handler thread, one request
//! per connection (`Connection: close`), no TLS, no keep-alive — it
//! exists to be scraped by `curl` or a Prometheus agent on localhost,
//! not to face the internet. Every response (including errors) carries
//! a correct `Content-Length`; non-GET methods get a proper `405` with
//! an `Allow: GET` header rather than a dropped connection.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use serde::Value;

use crate::events;
use crate::http::{self, HttpError, HttpLimits};
use crate::metrics::{self, MetricsSnapshot};
use crate::report::RunReport;

/// Identity baked into `/report` responses (the report itself is
/// re-collected from the live span arena and metrics registry on every
/// request).
#[derive(Debug, Clone)]
pub struct ReportContext {
    /// Producing tool, e.g. `"repro"`.
    pub tool: String,
    /// RNG seed of the run, when one applies.
    pub seed: Option<u64>,
    /// Tool-specific configuration.
    pub config: Value,
    /// Command-line arguments after the program name.
    pub args: Vec<String>,
}

impl Default for ReportContext {
    fn default() -> Self {
        ReportContext {
            tool: "unknown".to_string(),
            seed: None,
            config: Value::Null,
            args: Vec::new(),
        }
    }
}

/// Handle to a running telemetry server.
///
/// Dropping the handle does **not** stop the server (binaries hold it
/// until process exit); call [`TelemetryServer::shutdown`] for an
/// orderly stop (used by tests).
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// The actually bound address — resolves port 0 requests
    /// (`127.0.0.1:0`) to the ephemeral port the OS picked.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the handler thread and release the listener.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Start the telemetry server on `addr` (e.g. `"127.0.0.1:9184"`; use
/// port `0` for an ephemeral port, then read it back via
/// [`TelemetryServer::local_addr`]).
///
/// # Errors
///
/// Propagates bind failures (port in use, bad address).
pub fn serve(addr: &str, ctx: ReportContext) -> io::Result<TelemetryServer> {
    serve_with_limits(addr, ctx, HttpLimits::default())
}

/// [`serve`] with explicit per-connection [`HttpLimits`] (timeouts and
/// request-size caps). Tests use short timeouts here; the default 2 s
/// limits are right for production scraping.
///
/// # Errors
///
/// Propagates bind failures (port in use, bad address).
pub fn serve_with_limits(
    addr: &str,
    ctx: ReportContext,
    limits: HttpLimits,
) -> io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("webpuzzle-telemetry".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(mut stream) = conn {
                    let _ = handle_connection(&mut stream, &ctx, &limits);
                }
            }
        })?;
    Ok(TelemetryServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

fn handle_connection(
    stream: &mut TcpStream,
    ctx: &ReportContext,
    limits: &HttpLimits,
) -> io::Result<()> {
    http::apply_timeouts(stream, limits)?;
    let req = match http::read_request(stream, limits) {
        Ok(req) => req,
        Err(HttpError::HeadTooLarge { .. }) => {
            return http::reject(
                stream,
                "431 Request Header Fields Too Large",
                b"request head too large\n",
            );
        }
        Err(HttpError::BodyTooLarge { .. }) => {
            return http::reject(stream, "413 Content Too Large", b"request body too large\n");
        }
        Err(HttpError::Malformed(_)) => {
            return http::reject(stream, "400 Bad Request", b"malformed request\n");
        }
        // Half-open, stalled, or already-closed peers get nothing: the
        // read timeout has bounded what they can cost us.
        Err(HttpError::Closed) | Err(HttpError::Io(_)) => return Ok(()),
    };
    let (method, path, query) = (req.method.as_str(), req.path.as_str(), req.query.as_str());

    // HEAD gets GET's headers (Content-Length included) with no body,
    // per RFC 9110; anything else is a 405 that names the allowed
    // method instead of silently dropping the connection.
    if method != "GET" && method != "HEAD" {
        return http::write_response(
            stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            &[("Allow", "GET, HEAD")],
            b"method not allowed\n",
            true,
        );
    }

    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus_text(&metrics::snapshot()),
        ),
        "/healthz" => {
            if matches!(req.query_param("deep"), Some("1") | Some("true")) {
                let health = crate::slo::deep_health();
                let status = if health.status == "critical" {
                    "503 Service Unavailable"
                } else {
                    "200 OK"
                };
                (
                    status,
                    "application/json; charset=utf-8",
                    serde_json::to_string_pretty(&health).unwrap_or_else(|_| "{}".to_string())
                        + "\n",
                )
            } else {
                ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string())
            }
        }
        "/timeseries" => timeseries_response(&req),
        "/report" => {
            let report =
                RunReport::collect(&ctx.tool, ctx.seed, ctx.config.clone(), ctx.args.clone());
            (
                "200 OK",
                "application/json; charset=utf-8",
                report.to_json_pretty() + "\n",
            )
        }
        "/profile" => {
            let report = crate::profile::snapshot();
            if query.split('&').any(|kv| kv == "format=folded") {
                ("200 OK", "text/plain; charset=utf-8", report.folded())
            } else {
                (
                    "200 OK",
                    "application/json; charset=utf-8",
                    serde_json::to_string_pretty(&report).unwrap_or_else(|_| "{}".to_string())
                        + "\n",
                )
            }
        }
        "/events" => {
            let since = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("since="))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            let batch = events::since(since);
            (
                "200 OK",
                "application/json; charset=utf-8",
                serde_json::to_string_pretty(&batch).unwrap_or_else(|_| "[]".to_string()) + "\n",
            )
        }
        "/diagnostics" => {
            // Serve an explicit empty (disabled) block rather than a
            // 404 when no producer has published yet, so pollers can
            // rely on the schema being present.
            let report = crate::diagnostics::current()
                .unwrap_or_else(|| crate::diagnostics::DiagnosticsReport::empty(false, 0.95));
            (
                "200 OK",
                "application/json; charset=utf-8",
                serde_json::to_string_pretty(&report).unwrap_or_else(|_| "{}".to_string()) + "\n",
            )
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found: try /metrics, /healthz, /report, /events, /diagnostics, /timeseries, or /profile\n"
                .to_string(),
        ),
    };
    // Content-Length counts body *bytes* (the body is ASCII-safe JSON /
    // text, but len() on the String is the byte length either way).
    http::write_response(
        stream,
        status,
        content_type,
        &[],
        body.as_bytes(),
        method == "GET",
    )
}

/// Answer a `/timeseries` request against the global history store.
fn timeseries_response(req: &http::Request) -> (&'static str, &'static str, String) {
    const JSON: &str = "application/json; charset=utf-8";
    const TEXT: &str = "text/plain; charset=utf-8";
    if !crate::tsdb::is_installed() {
        return (
            "503 Service Unavailable",
            TEXT,
            "telemetry history not enabled (run with --telemetry-history)\n".to_string(),
        );
    }
    let Some(metric) = req.query_param("metric") else {
        // Discovery: the stored series plus the store's accounting.
        use serde::Serialize;
        let listing = Value::Object(vec![
            ("series".to_string(), crate::tsdb::series_names().to_value()),
            ("stats".to_string(), crate::tsdb::stats().to_value()),
        ]);
        return (
            "200 OK",
            JSON,
            serde_json::to_string_pretty(&listing).unwrap_or_else(|_| "{}".to_string()) + "\n",
        );
    };
    let since = req
        .query_param("since")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    let step_ms = req
        .query_param("step")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    match crate::tsdb::query(metric, since, step_ms) {
        Some(range) => (
            "200 OK",
            JSON,
            serde_json::to_string_pretty(&range).unwrap_or_else(|_| "{}".to_string()) + "\n",
        ),
        None => (
            "404 Not Found",
            TEXT,
            format!("no series named {metric:?} in the history store\n"),
        ),
    }
}

/// Prometheus metric name: `webpuzzle_` prefix, every character outside
/// `[a-zA-Z0-9_]` mapped to `_` (our registry names use `/` separators).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("webpuzzle_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' {
            c
        } else {
            '_'
        });
    }
    out
}

/// Escape free text for a `# HELP` line: the exposition format allows
/// any UTF-8 there but `\` and newlines must be escaped or a hostile
/// registry name (e.g. a source name fed into a metric path) could
/// inject arbitrary exposition lines. Other control characters are
/// mapped to spaces — HELP is documentation, not data.
fn prom_help_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if c.is_control() => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

/// Escape a label value per the exposition format: `\`, `"`, and
/// newline are the three characters with escape sequences; other
/// control characters are mapped to spaces so a hostile value cannot
/// corrupt the scrape even for clients with lax parsers.
fn prom_label_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if c.is_control() => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus float formatting: `f64::to_string` except for the
/// non-finite spellings the exposition format requires.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render a metrics snapshot in Prometheus text exposition format.
///
/// Histograms are exported with *cumulative* bucket counts and an
/// explicit `le="+Inf"` bucket, as the format requires; our log-2 bucket
/// upper bounds are exclusive while `le` is inclusive, a half-open
/// discrepancy of at most one integer value that the HELP line records.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    // The `events/total/<severity>` counters are one logical family:
    // export them under a single metric name with a `severity` label
    // instead of three mangled names.
    let family: Vec<(&str, u64)> = snap
        .counters
        .iter()
        .filter_map(|(name, value)| {
            name.strip_prefix(events::EVENTS_TOTAL_PREFIX)
                .map(|sev| (sev, *value))
        })
        .collect();
    if !family.is_empty() {
        out.push_str("# HELP webpuzzle_events_total Drift events published, by severity\n");
        out.push_str("# TYPE webpuzzle_events_total counter\n");
        for (sev, value) in &family {
            out.push_str(&format!(
                "webpuzzle_events_total{{severity=\"{}\"}} {value}\n",
                prom_label_escape(sev)
            ));
        }
    }
    // Same treatment for the `weblog/malformed_lines/<kind>` counters:
    // one family with a `kind` label.
    let malformed: Vec<(&str, u64)> = snap
        .counters
        .iter()
        .filter_map(|(name, value)| {
            name.strip_prefix(metrics::MALFORMED_LINES_PREFIX)
                .map(|kind| (kind, *value))
        })
        .collect();
    if !malformed.is_empty() {
        out.push_str(
            "# HELP webpuzzle_malformed_lines_total Malformed log lines skipped, by cause\n",
        );
        out.push_str("# TYPE webpuzzle_malformed_lines_total counter\n");
        for (kind, value) in &malformed {
            out.push_str(&format!(
                "webpuzzle_malformed_lines_total{{kind=\"{}\"}} {value}\n",
                prom_label_escape(kind)
            ));
        }
    }
    for (name, value) in &snap.counters {
        if name.starts_with(events::EVENTS_TOTAL_PREFIX)
            || name.starts_with(metrics::MALFORMED_LINES_PREFIX)
        {
            continue;
        }
        let prom = prom_name(name) + "_total";
        out.push_str(&format!(
            "# HELP {prom} Counter {}\n",
            prom_help_escape(name)
        ));
        out.push_str(&format!("# TYPE {prom} counter\n"));
        out.push_str(&format!("{prom} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let prom = prom_name(name);
        out.push_str(&format!("# HELP {prom} Gauge {}\n", prom_help_escape(name)));
        out.push_str(&format!("# TYPE {prom} gauge\n"));
        out.push_str(&format!("{prom} {}\n", prom_f64(*value)));
    }
    for h in &snap.histograms {
        let prom = prom_name(&h.name);
        out.push_str(&format!(
            "# HELP {prom} Histogram {} (log-2 buckets, upper bounds exclusive)\n",
            prom_help_escape(&h.name)
        ));
        out.push_str(&format!("# TYPE {prom} histogram\n"));
        let mut cumulative = 0u64;
        for (b, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            out.push_str(&format!(
                "{prom}_bucket{{le=\"{}\"}} {cumulative}\n",
                metrics::bucket_upper_bound(b)
            ));
        }
        out.push_str(&format!("{prom}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{prom}_sum {}\n", h.sum));
        out.push_str(&format!("{prom}_count {}\n", h.count));
        // Tail quantile as a sibling gauge: the histogram type has no
        // place for precomputed quantiles, and scrape-side quantile
        // reconstruction from log-2 buckets is too coarse at p999.
        if let Some(p999) = h.p999 {
            out.push_str(&format!(
                "# HELP {prom}_p999 Interpolated 99.9th percentile of {}\n",
                prom_help_escape(&h.name)
            ));
            out.push_str(&format!("# TYPE {prom}_p999 gauge\n"));
            out.push_str(&format!("{prom}_p999 {}\n", prom_f64(p999)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(
            prom_name("weblog/records_parsed"),
            "webpuzzle_weblog_records_parsed"
        );
        assert_eq!(
            prom_name("fidelity/h/NASA-Pub2"),
            "webpuzzle_fidelity_h_NASA_Pub2"
        );
    }

    #[test]
    fn prom_floats_spell_non_finite_values() {
        assert_eq!(prom_f64(1.5), "1.5");
        assert_eq!(prom_f64(f64::NAN), "NaN");
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(f64::NEG_INFINITY), "-Inf");
    }

    #[test]
    fn events_total_renders_as_one_labeled_family() {
        let snap = MetricsSnapshot {
            counters: vec![
                ("events/total/critical".to_string(), 1),
                ("events/total/warn".to_string(), 4),
                ("other/counter".to_string(), 2),
            ],
            gauges: vec![],
            histograms: vec![],
        };
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE webpuzzle_events_total counter"));
        assert!(text.contains("webpuzzle_events_total{severity=\"warn\"} 4"));
        assert!(text.contains("webpuzzle_events_total{severity=\"critical\"} 1"));
        // No mangled per-severity metric names leak out.
        assert!(!text.contains("webpuzzle_events_total_warn"));
        assert!(text.contains("webpuzzle_other_counter_total 2"));
        // TYPE appears exactly once for the family.
        assert_eq!(text.matches("TYPE webpuzzle_events_total ").count(), 1);
    }

    #[test]
    fn malformed_lines_render_as_one_labeled_family() {
        let snap = MetricsSnapshot {
            counters: vec![
                ("weblog/malformed_lines/bad_timestamp".to_string(), 3),
                ("weblog/malformed_lines/truncated".to_string(), 9),
                ("weblog/malformed_lines_skipped".to_string(), 12),
            ],
            gauges: vec![],
            histograms: vec![],
        };
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE webpuzzle_malformed_lines_total counter"));
        assert!(text.contains("webpuzzle_malformed_lines_total{kind=\"bad_timestamp\"} 3"));
        assert!(text.contains("webpuzzle_malformed_lines_total{kind=\"truncated\"} 9"));
        // No mangled per-kind metric names leak out.
        assert!(!text.contains("webpuzzle_weblog_malformed_lines_bad_timestamp"));
        // The pre-existing unlabeled total keeps its own name (it is not
        // under the per-kind prefix).
        assert!(text.contains("webpuzzle_weblog_malformed_lines_skipped_total 12"));
        assert_eq!(
            text.matches("TYPE webpuzzle_malformed_lines_total ")
                .count(),
            1
        );
    }

    /// Check one rendered exposition line against the text-format
    /// grammar: a comment (`# HELP`/`# TYPE` + valid name), or
    /// `name[{labels}] value` where the name matches
    /// `[a-zA-Z_:][a-zA-Z0-9_:]*` and any label block closes its quotes
    /// with the three legal escapes (`\\`, `\"`, `\n`).
    fn line_is_well_formed(line: &str) -> bool {
        fn valid_name(name: &str) -> bool {
            let mut chars = name.chars();
            let Some(first) = chars.next() else {
                return false;
            };
            (first.is_ascii_alphabetic() || first == '_' || first == ':')
                && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.splitn(3, ' ');
            let keyword = parts.next().unwrap_or_default();
            let name = parts.next().unwrap_or_default();
            return (keyword == "HELP" || keyword == "TYPE") && valid_name(name);
        }
        let Some(space) = line.rfind(' ') else {
            return false;
        };
        let (series, value) = line.split_at(space);
        if value.trim().is_empty() || value.trim().contains(' ') {
            return false;
        }
        match series.split_once('{') {
            None => valid_name(series),
            Some((name, labels)) => {
                let Some(labels) = labels.strip_suffix('}') else {
                    return false;
                };
                if !valid_name(name) {
                    return false;
                }
                // Every label value must be a closed quoted string with
                // only legal escapes inside.
                let mut rest = labels;
                while !rest.is_empty() {
                    let Some((label, after_eq)) = rest.split_once("=\"") else {
                        return false;
                    };
                    if !valid_name(label.trim_start_matches(',')) {
                        return false;
                    }
                    let mut closed = None;
                    let mut chars = after_eq.char_indices();
                    while let Some((i, c)) = chars.next() {
                        match c {
                            '\\' => match chars.next() {
                                Some((_, '\\')) | Some((_, '"')) | Some((_, 'n')) => {}
                                _ => return false,
                            },
                            '"' => {
                                closed = Some(i);
                                break;
                            }
                            _ => {}
                        }
                    }
                    let Some(end) = closed else {
                        return false;
                    };
                    rest = &after_eq[end + 1..];
                }
                true
            }
        }
    }

    /// Fuzz-style: hostile registry names (quotes, newlines,
    /// backslashes, spaces, braces) must never corrupt the scrape. The
    /// name generator is a deterministic LCG over a deliberately nasty
    /// alphabet.
    #[test]
    fn hostile_names_cannot_corrupt_the_exposition() {
        const ALPHABET: &[char] = &[
            'a', 'Z', '9', '_', '/', ' ', '"', '\\', '\n', '{', '}', '=', '#', '\t', 'é', ',',
        ];
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move |bound: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound
        };
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        for i in 0..200 {
            let len = 1 + next(12);
            let name: String = (0..len).map(|_| ALPHABET[next(ALPHABET.len())]).collect();
            // Hostile *label values* ride the two labeled families.
            if i % 5 == 0 {
                counters.push((format!("events/total/{name}"), i as u64));
            } else if i % 5 == 1 {
                counters.push((format!("weblog/malformed_lines/{name}"), i as u64));
            } else if i % 2 == 0 {
                counters.push((name, i as u64));
            } else {
                gauges.push((name, i as f64 / 3.0));
            }
        }
        let snap = MetricsSnapshot {
            counters,
            gauges,
            histograms: vec![HistogramSnapshot {
                name: "evil\nname with \"quotes\" and \\slashes".to_string(),
                count: 1,
                sum: 2,
                buckets: {
                    let mut b = vec![0u64; crate::metrics::HISTOGRAM_BUCKETS];
                    b[1] = 1;
                    b
                },
                p50: Some(2.0),
                p95: Some(2.0),
                p99: Some(2.0),
                p999: Some(2.0),
            }],
        };
        let text = prometheus_text(&snap);
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            assert!(
                line_is_well_formed(line),
                "malformed exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn help_and_label_escapes() {
        assert_eq!(prom_help_escape("a\\b\nc\td"), "a\\\\b\\nc d");
        assert_eq!(prom_label_escape("say \"hi\"\\\n"), "say \\\"hi\\\"\\\\\\n");
    }

    #[test]
    fn histogram_buckets_render_cumulatively() {
        let mut buckets = vec![0u64; crate::metrics::HISTOGRAM_BUCKETS];
        buckets[0] = 2; // two zeros
        buckets[2] = 3; // three values in [2, 4)
        let snap = MetricsSnapshot {
            counters: vec![("unit/c".to_string(), 7)],
            gauges: vec![("unit/g".to_string(), 0.5)],
            histograms: vec![HistogramSnapshot {
                name: "unit/h".to_string(),
                count: 5,
                sum: 8,
                buckets,
                p50: Some(2.0),
                p95: Some(3.5),
                p99: Some(3.9),
                p999: Some(3.99),
            }],
        };
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE webpuzzle_unit_c_total counter"));
        assert!(text.contains("webpuzzle_unit_c_total 7"));
        assert!(text.contains("# TYPE webpuzzle_unit_g gauge"));
        assert!(text.contains("webpuzzle_unit_h_bucket{le=\"1\"} 2"));
        assert!(text.contains("webpuzzle_unit_h_bucket{le=\"4\"} 5"));
        assert!(text.contains("webpuzzle_unit_h_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("webpuzzle_unit_h_sum 8"));
        assert!(text.contains("webpuzzle_unit_h_count 5"));
        assert!(text.contains("# TYPE webpuzzle_unit_h_p999 gauge"));
        assert!(text.contains("webpuzzle_unit_h_p999 3.99"));
    }
}
