//! Additional Hurst estimators beyond the paper's five: the Absolute
//! Moments and Variance-of-Residuals methods (both in the SELFIS tool and
//! in Taqqu & Teverovsky's survey [27]). Extensions for cross-checking the
//! main battery; not part of [`crate::HurstSuite`], which mirrors the paper
//! exactly.

use crate::estimate::{EstimatorKind, HurstEstimate};
use crate::Result;
use webpuzzle_stats::regression::ols;
use webpuzzle_stats::StatsError;
use webpuzzle_timeseries::{aggregate, aggregation_levels};

/// Absolute-moments estimator: for a self-similar process the first
/// absolute moment of the m-aggregated series scales as
/// `E|X^{(m)} − X̄| ∝ m^{H−1}`, so the log-log slope plus one is H.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for series shorter than 256
/// points and [`StatsError::DegenerateInput`] for constant series.
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::{absolute_moments, fgn::FgnGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = FgnGenerator::new(0.8)?.seed(9).generate(16_384)?;
/// let est = absolute_moments(&x)?;
/// assert!((est.h - 0.8).abs() < 0.12, "H = {}", est.h);
/// # Ok(())
/// # }
/// ```
pub fn absolute_moments(data: &[f64]) -> Result<HurstEstimate> {
    if data.len() < 256 {
        return Err(StatsError::InsufficientData {
            needed: 256,
            got: data.len(),
        });
    }
    let levels = aggregation_levels(data.len(), 64);
    let mut log_m = Vec::with_capacity(levels.len());
    let mut log_am = Vec::with_capacity(levels.len());
    for &m in &levels {
        let agg = aggregate(data, m)?;
        let mean = agg.iter().sum::<f64>() / agg.len() as f64;
        let am = agg.iter().map(|x| (x - mean).abs()).sum::<f64>() / agg.len() as f64;
        if am > 0.0 {
            log_m.push((m as f64).ln());
            log_am.push(am.ln());
        }
    }
    if log_m.len() < 3 {
        return Err(StatsError::DegenerateInput {
            what: "too few usable aggregation levels for an absolute-moments fit",
        });
    }
    let fit = ols(&log_m, &log_am)?;
    Ok(HurstEstimate::new(
        EstimatorKind::AbsoluteMoments,
        fit.slope + 1.0,
    ))
}

/// Variance-of-residuals estimator (Peng's method): within blocks of size
/// `m`, the variance of the residuals of an OLS line fitted to the partial
/// sums scales as `m^{2H}`; half the log-log slope is H.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for series shorter than 512
/// points and [`StatsError::DegenerateInput`] for constant series.
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::{fgn::FgnGenerator, variance_of_residuals};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = FgnGenerator::new(0.7)?.seed(10).generate(16_384)?;
/// let est = variance_of_residuals(&x)?;
/// assert!((est.h - 0.7).abs() < 0.12, "H = {}", est.h);
/// # Ok(())
/// # }
/// ```
pub fn variance_of_residuals(data: &[f64]) -> Result<HurstEstimate> {
    let n = data.len();
    if n < 512 {
        return Err(StatsError::InsufficientData {
            needed: 512,
            got: n,
        });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteData);
    }
    // Partial-sum (integrated) series.
    let mut walk = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &x in data {
        acc += x;
        walk.push(acc);
    }

    let mut log_m = Vec::new();
    let mut log_v = Vec::new();
    let mut m = 16usize;
    while m <= n / 8 {
        let mut vars = Vec::new();
        for block in walk.chunks_exact(m) {
            if let Some(v) = residual_variance(block) {
                vars.push(v);
            }
        }
        if !vars.is_empty() {
            let mean_v = vars.iter().sum::<f64>() / vars.len() as f64;
            if mean_v > 0.0 {
                log_m.push((m as f64).ln());
                log_v.push(mean_v.ln());
            }
        }
        m = ((m as f64) * 1.8).ceil() as usize;
    }
    if log_m.len() < 3 {
        return Err(StatsError::DegenerateInput {
            what: "too few usable block sizes for a variance-of-residuals fit",
        });
    }
    let fit = ols(&log_m, &log_v)?;
    Ok(HurstEstimate::new(
        EstimatorKind::VarianceResiduals,
        fit.slope / 2.0,
    ))
}

// Variance of the OLS-line residuals of one block of the integrated series.
fn residual_variance(block: &[f64]) -> Option<f64> {
    let m = block.len() as f64;
    let t_mean = (m - 1.0) / 2.0;
    let y_mean = block.iter().sum::<f64>() / m;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (t, &y) in block.iter().enumerate() {
        let dt = t as f64 - t_mean;
        sxx += dt * dt;
        sxy += dt * (y - y_mean);
    }
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = y_mean - slope * t_mean;
    let var = block
        .iter()
        .enumerate()
        .map(|(t, &y)| {
            let r = y - (intercept + slope * t as f64);
            r * r
        })
        .sum::<f64>()
        / m;
    (var > 0.0).then_some(var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgn::FgnGenerator;

    fn fgn(h: f64, n: usize, seed: u64) -> Vec<f64> {
        FgnGenerator::new(h)
            .unwrap()
            .seed(seed)
            .generate(n)
            .unwrap()
    }

    #[test]
    fn absolute_moments_tracks_h() {
        for &h in &[0.6, 0.8] {
            let x = fgn(h, 65_536, 70);
            let est = absolute_moments(&x).unwrap();
            assert_eq!(est.kind, EstimatorKind::AbsoluteMoments);
            assert!((est.h - h).abs() < 0.1, "H = {h}: got {}", est.h);
        }
    }

    #[test]
    fn variance_of_residuals_tracks_h() {
        for &h in &[0.6, 0.8] {
            let x = fgn(h, 65_536, 71);
            let est = variance_of_residuals(&x).unwrap();
            assert_eq!(est.kind, EstimatorKind::VarianceResiduals);
            assert!((est.h - h).abs() < 0.1, "H = {h}: got {}", est.h);
        }
    }

    #[test]
    fn white_noise_near_half() {
        let x = fgn(0.5, 32_768, 72);
        assert!((absolute_moments(&x).unwrap().h - 0.5).abs() < 0.08);
        assert!((variance_of_residuals(&x).unwrap().h - 0.5).abs() < 0.08);
    }

    #[test]
    fn variance_of_residuals_immune_to_level_shift() {
        // A constant level in the series becomes a linear component of the
        // partial sums, which the per-block OLS detrending absorbs exactly —
        // the property that makes Peng's method insensitive to the series
        // mean. (A linear *trend* becomes quadratic in the sums and is NOT
        // absorbed; detrend first, as the pipeline does.)
        let h = 0.7;
        let base = fgn(h, 32_768, 73);
        let shifted: Vec<f64> = base.iter().map(|v| v + 250.0).collect();
        let e0 = variance_of_residuals(&base).unwrap().h;
        let e1 = variance_of_residuals(&shifted).unwrap().h;
        assert!((e0 - e1).abs() < 1e-9, "shift changed H: {e0} vs {e1}");
        assert!((e1 - h).abs() < 0.1, "H = {e1}");
    }

    #[test]
    fn validation() {
        assert!(absolute_moments(&[1.0; 100]).is_err());
        assert!(variance_of_residuals(&[1.0; 100]).is_err());
        assert!(matches!(
            absolute_moments(&vec![3.0; 1000]),
            Err(StatsError::DegenerateInput { .. })
        ));
        assert!(matches!(
            variance_of_residuals(&vec![3.0; 1000]),
            Err(StatsError::DegenerateInput { .. })
        ));
    }
}
