//! Exact fractional Gaussian noise (fGn) synthesis via Davies-Harte
//! circulant embedding.
//!
//! fGn is the canonical long-range dependent process: the increment process
//! of fractional Brownian motion, stationary and Gaussian with
//! autocovariance `γ(k) = σ²/2 (|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H})`.
//! For `H > 0.5` the autocovariance is non-summable — exactly the property
//! the paper's Hurst estimators detect in Web arrival series.
//!
//! Davies-Harte embeds the n×n Toeplitz covariance into a 2n×2n circulant
//! matrix whose eigenvalues come from one FFT of the autocovariance; one
//! more FFT of suitably scaled complex Gaussians produces an **exact**
//! sample path in O(n log n). For fGn the circulant eigenvalues are provably
//! non-negative, so the method never needs approximation.

use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use webpuzzle_stats::dist::Normal;
use webpuzzle_stats::StatsError;
use webpuzzle_timeseries::fft::{fft, Complex};

/// Autocovariance of unit-variance fGn at lag `k` for Hurst exponent `h`.
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::fgn::autocovariance;
///
/// // H = 0.5 is white noise: γ(0) = 1, γ(k) = 0 for k > 0.
/// assert!((autocovariance(0.5, 0) - 1.0).abs() < 1e-12);
/// assert!(autocovariance(0.5, 3).abs() < 1e-12);
/// // H > 0.5: positive correlations.
/// assert!(autocovariance(0.8, 10) > 0.0);
/// ```
pub fn autocovariance(h: f64, k: usize) -> f64 {
    let k = k as f64;
    let two_h = 2.0 * h;
    0.5 * ((k + 1.0).powf(two_h) - 2.0 * k.powf(two_h) + (k - 1.0).abs().powf(two_h))
}

/// Generator of exact fractional Gaussian noise sample paths.
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::fgn::FgnGenerator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let path = FgnGenerator::new(0.75)?.seed(1).generate(1024)?;
/// assert_eq!(path.len(), 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FgnGenerator {
    h: f64,
    sigma: f64,
    seed: u64,
}

impl FgnGenerator {
    /// Create a generator for Hurst exponent `h ∈ (0, 1)` with unit
    /// variance.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `h` is outside `(0, 1)`.
    pub fn new(h: f64) -> Result<Self> {
        if !h.is_finite() || h <= 0.0 || h >= 1.0 {
            return Err(StatsError::InvalidParameter {
                name: "h",
                value: h,
                constraint: "must be in the open interval (0, 1)",
            });
        }
        Ok(FgnGenerator {
            h,
            sigma: 1.0,
            seed: 0,
        })
    }

    /// Set the marginal standard deviation (default 1).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `sigma` is not finite and
    /// positive.
    pub fn sigma(mut self, sigma: f64) -> Result<Self> {
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                value: sigma,
                constraint: "must be finite and > 0",
            });
        }
        self.sigma = sigma;
        Ok(self)
    }

    /// Set the RNG seed (deterministic output for a given seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The Hurst exponent this generator targets.
    pub fn hurst(&self) -> f64 {
        self.h
    }

    /// Generate `n` points of fGn.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] for `n < 2`.
    pub fn generate(&self, n: usize) -> Result<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.generate_with(&mut rng, n)
    }

    /// Generate `n` points of fGn drawing randomness from the supplied RNG
    /// (lets callers chain multiple draws off one stream).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] for `n < 2`.
    pub fn generate_with<R: rand::Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Result<Vec<f64>> {
        if n < 2 {
            return Err(StatsError::InsufficientData { needed: 2, got: n });
        }
        // Circulant embedding of size M = 2n: first row
        // [γ(0), γ(1), …, γ(n−1), γ(n), γ(n−1), …, γ(1)].
        let m = 2 * n;
        let mut row: Vec<Complex> = Vec::with_capacity(m);
        for k in 0..=n {
            row.push(Complex::from_real(autocovariance(self.h, k)));
        }
        for k in (1..n).rev() {
            row.push(Complex::from_real(autocovariance(self.h, k)));
        }
        debug_assert_eq!(row.len(), m);
        fft(&mut row);

        // Eigenvalues are real and (for fGn) non-negative; clamp tiny
        // negative round-off.
        let eigen: Vec<f64> = row.iter().map(|z| z.re.max(0.0)).collect();

        // Hermitian-symmetric complex Gaussian spectrum.
        let mut spec = vec![Complex::ZERO; m];
        spec[0] = Complex::from_real(eigen[0].sqrt() * Normal::standard_sample(rng));
        spec[n] = Complex::from_real(eigen[n].sqrt() * Normal::standard_sample(rng));
        for k in 1..n {
            let scale = (eigen[k] / 2.0).sqrt();
            let z = Complex::new(
                scale * Normal::standard_sample(rng),
                scale * Normal::standard_sample(rng),
            );
            spec[k] = z;
            spec[m - k] = z.conj();
        }

        fft(&mut spec);
        let norm = self.sigma / (m as f64).sqrt();
        webpuzzle_obs::metrics::sharded_counter("lrd/fgn_samples").add(n as u64);
        Ok(spec.into_iter().take(n).map(|z| z.re * norm).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_acf(x: &[f64], lag: usize) -> f64 {
        let n = x.len();
        let m = x.iter().sum::<f64>() / n as f64;
        let denom: f64 = x.iter().map(|v| (v - m) * (v - m)).sum();
        let num: f64 = (0..n - lag).map(|t| (x[t] - m) * (x[t + lag] - m)).sum();
        num / denom
    }

    #[test]
    fn rejects_bad_h() {
        assert!(FgnGenerator::new(0.0).is_err());
        assert!(FgnGenerator::new(1.0).is_err());
        assert!(FgnGenerator::new(f64::NAN).is_err());
        assert!(FgnGenerator::new(0.5).is_ok());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = FgnGenerator::new(0.7)
            .unwrap()
            .seed(9)
            .generate(256)
            .unwrap();
        let b = FgnGenerator::new(0.7)
            .unwrap()
            .seed(9)
            .generate(256)
            .unwrap();
        assert_eq!(a, b);
        let c = FgnGenerator::new(0.7)
            .unwrap()
            .seed(10)
            .generate(256)
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn autocovariance_h_half_is_white() {
        for k in 1..20 {
            assert!(autocovariance(0.5, k).abs() < 1e-10, "lag {k}");
        }
    }

    #[test]
    fn autocovariance_hyperbolic_decay() {
        // γ(k) ~ H(2H−1) k^{2H−2}: ratio test at large lags.
        let h = 0.8;
        let g100 = autocovariance(h, 100);
        let g200 = autocovariance(h, 200);
        let expected_ratio = (200.0f64 / 100.0).powf(2.0 * h - 2.0);
        assert!((g200 / g100 - expected_ratio).abs() < 0.01);
    }

    #[test]
    fn marginal_moments_match() {
        let x = FgnGenerator::new(0.8)
            .unwrap()
            .sigma(2.0)
            .unwrap()
            .seed(3)
            .generate(65_536)
            .unwrap();
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / x.len() as f64;
        // LRD sample means converge slowly: sd(x̄) = σ·n^{H−1} ≈ 0.22 here,
        // so allow a ±3 sd band.
        assert!(mean.abs() < 0.7, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.5, "var = {var}");
    }

    #[test]
    fn empirical_acf_matches_theory() {
        let h = 0.85;
        let x = FgnGenerator::new(h)
            .unwrap()
            .seed(4)
            .generate(131_072)
            .unwrap();
        for lag in [1usize, 2, 5, 10] {
            let emp = sample_acf(&x, lag);
            let theo = autocovariance(h, lag);
            assert!(
                (emp - theo).abs() < 0.05,
                "lag {lag}: empirical {emp} vs theoretical {theo}"
            );
        }
    }

    #[test]
    fn h_half_is_uncorrelated() {
        let x = FgnGenerator::new(0.5)
            .unwrap()
            .seed(5)
            .generate(65_536)
            .unwrap();
        for lag in [1usize, 5, 20] {
            assert!(sample_acf(&x, lag).abs() < 0.02, "lag {lag}");
        }
    }

    #[test]
    fn antipersistent_h_below_half() {
        let x = FgnGenerator::new(0.2)
            .unwrap()
            .seed(6)
            .generate(65_536)
            .unwrap();
        assert!(sample_acf(&x, 1) < -0.2, "lag-1 acf should be negative");
    }

    #[test]
    fn too_short_rejected() {
        assert!(FgnGenerator::new(0.7).unwrap().generate(1).is_err());
    }
}
