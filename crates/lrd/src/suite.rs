//! Run all five Hurst estimators on one series (the Figure 4/6/9/10 rows).

use crate::{
    abry_veitch, periodogram_hurst, rescaled_range, variance_time, whittle, HurstEstimate, Result,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Results of the full estimator battery on one series.
///
/// Estimators that fail on a particular series (e.g. too short after
/// aggregation) are recorded as `None` rather than failing the whole suite —
/// mirroring how the paper reports NS/NA cells.
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::{fgn::FgnGenerator, HurstSuite};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = FgnGenerator::new(0.8)?.seed(23).generate(8192)?;
/// let suite = HurstSuite::estimate(&x)?;
/// assert!(suite.consensus_lrd(), "all estimators should agree on LRD");
/// let mean_h = suite.mean_h().unwrap();
/// assert!((mean_h - 0.8).abs() < 0.15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HurstSuite {
    /// Variance-time estimate, if computable.
    pub variance_time: Option<HurstEstimate>,
    /// R/S estimate, if computable.
    pub rescaled_range: Option<HurstEstimate>,
    /// Periodogram estimate, if computable.
    pub periodogram: Option<HurstEstimate>,
    /// Whittle estimate (with CI), if computable.
    pub whittle: Option<HurstEstimate>,
    /// Abry-Veitch estimate (with CI), if computable.
    pub abry_veitch: Option<HurstEstimate>,
}

impl HurstSuite {
    /// Run every estimator on `data`. Individual estimator failures become
    /// `None`; the call only errors when *no* estimator could run.
    ///
    /// # Errors
    ///
    /// Returns the last estimator error when all five fail.
    pub fn estimate(data: &[f64]) -> Result<Self> {
        let mut last_err = None;
        let mut run = |r: Result<HurstEstimate>| match r {
            Ok(e) => Some(e),
            Err(e) => {
                webpuzzle_obs::metrics::counter("lrd/estimator_failures").incr();
                last_err = Some(e);
                None
            }
        };
        let timed = |name: &'static str, r: fn(&[f64]) -> Result<HurstEstimate>| {
            let _span = webpuzzle_obs::spans::enter(name);
            r(data)
        };
        let suite = HurstSuite {
            variance_time: run(timed("hurst/variance_time", variance_time)),
            rescaled_range: run(timed("hurst/rs", rescaled_range)),
            periodogram: run(timed("hurst/periodogram", periodogram_hurst)),
            whittle: run(timed("hurst/whittle", whittle)),
            abry_veitch: run(timed("hurst/abry_veitch", abry_veitch)),
        };
        if suite.iter().next().is_none() {
            Err(last_err.expect("all estimators failed so an error exists"))
        } else {
            Ok(suite)
        }
    }

    /// Iterate over the estimates that succeeded.
    pub fn iter(&self) -> impl Iterator<Item = &HurstEstimate> {
        [
            self.variance_time.as_ref(),
            self.rescaled_range.as_ref(),
            self.periodogram.as_ref(),
            self.whittle.as_ref(),
            self.abry_veitch.as_ref(),
        ]
        .into_iter()
        .flatten()
    }

    /// Mean of the available point estimates, or `None` if none succeeded.
    pub fn mean_h(&self) -> Option<f64> {
        let hs: Vec<f64> = self.iter().map(|e| e.h).collect();
        if hs.is_empty() {
            None
        } else {
            Some(hs.iter().sum::<f64>() / hs.len() as f64)
        }
    }

    /// The paper's LRD criterion applied across estimators: true when every
    /// available estimate lies in `(0.5, 1)` — "long-range dependence may
    /// exist, even if the estimators differ in value, provided the estimates
    /// show 0.5 < H < 1" (§3.1).
    pub fn consensus_lrd(&self) -> bool {
        let mut any = false;
        for e in self.iter() {
            if !e.indicates_lrd() {
                return false;
            }
            any = true;
        }
        any
    }

    /// Largest absolute pairwise disagreement between point estimates —
    /// a diagnostic for the estimator inconsistency highlighted in reference
    /// \[13\] (Karagiannis et al., "Now you see it, now you don't").
    pub fn max_disagreement(&self) -> Option<f64> {
        let hs: Vec<f64> = self.iter().map(|e| e.h).collect();
        if hs.len() < 2 {
            return None;
        }
        let max = hs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = hs.iter().cloned().fold(f64::INFINITY, f64::min);
        Some(max - min)
    }
}

impl fmt::Display for HurstSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for e in self.iter() {
            if !first {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
            first = false;
        }
        if first {
            write!(f, "(no estimates)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgn::FgnGenerator;

    #[test]
    fn all_five_run_on_long_fgn() {
        let x = FgnGenerator::new(0.8)
            .unwrap()
            .seed(200)
            .generate(16_384)
            .unwrap();
        let s = HurstSuite::estimate(&x).unwrap();
        assert_eq!(s.iter().count(), 5);
        assert!(s.consensus_lrd());
    }

    #[test]
    fn white_noise_not_lrd() {
        let x = FgnGenerator::new(0.5)
            .unwrap()
            .seed(201)
            .generate(16_384)
            .unwrap();
        let s = HurstSuite::estimate(&x).unwrap();
        // At least one estimator should land at or below 0.5 + noise;
        // consensus LRD must fail for white noise.
        assert!(!s.consensus_lrd(), "suite: {s}");
    }

    #[test]
    fn estimators_consistent_on_fgn() {
        // Paper observation (4): estimators are consistent on clean data.
        let x = FgnGenerator::new(0.75)
            .unwrap()
            .seed(202)
            .generate(32_768)
            .unwrap();
        let s = HurstSuite::estimate(&x).unwrap();
        assert!(
            s.max_disagreement().unwrap() < 0.25,
            "disagreement {:?}",
            s.max_disagreement()
        );
    }

    #[test]
    fn partial_failure_tolerated() {
        // 200 points: variance-time and R/S need 256 and fail, periodogram
        // (needs 128) still runs.
        let x = FgnGenerator::new(0.7)
            .unwrap()
            .seed(203)
            .generate(200)
            .unwrap();
        let s = HurstSuite::estimate(&x).unwrap();
        assert!(s.variance_time.is_none());
        assert!(s.rescaled_range.is_none());
        assert!(s.periodogram.is_some());
    }

    #[test]
    fn total_failure_errors() {
        assert!(HurstSuite::estimate(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn display_lists_estimators() {
        let x = FgnGenerator::new(0.7)
            .unwrap()
            .seed(204)
            .generate(8192)
            .unwrap();
        let s = HurstSuite::estimate(&x).unwrap().to_string();
        for name in ["Variance", "R/S", "Periodogram", "Whittle", "Abry-Veitch"] {
            assert!(s.contains(name), "missing {name} in {s}");
        }
    }
}
