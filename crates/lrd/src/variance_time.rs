//! Variance-time plot estimator of the Hurst exponent.

use crate::estimate::{EstimatorKind, HurstEstimate};
use crate::Result;
use webpuzzle_stats::regression::{ols, Regression};
use webpuzzle_stats::special::student_t_quantile;
use webpuzzle_stats::StatsError;
use webpuzzle_timeseries::{aggregate, aggregation_levels};

/// A variance-time fit with its regression diagnostics attached.
///
/// `estimate.h = 1 + fit.slope / 2`, so the H confidence half-width is
/// exactly half the slope half-width. The t quantile (rather than the
/// normal) is used because the fit typically has only a handful of
/// aggregation levels. Residuals of a variance-time regression are
/// positively correlated (the aggregated series share samples), so the
/// OLS half-width underestimates the true sampling error; callers that
/// need calibrated coverage should apply [`VT_CI_INFLATION`].
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceTimeFit {
    /// The point estimate with `ci95` populated.
    pub estimate: HurstEstimate,
    /// The OLS fit of `log Var(X^{(m)})` on `log m`.
    pub fit: Regression,
    /// Aggregation levels that survived the `var > 0` filter.
    pub points: usize,
    /// Half-width of the 95% CI on H (inflated, t-based).
    pub h_ci_half_width: f64,
}

/// Empirical inflation factor applied to the OLS-derived H half-width.
///
/// Calibrated against seeded fGn coverage runs (see DESIGN.md §13 and
/// the `inflated_ci_covers_planted_h` test): the log-variance points
/// share samples, so their errors are smooth rather than independent and
/// the residual-based OLS half-width wildly understates the realization-
/// to-realization spread of the fitted slope. Over 200 seeded 14 400-
/// point fGn runs per level, the 95th percentile of
/// `|Ĥ − H| / raw half-width` was 3.0 (H = 0.6), 4.5 (0.75) and 7.7
/// (0.85, where LRD makes the block variances most correlated); 8
/// restores ≥95% coverage at every level, conservatively so at low H.
pub const VT_CI_INFLATION: f64 = 8.0;

/// Variance-time estimator: for a self-similar process the variance of the
/// m-aggregated series decays as `Var(X^{(m)}) ∝ m^{2H−2}`, so the slope β
/// of `log Var(X^{(m)})` against `log m` gives `H = 1 + β/2`.
///
/// Aggregation levels are chosen geometrically such that every aggregated
/// series retains at least 64 points (variance estimates from fewer blocks
/// are too noisy to regress on).
///
/// The returned estimate carries a 95% CI derived from the regression
/// residuals (see [`variance_time_detailed`] for the full diagnostics).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for series shorter than 256
/// points and [`StatsError::DegenerateInput`] when the series has no
/// variance at some usable aggregation level.
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::{fgn::FgnGenerator, variance_time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = FgnGenerator::new(0.5)?.seed(2).generate(16_384)?;
/// let est = variance_time(&x)?;
/// assert!((est.h - 0.5).abs() < 0.1, "H = {}", est.h);
/// # Ok(())
/// # }
/// ```
pub fn variance_time(data: &[f64]) -> Result<HurstEstimate> {
    variance_time_detailed(data).map(|d| d.estimate)
}

/// Variance-time estimator with regression diagnostics: slope CI from
/// the OLS residuals (t-quantile on `points − 2` degrees of freedom,
/// inflated by [`VT_CI_INFLATION`] for correlated-residual coverage),
/// R², and the number of aggregation levels used.
///
/// # Errors
///
/// Same conditions as [`variance_time`].
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::{fgn::FgnGenerator, variance_time_detailed};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = FgnGenerator::new(0.8)?.seed(5).generate(16_384)?;
/// let d = variance_time_detailed(&x)?;
/// assert!(d.points >= 3);
/// assert!(d.h_ci_half_width > 0.0);
/// assert!(d.fit.r_squared > 0.5);
/// # Ok(())
/// # }
/// ```
pub fn variance_time_detailed(data: &[f64]) -> Result<VarianceTimeFit> {
    if data.len() < 256 {
        return Err(StatsError::InsufficientData {
            needed: 256,
            got: data.len(),
        });
    }
    let levels = aggregation_levels(data.len(), 64);
    let mut log_m = Vec::with_capacity(levels.len());
    let mut log_var = Vec::with_capacity(levels.len());
    for &m in &levels {
        let agg = aggregate(data, m)?;
        let mean = agg.iter().sum::<f64>() / agg.len() as f64;
        let var = agg.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / agg.len() as f64;
        if var > 0.0 {
            log_m.push((m as f64).ln());
            log_var.push(var.ln());
        }
    }
    if log_m.len() < 3 {
        return Err(StatsError::DegenerateInput {
            what: "too few usable aggregation levels for a variance-time fit",
        });
    }
    let mut fit = ols(&log_m, &log_var)?;
    let points = log_m.len();
    let mut h = 1.0 + fit.slope / 2.0;
    // Finite-sample bias correction. The sample variance of the N = n/m
    // block means subtracts the grand mean, whose own variance is
    // σ²·n^{2H−2} — not negligible under LRD — so
    // E[s²_m] = σ²(m^{2H−2} − n^{2H−2}) = σ²·m^{2H−2}·(1 − (m/n)^{2−2H})
    // and the raw log-variance points sag at large m, dragging Ĥ down
    // (−0.026 at H = 0.85 over 14 400-point windows). Dividing each s²_m
    // by its own attenuation factor needs H, so iterate: fit, correct
    // with the current Ĥ, refit, until the estimate settles.
    let n = data.len() as f64;
    for _ in 0..8 {
        let exponent = 2.0 - 2.0 * h;
        let corrected: Vec<f64> = log_m
            .iter()
            .zip(&log_var)
            .map(|(&lm, &lv)| {
                // Attenuation capped at 0.9 so a wild intermediate Ĥ (or
                // Ĥ ≥ 1, where the expansion breaks down) cannot blow
                // the correction up.
                let attenuation = (lm.exp() / n).powf(exponent).min(0.9);
                lv - (1.0 - attenuation).ln()
            })
            .collect();
        let refit = ols(&log_m, &corrected)?;
        let new_h = 1.0 + refit.slope / 2.0;
        let settled = (new_h - h).abs() < 1e-4;
        h = new_h;
        fit = refit;
        if settled {
            break;
        }
    }
    // H = 1 + slope/2, so σ_H = σ_slope / 2. Use the t quantile on the
    // fit's n − 2 dof, then inflate for the correlated residuals.
    let dof = points.saturating_sub(2).max(1);
    let t = student_t_quantile(0.975, dof);
    let h_ci_half_width = VT_CI_INFLATION * t * fit.slope_std_err / 2.0;
    let estimate = HurstEstimate::with_ci(
        EstimatorKind::VarianceTime,
        h,
        h - h_ci_half_width,
        h + h_ci_half_width,
    );
    Ok(VarianceTimeFit {
        estimate,
        fit,
        points,
        h_ci_half_width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgn::FgnGenerator;

    #[test]
    fn recovers_h_for_fgn() {
        for &(h, tol) in &[(0.6, 0.1), (0.8, 0.12), (0.9, 0.15)] {
            let x = FgnGenerator::new(h)
                .unwrap()
                .seed(77)
                .generate(65_536)
                .unwrap();
            let est = variance_time(&x).unwrap();
            assert_eq!(est.kind, EstimatorKind::VarianceTime);
            assert!((est.h - h).abs() < tol, "true H = {h}, estimated {}", est.h);
        }
    }

    #[test]
    fn white_noise_near_half() {
        let x = FgnGenerator::new(0.5)
            .unwrap()
            .seed(78)
            .generate(65_536)
            .unwrap();
        let est = variance_time(&x).unwrap();
        assert!((est.h - 0.5).abs() < 0.08, "H = {}", est.h);
    }

    #[test]
    fn short_series_rejected() {
        assert!(variance_time(&[1.0; 100]).is_err());
    }

    #[test]
    fn constant_series_degenerate() {
        assert!(matches!(
            variance_time(&vec![1.0; 1000]),
            Err(StatsError::DegenerateInput { .. })
        ));
    }

    #[test]
    fn ci_is_reported_and_centered() {
        let x = FgnGenerator::new(0.7)
            .unwrap()
            .seed(79)
            .generate(4096)
            .unwrap();
        let est = variance_time(&x).unwrap();
        let (lo, hi) = est.ci95.expect("variance-time now carries a CI");
        assert!(lo < est.h && est.h < hi);
    }

    #[test]
    fn inflated_ci_covers_planted_h() {
        // DESIGN.md §13 calibration for VT_CI_INFLATION: over 200 seeded
        // fGn runs per Hurst level (at the streaming engine's 14 400-point
        // window length) the inflated half-width must cover the planted H
        // at least 95% of the time. If this fails after an estimator
        // change, re-tune VT_CI_INFLATION rather than widening the test.
        // The planted levels span the paper's Whittle range; coverage is
        // hardest at high H, where LRD correlates the block variances.
        for &h in &[0.6, 0.75, 0.85] {
            let runs = 200;
            let mut covered = 0;
            for seed in 0..runs {
                let x = FgnGenerator::new(h)
                    .unwrap()
                    .seed(20_000 + seed)
                    .generate(14_400)
                    .unwrap();
                let d = variance_time_detailed(&x).unwrap();
                if (d.estimate.h - h).abs() <= d.h_ci_half_width {
                    covered += 1;
                }
            }
            assert!(covered >= 190, "H={h}: coverage {covered}/{runs} < 95%");
        }
    }

    #[test]
    fn detailed_fit_is_consistent_with_the_point_estimate() {
        let x = FgnGenerator::new(0.8)
            .unwrap()
            .seed(80)
            .generate(16_384)
            .unwrap();
        let d = variance_time_detailed(&x).unwrap();
        let plain = variance_time(&x).unwrap();
        assert_eq!(d.estimate, plain);
        assert_eq!(d.estimate.h, 1.0 + d.fit.slope / 2.0);
        assert!(d.points >= 3);
        assert!(d.fit.r_squared > 0.0 && d.fit.r_squared <= 1.0);
        assert!(d.h_ci_half_width > 0.0);
    }
}
