//! Variance-time plot estimator of the Hurst exponent.

use crate::estimate::{EstimatorKind, HurstEstimate};
use crate::Result;
use webpuzzle_stats::regression::ols;
use webpuzzle_stats::StatsError;
use webpuzzle_timeseries::{aggregate, aggregation_levels};

/// Variance-time estimator: for a self-similar process the variance of the
/// m-aggregated series decays as `Var(X^{(m)}) ∝ m^{2H−2}`, so the slope β
/// of `log Var(X^{(m)})` against `log m` gives `H = 1 + β/2`.
///
/// Aggregation levels are chosen geometrically such that every aggregated
/// series retains at least 64 points (variance estimates from fewer blocks
/// are too noisy to regress on).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for series shorter than 256
/// points and [`StatsError::DegenerateInput`] when the series has no
/// variance at some usable aggregation level.
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::{fgn::FgnGenerator, variance_time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = FgnGenerator::new(0.5)?.seed(2).generate(16_384)?;
/// let est = variance_time(&x)?;
/// assert!((est.h - 0.5).abs() < 0.1, "H = {}", est.h);
/// # Ok(())
/// # }
/// ```
pub fn variance_time(data: &[f64]) -> Result<HurstEstimate> {
    if data.len() < 256 {
        return Err(StatsError::InsufficientData {
            needed: 256,
            got: data.len(),
        });
    }
    let levels = aggregation_levels(data.len(), 64);
    let mut log_m = Vec::with_capacity(levels.len());
    let mut log_var = Vec::with_capacity(levels.len());
    for &m in &levels {
        let agg = aggregate(data, m)?;
        let mean = agg.iter().sum::<f64>() / agg.len() as f64;
        let var = agg.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / agg.len() as f64;
        if var > 0.0 {
            log_m.push((m as f64).ln());
            log_var.push(var.ln());
        }
    }
    if log_m.len() < 3 {
        return Err(StatsError::DegenerateInput {
            what: "too few usable aggregation levels for a variance-time fit",
        });
    }
    let fit = ols(&log_m, &log_var)?;
    Ok(HurstEstimate::new(
        EstimatorKind::VarianceTime,
        1.0 + fit.slope / 2.0,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgn::FgnGenerator;

    #[test]
    fn recovers_h_for_fgn() {
        for &(h, tol) in &[(0.6, 0.1), (0.8, 0.12), (0.9, 0.15)] {
            let x = FgnGenerator::new(h)
                .unwrap()
                .seed(77)
                .generate(65_536)
                .unwrap();
            let est = variance_time(&x).unwrap();
            assert_eq!(est.kind, EstimatorKind::VarianceTime);
            assert!((est.h - h).abs() < tol, "true H = {h}, estimated {}", est.h);
        }
    }

    #[test]
    fn white_noise_near_half() {
        let x = FgnGenerator::new(0.5)
            .unwrap()
            .seed(78)
            .generate(65_536)
            .unwrap();
        let est = variance_time(&x).unwrap();
        assert!((est.h - 0.5).abs() < 0.08, "H = {}", est.h);
    }

    #[test]
    fn short_series_rejected() {
        assert!(variance_time(&[1.0; 100]).is_err());
    }

    #[test]
    fn constant_series_degenerate() {
        assert!(matches!(
            variance_time(&vec![1.0; 1000]),
            Err(StatsError::DegenerateInput { .. })
        ));
    }

    #[test]
    fn no_ci_reported() {
        let x = FgnGenerator::new(0.7)
            .unwrap()
            .seed(79)
            .generate(4096)
            .unwrap();
        assert!(variance_time(&x).unwrap().ci95.is_none());
    }
}
