//! Long-range dependence (LRD) toolkit for the `webpuzzle` suite.
//!
//! Implements the five Hurst-exponent estimators the paper applies to
//! request- and session-arrival series (via the SELFIS tool in the original):
//!
//! * time domain — [`variance_time`] and [`rescaled_range`] (R/S);
//! * frequency domain — [`periodogram_hurst`] and [`whittle`] (with
//!   asymptotic 95 % confidence intervals);
//! * wavelet domain — [`abry_veitch`] (with confidence intervals from the
//!   weighted log-scale regression).
//!
//! [`HurstSuite::estimate`] runs all five at once (Figures 4, 6, 9, 10), and
//! [`aggregated_hurst_sweep`] reproduces the Ĥ(m)-vs-aggregation-level
//! analysis of Figures 7–8.
//!
//! The [`fgn`] module synthesizes exact fractional Gaussian noise via
//! Davies-Harte circulant embedding — the ground-truth generator used both
//! to validate every estimator and to drive the long-range-dependent arrival
//! processes in `webpuzzle-workload`.
//!
//! # Examples
//!
//! ```
//! use webpuzzle_lrd::{fgn::FgnGenerator, whittle};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let noise = FgnGenerator::new(0.8)?.seed(42).generate(4096)?;
//! let est = whittle(&noise)?;
//! assert!((est.h - 0.8).abs() < 0.08, "estimated H = {}", est.h);
//! # Ok(())
//! # }
//! ```

mod abry_veitch;
mod aggregation;
pub mod arfima;
mod estimate;
mod extra_estimators;
pub mod fgn;
mod periodogram_est;
mod rs;
mod suite;
mod variance_time;
pub mod wavelet;
mod whittle;

pub use abry_veitch::{abry_veitch, abry_veitch_with_scales};
pub use aggregation::{aggregated_hurst_sweep, AggregatedEstimate, SweepEstimator};
pub use estimate::{EstimatorKind, HurstEstimate};
pub use extra_estimators::{absolute_moments, variance_of_residuals};
pub use periodogram_est::periodogram_hurst;
pub use rs::rescaled_range;
pub use suite::HurstSuite;
pub use variance_time::{variance_time, variance_time_detailed, VarianceTimeFit, VT_CI_INFLATION};
pub use whittle::{fgn_spectral_density, whittle};

pub use webpuzzle_stats::StatsError;

/// Crate-wide result alias (errors are [`StatsError`]).
pub type Result<T> = std::result::Result<T, StatsError>;
