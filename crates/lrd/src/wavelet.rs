//! Discrete wavelet transform with Daubechies filters (periodized pyramid),
//! the machinery behind the Abry-Veitch Hurst estimator.

use crate::Result;
use webpuzzle_stats::StatsError;

/// Orthonormal wavelet families available for the pyramid transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Wavelet {
    /// Haar (Daubechies-1): 1 vanishing moment, 2 taps.
    Haar,
    /// Daubechies-2 (4 taps, 2 vanishing moments) — the Abry-Veitch default;
    /// its 2 vanishing moments kill linear trends in the detail
    /// coefficients, which is why the estimator is robust to residual trend.
    Daubechies2,
    /// Daubechies-4 (8 taps, 4 vanishing moments).
    Daubechies4,
}

impl Wavelet {
    /// The low-pass (scaling) filter coefficients, normalized so that
    /// `Σ h_k = √2`.
    pub fn lowpass(&self) -> &'static [f64] {
        match self {
            Wavelet::Haar => &HAAR,
            Wavelet::Daubechies2 => &DB2,
            Wavelet::Daubechies4 => &DB4,
        }
    }

    /// Number of vanishing moments of the analysis wavelet.
    pub fn vanishing_moments(&self) -> usize {
        match self {
            Wavelet::Haar => 1,
            Wavelet::Daubechies2 => 2,
            Wavelet::Daubechies4 => 4,
        }
    }
}

const SQRT2_INV: f64 = std::f64::consts::FRAC_1_SQRT_2;
static HAAR: [f64; 2] = [SQRT2_INV, SQRT2_INV];
static DB2: [f64; 4] = [
    0.482_962_913_144_690_25,
    0.836_516_303_737_469,
    0.224_143_868_041_857_35,
    -0.129_409_522_550_921_45,
];
static DB4: [f64; 8] = [
    0.230_377_813_308_855_23,
    0.714_846_570_552_541_5,
    0.630_880_767_929_590_4,
    -0.027_983_769_416_983_85,
    -0.187_034_811_718_881_14,
    0.030_841_381_835_986_965,
    0.032_883_011_666_982_945,
    -0.010_597_401_784_997_278,
];

/// Detail coefficients of one octave of a multilevel DWT.
#[derive(Debug, Clone, PartialEq)]
pub struct DwtLevel {
    /// Octave index `j` (1 = finest scale).
    pub level: usize,
    /// Detail (wavelet) coefficients `d_{j,k}` at this octave.
    pub details: Vec<f64>,
}

/// Multilevel periodized DWT: returns detail coefficients for octaves
/// `1..=max_level` (finest first). `max_level` is capped so every octave
/// retains at least `filter_len` coefficients.
///
/// Periodized boundary handling wraps the signal circularly — standard for
/// spectral estimation where only coefficient *energies* matter.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if the signal is shorter than
/// twice the filter length, and [`StatsError::NonFiniteData`] for non-finite
/// input.
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::wavelet::{dwt, Wavelet};
///
/// let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
/// let levels = dwt(&x, Wavelet::Daubechies2, 4).unwrap();
/// assert_eq!(levels.len(), 4);
/// assert_eq!(levels[0].details.len(), 32);
/// assert_eq!(levels[3].details.len(), 4);
/// ```
pub fn dwt(data: &[f64], wavelet: Wavelet, max_level: usize) -> Result<Vec<DwtLevel>> {
    let h = wavelet.lowpass();
    let l = h.len();
    if data.len() < 2 * l {
        return Err(StatsError::InsufficientData {
            needed: 2 * l,
            got: data.len(),
        });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteData);
    }
    // Quadrature mirror: g_k = (−1)^k h_{L−1−k}.
    let g: Vec<f64> = (0..l)
        .map(|k| {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            sign * h[l - 1 - k]
        })
        .collect();

    let mut approx: Vec<f64> = data.to_vec();
    let mut out = Vec::new();
    for level in 1..=max_level {
        let n = approx.len();
        if n / 2 < l {
            break;
        }
        let half = n / 2;
        let mut next_approx = Vec::with_capacity(half);
        let mut details = Vec::with_capacity(half);
        for k in 0..half {
            let mut a = 0.0;
            let mut d = 0.0;
            for (i, (&hi, &gi)) in h.iter().zip(&g).enumerate() {
                let idx = (2 * k + i) % n;
                a += hi * approx[idx];
                d += gi * approx[idx];
            }
            next_approx.push(a);
            details.push(d);
        }
        out.push(DwtLevel { level, details });
        approx = next_approx;
    }
    if out.is_empty() {
        return Err(StatsError::InsufficientData {
            needed: 2 * l,
            got: data.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn filters_are_orthonormal() {
        for w in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Daubechies4] {
            let h = w.lowpass();
            let sum: f64 = h.iter().sum();
            assert!(
                (sum - std::f64::consts::SQRT_2).abs() < 1e-10,
                "{w:?} sum = {sum}"
            );
            let energy: f64 = h.iter().map(|c| c * c).sum();
            assert!((energy - 1.0).abs() < 1e-10, "{w:?} energy = {energy}");
            // Even-shift orthogonality: Σ h_k h_{k+2} = 0.
            if h.len() >= 4 {
                let dot: f64 = (0..h.len() - 2).map(|k| h[k] * h[k + 2]).sum();
                assert!(dot.abs() < 1e-10, "{w:?} shift-2 dot = {dot}");
            }
        }
    }

    #[test]
    fn vanishing_moments_kill_polynomials() {
        // A linear ramp has zero detail coefficients under db2 (2 vanishing
        // moments), away from the circular wrap-around.
        let x: Vec<f64> = (0..256).map(|i| 3.0 + 0.5 * i as f64).collect();
        let levels = dwt(&x, Wavelet::Daubechies2, 3).unwrap();
        let d1 = &levels[0].details;
        // Skip coefficients affected by the wrap (filter length 4 → last 2).
        for (k, &d) in d1[..d1.len() - 2].iter().enumerate() {
            assert!(d.abs() < 1e-9, "d1[{k}] = {d}");
        }
    }

    #[test]
    fn haar_details_are_scaled_differences() {
        let x = [1.0, 3.0, 2.0, 6.0];
        let levels = dwt(&x, Wavelet::Haar, 1).unwrap();
        // Haar detail: (x0 − x1)/√2 with our g convention (sign may flip;
        // energy is what matters downstream).
        let expected = [(1.0f64 - 3.0) / 2f64.sqrt(), (2.0f64 - 6.0) / 2f64.sqrt()];
        for (d, e) in levels[0].details.iter().zip(&expected) {
            assert!((d.abs() - e.abs()).abs() < 1e-12);
        }
    }

    #[test]
    fn energy_preserved_overall() {
        // Parseval: total detail energy + final approximation energy equals
        // signal energy. Reconstruct the approximation by running the
        // pyramid manually (reuse dwt and sum energies).
        let mut rng = StdRng::seed_from_u64(21);
        let x: Vec<f64> = (0..512).map(|_| rng.random::<f64>() - 0.5).collect();
        let levels = dwt(&x, Wavelet::Daubechies2, 9).unwrap();
        let signal_energy: f64 = x.iter().map(|v| v * v).sum();
        let detail_energy: f64 = levels
            .iter()
            .map(|l| l.details.iter().map(|d| d * d).sum::<f64>())
            .sum();
        // Detail energy must be at most the signal energy, and for zero-mean
        // noise almost all energy lives in the details.
        assert!(detail_energy <= signal_energy + 1e-9);
        assert!(detail_energy > 0.9 * signal_energy);
    }

    #[test]
    fn level_sizes_halve() {
        let x = vec![1.0; 1024];
        let levels = dwt(&x, Wavelet::Daubechies4, 6).unwrap();
        for (i, l) in levels.iter().enumerate() {
            assert_eq!(l.level, i + 1);
            assert_eq!(l.details.len(), 1024 >> (i + 1));
        }
    }

    #[test]
    fn max_level_capped_by_filter_length() {
        let x = vec![0.5; 64];
        let levels = dwt(&x, Wavelet::Daubechies4, 20).unwrap();
        // Deepest level must retain >= 8 coefficients for db4.
        assert!(levels.last().unwrap().details.len() >= 8);
    }

    #[test]
    fn errors() {
        assert!(dwt(&[1.0, 2.0], Wavelet::Daubechies2, 2).is_err());
        assert!(dwt(
            &[1.0, f64::NAN, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            Wavelet::Daubechies2,
            1
        )
        .is_err());
    }
}
