//! Periodogram (log-log regression) estimator of the Hurst exponent.

use crate::estimate::{EstimatorKind, HurstEstimate};
use crate::Result;
use webpuzzle_stats::regression::ols;
use webpuzzle_stats::StatsError;
use webpuzzle_timeseries::periodogram;

/// Periodogram estimator: near the origin the spectral density of an LRD
/// process behaves as `f(λ) ∝ λ^{1−2H}`, so an OLS fit of `log I(λ_k)` on
/// `log λ_k` over the lowest frequencies has slope `1 − 2H`, giving
/// `H = (1 − slope)/2`.
///
/// Uses the lowest 10 % of Fourier frequencies, the conventional cutoff
/// (Taqqu & Teverovsky).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for series shorter than 128
/// points, and propagates periodogram/regression failures.
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::{fgn::FgnGenerator, periodogram_hurst};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = FgnGenerator::new(0.7)?.seed(5).generate(8192)?;
/// let est = periodogram_hurst(&x)?;
/// assert!((est.h - 0.7).abs() < 0.15, "H = {}", est.h);
/// # Ok(())
/// # }
/// ```
pub fn periodogram_hurst(data: &[f64]) -> Result<HurstEstimate> {
    if data.len() < 128 {
        return Err(StatsError::InsufficientData {
            needed: 128,
            got: data.len(),
        });
    }
    let p = periodogram(data)?;
    let n_low = (p.power().len() / 10).max(8).min(p.power().len());
    let mut log_f = Vec::with_capacity(n_low);
    let mut log_i = Vec::with_capacity(n_low);
    for k in 0..n_low {
        let power = p.power()[k];
        if power > 0.0 {
            log_f.push(p.freqs()[k].ln());
            log_i.push(power.ln());
        }
    }
    if log_f.len() < 4 {
        return Err(StatsError::DegenerateInput {
            what: "too few positive periodogram ordinates in the low band",
        });
    }
    let fit = ols(&log_f, &log_i)?;
    Ok(HurstEstimate::new(
        EstimatorKind::Periodogram,
        (1.0 - fit.slope) / 2.0,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgn::FgnGenerator;

    #[test]
    fn recovers_h_for_fgn() {
        for &h in &[0.6, 0.75, 0.9] {
            let x = FgnGenerator::new(h)
                .unwrap()
                .seed(99)
                .generate(65_536)
                .unwrap();
            let est = periodogram_hurst(&x).unwrap();
            assert!((est.h - h).abs() < 0.1, "true H = {h}, estimated {}", est.h);
        }
    }

    #[test]
    fn white_noise_near_half() {
        let x = FgnGenerator::new(0.5)
            .unwrap()
            .seed(100)
            .generate(65_536)
            .unwrap();
        let est = periodogram_hurst(&x).unwrap();
        assert!((est.h - 0.5).abs() < 0.1, "H = {}", est.h);
    }

    #[test]
    fn short_series_rejected() {
        assert!(periodogram_hurst(&[0.0; 64]).is_err());
    }

    #[test]
    fn kind_is_periodogram() {
        let x = FgnGenerator::new(0.7)
            .unwrap()
            .seed(101)
            .generate(1024)
            .unwrap();
        assert_eq!(
            periodogram_hurst(&x).unwrap().kind,
            EstimatorKind::Periodogram
        );
    }
}
