//! Abry-Veitch wavelet estimator of the Hurst exponent.
//!
//! For an LRD process the variance of the detail coefficients grows
//! geometrically across octaves: `E[d²_{j,·}] ∝ 2^{j(2H−1)}`. The estimator
//! (Abry & Veitch 1998) regresses the bias-corrected log₂ octave energies on
//! the octave index with weights from the known variance of a log-χ²
//! average, yielding both Ĥ and a genuine confidence interval.

use crate::estimate::{EstimatorKind, HurstEstimate};
use crate::wavelet::{dwt, Wavelet};
use crate::Result;
use webpuzzle_stats::regression::wls;
use webpuzzle_stats::special::digamma;
use webpuzzle_stats::StatsError;

/// Abry-Veitch estimator with automatic octave selection: uses Daubechies-2,
/// skips the finest octave (short-range-dependence contamination) and keeps
/// octaves with at least 8 coefficients.
///
/// # Errors
///
/// See [`abry_veitch_with_scales`].
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::{abry_veitch, fgn::FgnGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = FgnGenerator::new(0.8)?.seed(17).generate(16_384)?;
/// let est = abry_veitch(&x)?;
/// assert!((est.h - 0.8).abs() < 0.08, "H = {}", est.h);
/// assert!(est.ci95.is_some());
/// # Ok(())
/// # }
/// ```
pub fn abry_veitch(data: &[f64]) -> Result<HurstEstimate> {
    abry_veitch_with_scales(data, Wavelet::Daubechies2, 2, usize::MAX)
}

/// Abry-Veitch estimator with explicit wavelet and octave range
/// `[j1, j2]` (`j2` is clamped to the deepest octave keeping ≥ 8
/// coefficients).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if fewer than 3 octaves fit in
/// the requested range, plus any DWT failure.
pub fn abry_veitch_with_scales(
    data: &[f64],
    wavelet: Wavelet,
    j1: usize,
    j2: usize,
) -> Result<HurstEstimate> {
    if j1 == 0 {
        return Err(StatsError::InvalidParameter {
            name: "j1",
            value: 0.0,
            constraint: "octaves are 1-based; j1 must be >= 1",
        });
    }
    let max_level = (data.len() as f64).log2().floor() as usize;
    let levels = dwt(data, wavelet, max_level.min(j2.saturating_add(0)))?;

    let ln2 = std::f64::consts::LN_2;
    // The periodized DWT wraps the signal circularly, so any level/trend
    // mismatch between the series' two ends leaks energy into the trailing
    // coefficients of every octave. Dropping one filter-length of trailing
    // coefficients removes the contamination and preserves the estimator's
    // trend robustness (the property its vanishing moments are supposed to
    // provide).
    let boundary_drop = wavelet.lowpass().len();
    let mut js = Vec::new();
    let mut ys = Vec::new();
    let mut ws = Vec::new();
    for level in &levels {
        let j = level.level;
        let usable = level.details.len().saturating_sub(boundary_drop);
        let nj = usable;
        if j < j1 || j > j2 || nj < 8 {
            continue;
        }
        let mu: f64 = level.details[..usable].iter().map(|d| d * d).sum::<f64>() / nj as f64;
        if mu <= 0.0 {
            continue;
        }
        // Bias correction: E[log2 μ̂_j] = log2 μ_j + g_j with
        // g_j = ψ(n_j/2)/ln2 − log2(n_j/2).
        let half_n = nj as f64 / 2.0;
        let gj = digamma(half_n) / ln2 - half_n.log2();
        // Var[log2 μ̂_j] = ζ(2, n_j/2)/ln²2 ≈ 2/(n_j ln²2).
        let var = 2.0 / (nj as f64 * ln2 * ln2);
        js.push(j as f64);
        ys.push(mu.log2() - gj);
        ws.push(1.0 / var);
    }
    if js.len() < 3 {
        return Err(StatsError::InsufficientData {
            needed: 3,
            got: js.len(),
        });
    }
    let fit = wls(&js, &ys, &ws)?;
    // Slope ζ = 2H − 1 for LRD (stationary) processes.
    let h = (fit.slope + 1.0) / 2.0;
    let half_width = 1.96 * fit.slope_std_err / 2.0;
    Ok(HurstEstimate::with_ci(
        EstimatorKind::AbryVeitch,
        h,
        h - half_width,
        h + half_width,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgn::FgnGenerator;

    #[test]
    fn recovers_h_for_fgn() {
        for &h in &[0.6, 0.75, 0.9] {
            let x = FgnGenerator::new(h)
                .unwrap()
                .seed(55)
                .generate(32_768)
                .unwrap();
            let est = abry_veitch(&x).unwrap();
            assert!(
                (est.h - h).abs() < 0.08,
                "true H = {h}, estimated {}",
                est.h
            );
        }
    }

    #[test]
    fn white_noise_near_half() {
        let x = FgnGenerator::new(0.5)
            .unwrap()
            .seed(56)
            .generate(32_768)
            .unwrap();
        let est = abry_veitch(&x).unwrap();
        assert!((est.h - 0.5).abs() < 0.05, "H = {}", est.h);
    }

    #[test]
    fn ci_covers_truth_most_of_the_time() {
        let h = 0.75;
        let mut covered = 0;
        let trials = 20;
        for seed in 100..100 + trials {
            let x = FgnGenerator::new(h)
                .unwrap()
                .seed(seed)
                .generate(8192)
                .unwrap();
            let est = abry_veitch(&x).unwrap();
            let (lo, hi) = est.ci95.unwrap();
            if lo <= h && h <= hi {
                covered += 1;
            }
        }
        assert!(covered >= 15, "coverage {covered}/{trials}");
    }

    #[test]
    fn robust_to_linear_trend() {
        // The 2 vanishing moments of db2 should absorb a linear trend —
        // the property that makes Abry-Veitch attractive for raw traffic.
        let h = 0.7;
        let clean = FgnGenerator::new(h)
            .unwrap()
            .seed(57)
            .generate(16_384)
            .unwrap();
        let trended: Vec<f64> = clean
            .iter()
            .enumerate()
            .map(|(t, x)| x + 0.001 * t as f64)
            .collect();
        let est = abry_veitch(&trended).unwrap();
        assert!((est.h - h).abs() < 0.1, "H = {} under trend", est.h);
    }

    #[test]
    fn explicit_scale_range() {
        let x = FgnGenerator::new(0.8)
            .unwrap()
            .seed(58)
            .generate(16_384)
            .unwrap();
        let est = abry_veitch_with_scales(&x, Wavelet::Daubechies4, 3, 9).unwrap();
        assert!((est.h - 0.8).abs() < 0.12, "H = {}", est.h);
    }

    #[test]
    fn errors() {
        assert!(abry_veitch(&[1.0; 16]).is_err());
        let x = FgnGenerator::new(0.7)
            .unwrap()
            .seed(59)
            .generate(1024)
            .unwrap();
        assert!(abry_veitch_with_scales(&x, Wavelet::Daubechies2, 0, 5).is_err());
        // j1 beyond available octaves.
        assert!(abry_veitch_with_scales(&x, Wavelet::Daubechies2, 20, 25).is_err());
    }
}
