//! FARIMA(0, d, 0) synthesis: fractionally integrated noise.
//!
//! An independent second family of exactly long-range dependent processes
//! (`H = d + 1/2` for `0 < d < 1/2`), used to cross-validate the Hurst
//! estimators against a model that is *not* the fGn their spectra were
//! tuned on. FARIMA has the same spectral pole `λ^{-2d}` at the origin but
//! different high-frequency structure — an estimator that only worked on
//! fGn would be exposed here.

use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use webpuzzle_stats::dist::Normal;
use webpuzzle_stats::StatsError;
use webpuzzle_timeseries::fft::{fft, ifft, Complex};

/// Generator of FARIMA(0, d, 0) sample paths via truncated MA(∞)
/// convolution, `X_t = Σ_j ψ_j ε_{t−j}` with
/// `ψ_j = Γ(j + d) / (Γ(j + 1) Γ(d))`, evaluated by FFT.
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::arfima::FarimaGenerator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // d = 0.3 ⇒ H = 0.8.
/// let x = FarimaGenerator::new(0.3)?.seed(5).generate(4096)?;
/// assert_eq!(x.len(), 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FarimaGenerator {
    d: f64,
    seed: u64,
    truncation: usize,
}

impl FarimaGenerator {
    /// Create a generator with memory parameter `d ∈ (-0.5, 0.5)`
    /// (`d > 0` gives LRD with `H = d + 1/2`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for `d` outside
    /// `(-0.5, 0.5)`.
    pub fn new(d: f64) -> Result<Self> {
        if !d.is_finite() || d <= -0.5 || d >= 0.5 {
            return Err(StatsError::InvalidParameter {
                name: "d",
                value: d,
                constraint: "must be in the open interval (-0.5, 0.5)",
            });
        }
        Ok(FarimaGenerator {
            d,
            seed: 0,
            truncation: 16_384,
        })
    }

    /// Equivalent Hurst exponent `H = d + 1/2`.
    pub fn hurst(&self) -> f64 {
        self.d + 0.5
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the MA(∞) truncation length (default 16 384). Longer truncation
    /// preserves lower-frequency memory; the default is ample for series up
    /// to ~10⁵ points.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for truncation < 64.
    pub fn truncation(mut self, truncation: usize) -> Result<Self> {
        if truncation < 64 {
            return Err(StatsError::InvalidParameter {
                name: "truncation",
                value: truncation as f64,
                constraint: "must be >= 64",
            });
        }
        self.truncation = truncation;
        Ok(self)
    }

    /// Generate `n` points.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] for `n < 2`.
    pub fn generate(&self, n: usize) -> Result<Vec<f64>> {
        if n < 2 {
            return Err(StatsError::InsufficientData { needed: 2, got: n });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let j_max = self.truncation;
        // ψ_0 = 1, ψ_j = ψ_{j−1} (j − 1 + d)/j.
        let mut psi = Vec::with_capacity(j_max);
        psi.push(1.0f64);
        for j in 1..j_max {
            let prev = psi[j - 1];
            psi.push(prev * ((j as f64 - 1.0 + self.d) / j as f64));
        }
        // Innovations long enough to cover the burn-in window.
        let total = n + j_max;
        let eps: Vec<f64> = (0..total)
            .map(|_| Normal::standard_sample(&mut rng))
            .collect();
        // Linear convolution via FFT: out = psi * eps, keep the fully
        // warmed-up segment [j_max, j_max + n).
        let m = (total + j_max).next_power_of_two();
        let mut a: Vec<Complex> = Vec::with_capacity(m);
        a.extend(psi.iter().map(|&p| Complex::from_real(p)));
        a.resize(m, Complex::ZERO);
        let mut b: Vec<Complex> = Vec::with_capacity(m);
        b.extend(eps.iter().map(|&e| Complex::from_real(e)));
        b.resize(m, Complex::ZERO);
        fft(&mut a);
        fft(&mut b);
        for (x, y) in a.iter_mut().zip(&b) {
            *x = *x * *y;
        }
        ifft(&mut a);
        Ok(a[j_max..j_max + n].iter().map(|z| z.re).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{abry_veitch, periodogram_hurst, whittle};

    #[test]
    fn rejects_bad_d() {
        assert!(FarimaGenerator::new(0.5).is_err());
        assert!(FarimaGenerator::new(-0.5).is_err());
        assert!(FarimaGenerator::new(f64::NAN).is_err());
        assert!(FarimaGenerator::new(0.49).is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = FarimaGenerator::new(0.3)
            .unwrap()
            .seed(1)
            .generate(512)
            .unwrap();
        let b = FarimaGenerator::new(0.3)
            .unwrap()
            .seed(1)
            .generate(512)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn d_zero_is_white_noise() {
        let x = FarimaGenerator::new(0.0)
            .unwrap()
            .seed(2)
            .generate(32_768)
            .unwrap();
        let est = whittle(&x).unwrap();
        assert!((est.h - 0.5).abs() < 0.04, "H = {}", est.h);
    }

    #[test]
    fn estimators_recover_h_on_farima() {
        // Cross-family validation: the estimators were tested on fGn; they
        // must also work on FARIMA with the same asymptotic H.
        for &d in &[0.2, 0.35] {
            let h = d + 0.5;
            let x = FarimaGenerator::new(d)
                .unwrap()
                .seed(3)
                .generate(65_536)
                .unwrap();
            let w = whittle(&x).unwrap().h;
            let av = abry_veitch(&x).unwrap().h;
            let pg = periodogram_hurst(&x).unwrap().h;
            assert!((w - h).abs() < 0.06, "whittle on FARIMA d={d}: {w}");
            assert!((av - h).abs() < 0.08, "abry-veitch on FARIMA d={d}: {av}");
            assert!((pg - h).abs() < 0.1, "periodogram on FARIMA d={d}: {pg}");
        }
    }

    #[test]
    fn negative_d_is_antipersistent() {
        let x = FarimaGenerator::new(-0.3)
            .unwrap()
            .seed(4)
            .generate(32_768)
            .unwrap();
        let est = whittle(&x).unwrap();
        assert!(est.h < 0.35, "H = {}", est.h);
    }

    #[test]
    fn truncation_validation() {
        assert!(FarimaGenerator::new(0.2).unwrap().truncation(10).is_err());
        assert!(FarimaGenerator::new(0.2).unwrap().truncation(1024).is_ok());
    }

    #[test]
    fn too_short_rejected() {
        assert!(FarimaGenerator::new(0.2).unwrap().generate(1).is_err());
    }
}
