//! Hurst estimation across aggregation levels (Figures 7–8).
//!
//! Because long-range dependence is an *asymptotic* property, the paper
//! re-estimates H on the m-aggregated series `X^{(m)}` for increasing m: if
//! Ĥ(m) stays roughly constant (and its confidence band keeps excluding
//! 0.5), the measured self-similarity is genuine rather than an artifact of
//! short-range structure.

use crate::{abry_veitch, whittle, HurstEstimate, Result};
use serde::{Deserialize, Serialize};
use webpuzzle_stats::StatsError;
use webpuzzle_timeseries::{aggregate, aggregation_levels};

/// Which CI-producing estimator to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SweepEstimator {
    /// Whittle maximum likelihood.
    Whittle,
    /// Abry-Veitch wavelet regression.
    AbryVeitch,
}

/// One point of an Ĥ(m) sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregatedEstimate {
    /// Aggregation level m.
    pub m: usize,
    /// Points remaining in the aggregated series.
    pub len: usize,
    /// The estimate (with CI) at this level.
    pub estimate: HurstEstimate,
}

/// Estimate H on `X^{(m)}` for a geometric grid of aggregation levels,
/// keeping at least `min_points` points at the deepest level (the paper's
/// footnote 2: CIs widen as m grows because fewer observations remain).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when even `m = 1` cannot be
/// estimated.
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::{aggregated_hurst_sweep, fgn::FgnGenerator, SweepEstimator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = FgnGenerator::new(0.8)?.seed(31).generate(32_768)?;
/// let sweep = aggregated_hurst_sweep(&x, SweepEstimator::Whittle, 512)?;
/// assert!(sweep.len() >= 4);
/// // Ĥ(m) should stay in the LRD band throughout.
/// assert!(sweep.iter().all(|p| p.estimate.h > 0.6 && p.estimate.h < 1.0));
/// # Ok(())
/// # }
/// ```
pub fn aggregated_hurst_sweep(
    data: &[f64],
    estimator: SweepEstimator,
    min_points: usize,
) -> Result<Vec<AggregatedEstimate>> {
    let levels = aggregation_levels(data.len(), min_points.max(128));
    let mut out = Vec::new();
    for &m in &levels {
        let series = if m == 1 {
            data.to_vec()
        } else {
            aggregate(data, m)?
        };
        let est = match estimator {
            SweepEstimator::Whittle => whittle(&series),
            SweepEstimator::AbryVeitch => abry_veitch(&series),
        };
        if let Ok(estimate) = est {
            out.push(AggregatedEstimate {
                m,
                len: series.len(),
                estimate,
            });
        }
    }
    if out.is_empty() {
        return Err(StatsError::InsufficientData {
            needed: 128,
            got: data.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgn::FgnGenerator;

    #[test]
    fn sweep_stable_for_fgn() {
        let h = 0.8;
        let x = FgnGenerator::new(h)
            .unwrap()
            .seed(300)
            .generate(65_536)
            .unwrap();
        let sweep = aggregated_hurst_sweep(&x, SweepEstimator::Whittle, 512).unwrap();
        assert!(sweep.len() >= 5, "{} levels", sweep.len());
        for p in &sweep {
            assert!(
                (p.estimate.h - h).abs() < 0.15,
                "m = {}: H = {}",
                p.m,
                p.estimate.h
            );
        }
        // m grid is increasing and lengths decreasing.
        for w in sweep.windows(2) {
            assert!(w[0].m < w[1].m);
            assert!(w[0].len >= w[1].len);
        }
    }

    #[test]
    fn ci_widens_with_aggregation() {
        // Footnote 2 of the paper: fewer points at larger m → wider CIs.
        let x = FgnGenerator::new(0.75)
            .unwrap()
            .seed(301)
            .generate(65_536)
            .unwrap();
        let sweep = aggregated_hurst_sweep(&x, SweepEstimator::Whittle, 256).unwrap();
        let width = |p: &AggregatedEstimate| {
            let (lo, hi) = p.estimate.ci95.unwrap();
            hi - lo
        };
        assert!(width(sweep.last().unwrap()) > width(&sweep[0]));
    }

    #[test]
    fn abry_veitch_sweep_runs() {
        let x = FgnGenerator::new(0.7)
            .unwrap()
            .seed(302)
            .generate(32_768)
            .unwrap();
        let sweep = aggregated_hurst_sweep(&x, SweepEstimator::AbryVeitch, 512).unwrap();
        assert!(!sweep.is_empty());
        for p in &sweep {
            assert!(
                (p.estimate.h - 0.7).abs() < 0.2,
                "m={}: {}",
                p.m,
                p.estimate.h
            );
        }
    }

    #[test]
    fn tiny_series_rejected() {
        assert!(aggregated_hurst_sweep(&[1.0; 50], SweepEstimator::Whittle, 128).is_err());
    }
}
