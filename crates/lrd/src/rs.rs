//! Rescaled-range (R/S) estimator of the Hurst exponent.

use crate::estimate::{EstimatorKind, HurstEstimate};
use crate::Result;
use webpuzzle_stats::regression::ols;
use webpuzzle_stats::StatsError;

/// R/S estimator: for blocks of length `d`, the rescaled adjusted range
/// `R/S` grows like `d^H`; the slope of `log E[R/S]` against `log d` is the
/// Hurst exponent (Hurst's original method, as standardized by Mandelbrot
/// and used by Leland et al. and the SELFIS tool).
///
/// Block sizes run geometrically from 16 up to n/4, and `R/S` is averaged
/// over all non-overlapping blocks of each size.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for series shorter than 256
/// points and [`StatsError::DegenerateInput`] when no block produces a
/// usable R/S value (e.g. constant series).
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::{fgn::FgnGenerator, rescaled_range};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = FgnGenerator::new(0.8)?.seed(3).generate(16_384)?;
/// let est = rescaled_range(&x)?;
/// assert!(est.h > 0.6, "H = {}", est.h);
/// # Ok(())
/// # }
/// ```
pub fn rescaled_range(data: &[f64]) -> Result<HurstEstimate> {
    let n = data.len();
    if n < 256 {
        return Err(StatsError::InsufficientData {
            needed: 256,
            got: n,
        });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteData);
    }

    let mut log_d = Vec::new();
    let mut log_rs = Vec::new();
    let mut d = 16usize;
    while d <= n / 4 {
        let mut rs_values = Vec::new();
        for block in data.chunks_exact(d) {
            if let Some(rs) = block_rs(block) {
                rs_values.push(rs);
            }
        }
        if !rs_values.is_empty() {
            let mean_rs = rs_values.iter().sum::<f64>() / rs_values.len() as f64;
            if mean_rs > 0.0 {
                log_d.push((d as f64).ln());
                log_rs.push(mean_rs.ln());
            }
        }
        d = ((d as f64) * 1.7).ceil() as usize;
    }
    if log_d.len() < 3 {
        return Err(StatsError::DegenerateInput {
            what: "too few usable block sizes for an R/S fit",
        });
    }
    let fit = ols(&log_d, &log_rs)?;
    Ok(HurstEstimate::new(EstimatorKind::RescaledRange, fit.slope))
}

// R/S statistic of one block: cumulative deviations from the block mean,
// range of that walk, divided by the block standard deviation.
fn block_rs(block: &[f64]) -> Option<f64> {
    let d = block.len() as f64;
    let mean = block.iter().sum::<f64>() / d;
    let var = block.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / d;
    if var <= 0.0 {
        return None;
    }
    let mut walk = 0.0;
    let mut max_w = 0.0f64;
    let mut min_w = 0.0f64;
    for &x in block {
        walk += x - mean;
        max_w = max_w.max(walk);
        min_w = min_w.min(walk);
    }
    Some((max_w - min_w) / var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgn::FgnGenerator;

    #[test]
    fn recovers_h_for_fgn() {
        // R/S is known to be biased toward the middle; use loose bands.
        for &(h, lo, hi) in &[(0.6, 0.5, 0.75), (0.85, 0.68, 0.95)] {
            let x = FgnGenerator::new(h)
                .unwrap()
                .seed(88)
                .generate(65_536)
                .unwrap();
            let est = rescaled_range(&x).unwrap();
            assert!(
                est.h > lo && est.h < hi,
                "true H = {h}, estimated {}",
                est.h
            );
        }
    }

    #[test]
    fn white_noise_near_half() {
        let x = FgnGenerator::new(0.5)
            .unwrap()
            .seed(89)
            .generate(65_536)
            .unwrap();
        let est = rescaled_range(&x).unwrap();
        // R/S has a well-known small-sample upward bias at H = 0.5.
        assert!((est.h - 0.55).abs() < 0.1, "H = {}", est.h);
    }

    #[test]
    fn distinguishes_low_from_high_h() {
        let low = FgnGenerator::new(0.55)
            .unwrap()
            .seed(90)
            .generate(32_768)
            .unwrap();
        let high = FgnGenerator::new(0.9)
            .unwrap()
            .seed(90)
            .generate(32_768)
            .unwrap();
        let h_low = rescaled_range(&low).unwrap().h;
        let h_high = rescaled_range(&high).unwrap().h;
        assert!(h_high > h_low + 0.15, "low {h_low}, high {h_high}");
    }

    #[test]
    fn errors() {
        assert!(rescaled_range(&[1.0; 10]).is_err());
        assert!(matches!(
            rescaled_range(&vec![2.0; 1000]),
            Err(StatsError::DegenerateInput { .. })
        ));
        let mut x = vec![1.0; 1000];
        x[5] = f64::NAN;
        assert!(matches!(rescaled_range(&x), Err(StatsError::NonFiniteData)));
    }

    #[test]
    fn block_rs_simple() {
        // Alternating series: walk stays within one step.
        let block: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let rs = block_rs(&block).unwrap();
        assert!(rs > 0.0 && rs < 3.0, "rs = {rs}");
    }
}
