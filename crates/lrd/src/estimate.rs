//! Common result types for Hurst-exponent estimators.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which estimator produced a [`HurstEstimate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// Variance-time plot (time domain).
    VarianceTime,
    /// Rescaled range R/S (time domain).
    RescaledRange,
    /// Periodogram log-log regression (frequency domain).
    Periodogram,
    /// Whittle maximum likelihood under an fGn spectrum (frequency domain).
    Whittle,
    /// Abry-Veitch wavelet log-scale diagram (wavelet domain).
    AbryVeitch,
    /// Absolute-moments aggregation method (extension beyond the paper).
    AbsoluteMoments,
    /// Variance-of-residuals / Peng method (extension beyond the paper).
    VarianceResiduals,
}

impl fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EstimatorKind::VarianceTime => "Variance",
            EstimatorKind::RescaledRange => "R/S",
            EstimatorKind::Periodogram => "Periodogram",
            EstimatorKind::Whittle => "Whittle",
            EstimatorKind::AbryVeitch => "Abry-Veitch",
            EstimatorKind::AbsoluteMoments => "Abs-Moments",
            EstimatorKind::VarianceResiduals => "Var-Residuals",
        };
        f.write_str(name)
    }
}

/// A point estimate of the Hurst exponent, optionally with a 95 % confidence
/// interval (Whittle and Abry-Veitch provide one, per the paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HurstEstimate {
    /// Which estimator produced this value.
    pub kind: EstimatorKind,
    /// The point estimate Ĥ.
    pub h: f64,
    /// 95 % confidence interval `(lower, upper)` when the estimator provides
    /// one.
    pub ci95: Option<(f64, f64)>,
}

impl HurstEstimate {
    /// Create an estimate without a confidence interval.
    pub fn new(kind: EstimatorKind, h: f64) -> Self {
        HurstEstimate {
            kind,
            h,
            ci95: None,
        }
    }

    /// Create an estimate with a 95 % confidence interval.
    pub fn with_ci(kind: EstimatorKind, h: f64, lower: f64, upper: f64) -> Self {
        HurstEstimate {
            kind,
            h,
            ci95: Some((lower, upper)),
        }
    }

    /// Whether the estimate indicates long-range dependence
    /// (`0.5 < H < 1`), the criterion the paper applies throughout §4–§5.
    pub fn indicates_lrd(&self) -> bool {
        self.h > 0.5 && self.h < 1.0
    }
}

impl fmt::Display for HurstEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ci95 {
            Some((lo, hi)) => {
                write!(f, "{}: H = {:.3} [{:.3}, {:.3}]", self.kind, self.h, lo, hi)
            }
            None => write!(f, "{}: H = {:.3}", self.kind, self.h),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lrd_criterion() {
        assert!(HurstEstimate::new(EstimatorKind::Whittle, 0.75).indicates_lrd());
        assert!(!HurstEstimate::new(EstimatorKind::Whittle, 0.5).indicates_lrd());
        assert!(!HurstEstimate::new(EstimatorKind::Whittle, 1.01).indicates_lrd());
    }

    #[test]
    fn display_formats() {
        let e = HurstEstimate::with_ci(EstimatorKind::AbryVeitch, 0.8, 0.75, 0.85);
        let s = e.to_string();
        assert!(s.contains("Abry-Veitch"));
        assert!(s.contains("0.800"));
        assert!(s.contains("[0.750, 0.850]"));
        let plain = HurstEstimate::new(EstimatorKind::RescaledRange, 0.6).to_string();
        assert!(plain.contains("R/S"));
        assert!(!plain.contains('['));
    }

    #[test]
    fn serde_roundtrip() {
        let e = HurstEstimate::with_ci(EstimatorKind::Whittle, 0.7, 0.65, 0.75);
        let json = serde_json::to_string(&e).unwrap();
        let back: HurstEstimate = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
