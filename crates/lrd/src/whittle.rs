//! Whittle maximum-likelihood estimator of the Hurst exponent under a
//! fractional-Gaussian-noise spectral model, with asymptotic 95 % confidence
//! intervals (Fox–Taqqu / Dahlhaus theory).

use crate::estimate::{EstimatorKind, HurstEstimate};
use crate::Result;
use webpuzzle_stats::StatsError;
use webpuzzle_timeseries::periodogram;

// Truncation of the infinite aliasing sum in the fGn spectral density; the
// remainder is handled by an integral tail correction (Paxson's device).
const ALIAS_TERMS: usize = 30;

/// Spectral density of unit-scale fractional Gaussian noise at angular
/// frequency `λ ∈ (0, π]` for Hurst exponent `h`, up to a positive constant
/// that the Whittle likelihood profiles out:
///
/// `f(λ; H) ∝ (1 − cos λ) · Σ_{j∈ℤ} |2πj + λ|^{−2H−1}`.
///
/// The infinite sum is truncated after a fixed number of alias terms (30)
/// with an integral correction for the tail.
///
/// # Panics
///
/// Panics if `λ` is outside `(0, π]` or `h` outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::fgn_spectral_density;
///
/// // LRD spectra blow up at the origin: f(0.01) >> f(1.0) for H > 0.5.
/// let near = fgn_spectral_density(0.01, 0.8);
/// let far = fgn_spectral_density(1.0, 0.8);
/// assert!(near > 10.0 * far);
/// ```
pub fn fgn_spectral_density(lambda: f64, h: f64) -> f64 {
    assert!(
        lambda > 0.0 && lambda <= std::f64::consts::PI,
        "lambda must be in (0, π], got {lambda}"
    );
    assert!(h > 0.0 && h < 1.0, "h must be in (0, 1), got {h}");
    let two_pi = 2.0 * std::f64::consts::PI;
    let e = -(2.0 * h + 1.0);
    let mut b = lambda.powf(e);
    for j in 1..=ALIAS_TERMS {
        let tj = two_pi * j as f64;
        b += (tj + lambda).powf(e) + (tj - lambda).powf(e);
    }
    // Tail: ∫_{J+1/2}^{∞} [(2πx+λ)^e + (2πx−λ)^e] dx
    //     = [(2π(J+1/2)+λ)^{e+1} + (2π(J+1/2)−λ)^{e+1}] / (2H · 2π).
    let edge = two_pi * (ALIAS_TERMS as f64 + 0.5);
    b += ((edge + lambda).powf(e + 1.0) + (edge - lambda).powf(e + 1.0)) / (2.0 * h * two_pi);
    2.0 * (1.0 - lambda.cos()) * b
}

/// Whittle estimator: minimizes the (scale-profiled) Whittle likelihood
///
/// `Q(H) = log( (1/m) Σ_j I(λ_j)/g(λ_j;H) ) + (1/m) Σ_j log g(λ_j;H)`
///
/// over `H ∈ (0, 1)` by golden-section search, where `I` is the periodogram
/// and `g` the fGn spectral shape. The 95 % confidence interval comes from
/// the asymptotic variance of the profiled Whittle estimate.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for series shorter than 128
/// points, [`StatsError::DegenerateInput`] for an all-zero periodogram, and
/// [`StatsError::NoConvergence`] if the likelihood search fails.
///
/// # Examples
///
/// ```
/// use webpuzzle_lrd::{fgn::FgnGenerator, whittle};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = FgnGenerator::new(0.7)?.seed(11).generate(8192)?;
/// let est = whittle(&x)?;
/// let (lo, hi) = est.ci95.unwrap();
/// assert!(lo < 0.7 && 0.7 < hi, "CI [{lo}, {hi}] misses the truth");
/// # Ok(())
/// # }
/// ```
pub fn whittle(data: &[f64]) -> Result<HurstEstimate> {
    let n = data.len();
    if n < 128 {
        return Err(StatsError::InsufficientData {
            needed: 128,
            got: n,
        });
    }
    let p = periodogram(data)?;
    // Exclude the Nyquist ordinate when n is even (it has a different
    // distribution), keep everything else.
    let m = if n.is_multiple_of(2) {
        p.power().len() - 1
    } else {
        p.power().len()
    };
    let freqs = &p.freqs()[..m];
    let power = &p.power()[..m];
    if power.iter().all(|&x| x == 0.0) {
        return Err(StatsError::DegenerateInput {
            what: "all-zero periodogram",
        });
    }

    let objective = |h: f64| -> f64 {
        let mut ratio_sum = 0.0;
        let mut log_sum = 0.0;
        for (&lambda, &i_l) in freqs.iter().zip(power) {
            let g = fgn_spectral_density(lambda, h);
            ratio_sum += i_l / g;
            log_sum += g.ln();
        }
        (ratio_sum / m as f64).ln() + log_sum / m as f64
    };

    let h_hat = golden_section_min(objective, 0.01, 0.99, 1e-6)?;

    // Asymptotic variance of the profiled Whittle estimate:
    // Var(Ĥ) = 1 / (n · I_eff),
    // I_eff = (1/4π)∫_{−π}^{π} D² dλ − (1/8π²)(∫_{−π}^{π} D dλ)²,
    // with D(λ) = ∂ log f(λ;H)/∂H, evaluated at Ĥ (numeric derivative,
    // symmetric integrals computed on (0, π)).
    let var = whittle_asymptotic_variance(h_hat, n);
    let half = 1.96 * var.sqrt();
    Ok(HurstEstimate::with_ci(
        EstimatorKind::Whittle,
        h_hat,
        h_hat - half,
        h_hat + half,
    ))
}

fn whittle_asymptotic_variance(h: f64, n: usize) -> f64 {
    let pi = std::f64::consts::PI;
    let grid = 512usize;
    let dh = 1e-5;
    let mut int_d = 0.0;
    let mut int_d2 = 0.0;
    // Midpoint rule on (0, π); integrand is symmetric so the full-range
    // integrals are twice these.
    for i in 0..grid {
        let lambda = (i as f64 + 0.5) * pi / grid as f64;
        let d = (fgn_spectral_density(lambda, h + dh).ln()
            - fgn_spectral_density(lambda, h - dh).ln())
            / (2.0 * dh);
        int_d += d;
        int_d2 += d * d;
    }
    let w = pi / grid as f64;
    let full_d = 2.0 * int_d * w;
    let full_d2 = 2.0 * int_d2 * w;
    let i_eff = full_d2 / (4.0 * pi) - full_d * full_d / (8.0 * pi * pi);
    if i_eff <= 0.0 {
        // Should not happen for fGn; return a conservative wide variance.
        return 1.0 / n as f64;
    }
    1.0 / (n as f64 * i_eff)
}

// Golden-section minimization of a unimodal function on [a, b].
fn golden_section_min<F: Fn(f64) -> f64>(f: F, mut a: f64, mut b: f64, tol: f64) -> Result<f64> {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    let mut iterations = 0;
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
        iterations += 1;
        if iterations > 200 {
            return Err(StatsError::NoConvergence {
                what: "golden-section search",
            });
        }
    }
    webpuzzle_obs::metrics::sharded_counter("lrd/whittle_iterations").add(iterations);
    let x = (a + b) / 2.0;
    if !f(x).is_finite() {
        return Err(StatsError::NoConvergence {
            what: "Whittle likelihood evaluation",
        });
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgn::FgnGenerator;

    #[test]
    fn spectral_density_positive_and_integrable_shape() {
        for &h in &[0.3, 0.5, 0.7, 0.9] {
            for &l in &[1e-4, 0.01, 0.5, 1.5, std::f64::consts::PI] {
                let f = fgn_spectral_density(l, h);
                assert!(f > 0.0 && f.is_finite(), "f({l}; {h}) = {f}");
            }
        }
    }

    #[test]
    fn spectral_density_flat_for_white_noise() {
        // H = 0.5 is white noise: the spectrum should be (nearly) constant.
        let f1 = fgn_spectral_density(0.1, 0.5);
        let f2 = fgn_spectral_density(2.0, 0.5);
        assert!((f1 / f2 - 1.0).abs() < 0.02, "{f1} vs {f2}");
    }

    #[test]
    fn spectral_density_origin_exponent() {
        // Near 0, f(λ) ∝ λ^{1−2H}.
        let h = 0.8;
        let l1 = 1e-3;
        let l2 = 2e-3;
        let slope =
            (fgn_spectral_density(l2, h) / fgn_spectral_density(l1, h)).ln() / (l2 / l1).ln();
        assert!((slope - (1.0 - 2.0 * h)).abs() < 0.02, "slope = {slope}");
    }

    #[test]
    fn recovers_h_for_fgn() {
        for &h in &[0.6, 0.75, 0.9] {
            let x = FgnGenerator::new(h)
                .unwrap()
                .seed(111)
                .generate(16_384)
                .unwrap();
            let est = whittle(&x).unwrap();
            assert!(
                (est.h - h).abs() < 0.05,
                "true H = {h}, estimated {}",
                est.h
            );
        }
    }

    #[test]
    fn ci_covers_truth_most_of_the_time() {
        let h = 0.7;
        let mut covered = 0;
        let trials = 20;
        for seed in 0..trials {
            let x = FgnGenerator::new(h)
                .unwrap()
                .seed(seed)
                .generate(4096)
                .unwrap();
            let est = whittle(&x).unwrap();
            let (lo, hi) = est.ci95.unwrap();
            if lo <= h && h <= hi {
                covered += 1;
            }
        }
        // Nominal 95% coverage: demand at least 16/20.
        assert!(covered >= 16, "coverage {covered}/{trials}");
    }

    #[test]
    fn ci_narrows_with_length() {
        let gen = FgnGenerator::new(0.8).unwrap().seed(7);
        let short = whittle(&gen.generate(2048).unwrap()).unwrap();
        let long = whittle(&gen.generate(32_768).unwrap()).unwrap();
        let width = |e: &HurstEstimate| {
            let (lo, hi) = e.ci95.unwrap();
            hi - lo
        };
        assert!(
            width(&long) < width(&short) / 2.0,
            "short {} long {}",
            width(&short),
            width(&long)
        );
    }

    #[test]
    fn white_noise_near_half() {
        let x = FgnGenerator::new(0.5)
            .unwrap()
            .seed(113)
            .generate(16_384)
            .unwrap();
        let est = whittle(&x).unwrap();
        assert!((est.h - 0.5).abs() < 0.04, "H = {}", est.h);
    }

    #[test]
    fn short_series_rejected() {
        assert!(whittle(&[1.0; 64]).is_err());
    }

    #[test]
    fn golden_section_finds_parabola_min() {
        let min = golden_section_min(|x| (x - 0.37) * (x - 0.37), 0.0, 1.0, 1e-8).unwrap();
        assert!((min - 0.37).abs() < 1e-6);
    }
}
