//! Property tests for the k-way heap merge: splitting a sorted record set
//! into arbitrary shards (each preserving relative order, hence sorted) and
//! merging them back must reproduce the original sorted sequence — and for
//! tied timestamps, exactly the stable (timestamp, shard index, shard
//! position) order the merge contract promises.

use proptest::prelude::*;
use webpuzzle_weblog::{merge_sorted, LogRecord, Method};

fn arb_method() -> impl Strategy<Value = Method> {
    prop_oneof![Just(Method::Get), Just(Method::Post), Just(Method::Head)]
}

/// Coarse timestamps (integer seconds in a small range) so tied timestamps
/// are common — ties are where a k-way merge goes wrong first.
fn arb_record() -> impl Strategy<Value = LogRecord> {
    (
        0u32..200,
        0u32..40,
        arb_method(),
        0u32..1_000,
        prop_oneof![Just(200u16), Just(304), Just(404), Just(500)],
        0u64..1_000_000,
    )
        .prop_map(|(t, client, method, resource, status, bytes)| {
            LogRecord::new(t as f64, client, method, resource, status, bytes)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Merge of arbitrarily split sorted shards ≡ sort of the concatenation.
    /// The expected order is computed independently of the merge: a stable
    /// sort of (record, shard, position-in-shard) by (timestamp, shard,
    /// position), which is exactly the documented tie-break.
    #[test]
    fn merge_of_split_shards_equals_sorted_concat(
        mut records in prop::collection::vec(arb_record(), 0..300),
        shard_count in 1usize..9,
        assignment_seed in prop::collection::vec(0usize..9, 0..300),
    ) {
        records.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));

        // Deal each record to a shard; dealing preserves relative order, so
        // every shard is itself sorted.
        let mut shards: Vec<Vec<LogRecord>> = vec![Vec::new(); shard_count];
        for (i, record) in records.iter().enumerate() {
            let shard = assignment_seed.get(i).copied().unwrap_or(i) % shard_count;
            shards[shard].push(*record);
        }

        // Independent expectation: stable sort of the concatenation keyed by
        // (timestamp, shard, position).
        let mut expected: Vec<(f64, usize, usize, LogRecord)> = Vec::new();
        for (s, shard) in shards.iter().enumerate() {
            for (p, record) in shard.iter().enumerate() {
                expected.push((record.timestamp, s, p, *record));
            }
        }
        expected.sort_by(|a, b| {
            a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
        });

        let refs: Vec<&[LogRecord]> = shards.iter().map(|s| s.as_slice()).collect();
        let merged = merge_sorted(&refs).unwrap();

        prop_assert_eq!(merged.len(), records.len());
        for (got, want) in merged.iter().zip(expected.iter()) {
            prop_assert_eq!(got, &want.3);
        }
        prop_assert!(merged.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    /// An unsorted shard is always rejected, never silently merged.
    #[test]
    fn unsorted_shard_rejected(
        mut records in prop::collection::vec(arb_record(), 2..100),
        swap_at in 0usize..99,
    ) {
        records.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
        let i = swap_at % (records.len() - 1);
        // Force a strict inversion at i; skip degenerate all-equal windows.
        if records[i].timestamp < records[i + 1].timestamp {
            records.swap(i, i + 1);
            let result = merge_sorted(&[&records]);
            prop_assert!(result.is_err());
        }
    }
}
