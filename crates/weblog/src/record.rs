//! The in-memory log record.

use serde::{Deserialize, Serialize};
use std::fmt;

/// HTTP method of a logged request. Only the methods that matter for
/// workload analysis are distinguished; everything else folds into
/// [`Method::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Method {
    /// HTTP GET — the overwhelming majority of 1995–2004 Web traffic.
    #[default]
    Get,
    /// HTTP POST.
    Post,
    /// HTTP HEAD.
    Head,
    /// Anything else (PUT, OPTIONS, proprietary…).
    Other,
}

impl Method {
    /// The canonical token used in request lines.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
            Method::Other => "OTHER",
        }
    }

    /// Parse a request-line token (case-insensitive); unknown methods map to
    /// [`Method::Other`].
    pub fn parse(token: &str) -> Method {
        match token.to_ascii_uppercase().as_str() {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "HEAD" => Method::Head,
            _ => Method::Other,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One request in a Web server log, stored compactly (24 bytes of payload)
/// so week-scale datasets (the paper's WVU log has 15.8 M requests) stay in
/// memory.
///
/// Clients and resources are interned as integer identifiers; the CLF
/// formatter renders them as synthetic IPv4 addresses and paths. This
/// mirrors the paper's NASA-Pub2 sanitized logs, where IPs were replaced by
/// unique identifiers — client *identity*, not the dotted quad, is what
/// sessionization needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Seconds since the start of the observation window (sub-second
    /// precision allowed; real logs round to whole seconds).
    pub timestamp: f64,
    /// Interned client (user/IP) identifier.
    pub client: u32,
    /// HTTP method.
    pub method: Method,
    /// Interned resource (URI) identifier.
    pub resource: u32,
    /// HTTP status code.
    pub status: u16,
    /// Bytes transferred in the response body.
    pub bytes: u64,
}

impl LogRecord {
    /// Create a record.
    ///
    /// # Examples
    ///
    /// ```
    /// use webpuzzle_weblog::{LogRecord, Method};
    ///
    /// let r = LogRecord::new(12.5, 42, Method::Get, 7, 200, 2048);
    /// assert_eq!(r.status, 200);
    /// assert!(r.is_success());
    /// ```
    pub fn new(
        timestamp: f64,
        client: u32,
        method: Method,
        resource: u32,
        status: u16,
        bytes: u64,
    ) -> Self {
        LogRecord {
            timestamp,
            client,
            method,
            resource,
            status,
            bytes,
        }
    }

    /// Whether the response was a success (2xx or 3xx).
    pub fn is_success(&self) -> bool {
        (200..400).contains(&self.status)
    }

    /// Whether the response was an error (4xx or 5xx) — the records that
    /// come from the *error* log in the paper's merge step.
    pub fn is_error(&self) -> bool {
        self.status >= 400
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_parse_roundtrip() {
        for m in [Method::Get, Method::Post, Method::Head] {
            assert_eq!(Method::parse(m.as_str()), m);
        }
        assert_eq!(Method::parse("get"), Method::Get);
        assert_eq!(Method::parse("DELETE"), Method::Other);
        assert_eq!(Method::default(), Method::Get);
    }

    #[test]
    fn status_classification() {
        assert!(LogRecord::new(0.0, 1, Method::Get, 1, 200, 0).is_success());
        assert!(LogRecord::new(0.0, 1, Method::Get, 1, 304, 0).is_success());
        assert!(LogRecord::new(0.0, 1, Method::Get, 1, 404, 0).is_error());
        assert!(LogRecord::new(0.0, 1, Method::Get, 1, 500, 0).is_error());
        assert!(!LogRecord::new(0.0, 1, Method::Get, 1, 404, 0).is_success());
    }

    #[test]
    fn record_is_compact() {
        // The size budget that keeps 16M-request weeks in memory.
        assert!(std::mem::size_of::<LogRecord>() <= 40);
    }
}
