//! Web server log handling for the `webpuzzle` suite.
//!
//! Mirrors the paper's data-extraction pipeline (Figure 1): log records
//! ([`LogRecord`]) are parsed from / formatted to Common Log Format
//! ([`clf`]), access and error logs are merged ([`merge_sorted`]), requests
//! are grouped into sessions by client with a 30-minute inactivity threshold
//! ([`sessionize`], [`Session`]), and a week of traffic becomes a
//! [`WeekDataset`] that can hand out the 42 four-hour intervals and the
//! Low/Med/High workload selections of §2.
//!
//! # Examples
//!
//! ```
//! use webpuzzle_weblog::{sessionize, LogRecord, Method};
//!
//! let records = vec![
//!     LogRecord::new(0.0, 1, Method::Get, 10, 200, 512),
//!     LogRecord::new(60.0, 1, Method::Get, 11, 200, 1024),
//!     LogRecord::new(10_000.0, 1, Method::Get, 12, 404, 0),
//! ];
//! // 30-minute threshold: the 10 000 s gap starts a new session.
//! let sessions = sessionize(&records, 1800.0).unwrap();
//! assert_eq!(sessions.len(), 2);
//! assert_eq!(sessions[0].request_count, 2);
//! ```

pub mod clf;
mod dataset;
mod error;
mod merge;
mod record;
mod session;

pub use clf::{MalformedBreakdown, MalformedKind};
pub use dataset::{Interval, WeekDataset, WorkloadLevel, SECONDS_PER_WEEK};
pub use error::WeblogError;
pub use merge::merge_sorted;
pub use record::{LogRecord, Method};
pub use session::{sessionize, Session, DEFAULT_SESSION_THRESHOLD};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WeblogError>;
