//! Week-long dataset handling: the 42 four-hour intervals and Low/Med/High
//! workload selection of the paper's §2.

use crate::record::LogRecord;
use crate::session::{sessionize, Session};
use crate::{Result, WeblogError};
use serde::{Deserialize, Serialize};

/// Seconds in the one-week observation window.
pub const SECONDS_PER_WEEK: f64 = 7.0 * 24.0 * 3600.0;

/// Seconds in one of the 42 analysis intervals (4 hours).
pub const SECONDS_PER_INTERVAL: f64 = 4.0 * 3600.0;

/// Workload-intensity label for a selected interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadLevel {
    /// The least busy 4-hour interval of the week.
    Low,
    /// The median-busy interval.
    Med,
    /// The busiest interval.
    High,
}

impl std::fmt::Display for WorkloadLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WorkloadLevel::Low => "Low",
            WorkloadLevel::Med => "Med",
            WorkloadLevel::High => "High",
        })
    }
}

/// One 4-hour analysis interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Index within the week (0..42).
    pub index: usize,
    /// Start time (seconds from week start).
    pub start: f64,
    /// End time (exclusive).
    pub end: f64,
    /// Requests falling in the interval.
    pub request_count: usize,
}

/// A week of traffic for one server: records, derived sessions, and the
/// interval machinery of §2.
///
/// # Examples
///
/// ```
/// use webpuzzle_weblog::{LogRecord, Method, WeekDataset};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let records: Vec<LogRecord> = (0..1000)
///     .map(|i| LogRecord::new(i as f64 * 600.0, i % 50, Method::Get, 0, 200, 1024))
///     .collect();
/// let ds = WeekDataset::from_records(records, 1800.0)?;
/// assert_eq!(ds.intervals().len(), 42);
/// let (low, _med, high) = ds.select_low_med_high();
/// assert!(low.request_count <= high.request_count);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WeekDataset {
    records: Vec<LogRecord>,
    sessions: Vec<Session>,
    threshold: f64,
    intervals: Vec<Interval>,
}

impl WeekDataset {
    /// Build a dataset from raw records (sorted internally) and a session
    /// threshold in seconds. Records outside `[0, SECONDS_PER_WEEK)` are
    /// rejected — the window is the analysis contract of the whole suite.
    ///
    /// # Errors
    ///
    /// Returns [`WeblogError::Empty`] for no records,
    /// [`WeblogError::InvalidParameter`] for records outside the week window
    /// or a bad threshold.
    pub fn from_records(mut records: Vec<LogRecord>, threshold: f64) -> Result<Self> {
        // Record intake (validation + sort) is the "parse" stage of the
        // pipeline when records arrive pre-structured from the generator;
        // CLF text ingestion reports under the same span in clf::parse_log.
        let parse_span = webpuzzle_obs::span!("weblog/parse");
        if records.is_empty() {
            return Err(WeblogError::Empty);
        }
        if records
            .iter()
            .any(|r| !(0.0..SECONDS_PER_WEEK).contains(&r.timestamp))
        {
            return Err(WeblogError::InvalidParameter {
                name: "records",
                constraint: "timestamps must lie in [0, one week)",
            });
        }
        records.sort_by(|a, b| {
            a.timestamp
                .partial_cmp(&b.timestamp)
                .expect("finite timestamps")
        });
        webpuzzle_obs::metrics::counter("weblog/records_ingested").add(records.len() as u64);
        drop(parse_span);
        let sessions = sessionize(&records, threshold)?;

        let n_intervals = (SECONDS_PER_WEEK / SECONDS_PER_INTERVAL) as usize;
        let mut counts = vec![0usize; n_intervals];
        for r in &records {
            let idx = ((r.timestamp / SECONDS_PER_INTERVAL) as usize).min(n_intervals - 1);
            counts[idx] += 1;
        }
        let intervals = counts
            .into_iter()
            .enumerate()
            .map(|(index, request_count)| Interval {
                index,
                start: index as f64 * SECONDS_PER_INTERVAL,
                end: (index + 1) as f64 * SECONDS_PER_INTERVAL,
                request_count,
            })
            .collect();

        Ok(WeekDataset {
            records,
            sessions,
            threshold,
            intervals,
        })
    }

    /// The time-sorted records.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// The derived sessions, sorted by start time.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// The session threshold used (seconds).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The 42 four-hour intervals with request counts.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Request timestamps (already sorted).
    pub fn request_times(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.timestamp).collect()
    }

    /// Session start timestamps (already sorted).
    pub fn session_start_times(&self) -> Vec<f64> {
        self.sessions.iter().map(|s| s.start).collect()
    }

    /// Total bytes transferred over the week.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Pick the typical Low / Med / High intervals by total request count
    /// (minimum, median, maximum of the 42 intervals), the paper's §2
    /// selection criterion.
    pub fn select_low_med_high(&self) -> (Interval, Interval, Interval) {
        let mut by_count: Vec<Interval> = self.intervals.clone();
        by_count.sort_by_key(|iv| iv.request_count);
        (
            by_count[0],
            by_count[by_count.len() / 2],
            by_count[by_count.len() - 1],
        )
    }

    /// Request timestamps within an interval.
    pub fn request_times_in(&self, interval: &Interval) -> Vec<f64> {
        let lo = self
            .records
            .partition_point(|r| r.timestamp < interval.start);
        let hi = self.records.partition_point(|r| r.timestamp < interval.end);
        self.records[lo..hi].iter().map(|r| r.timestamp).collect()
    }

    /// Session start timestamps within an interval (sessions *initiated*
    /// there, the paper's inter-session convention).
    pub fn session_starts_in(&self, interval: &Interval) -> Vec<f64> {
        self.sessions
            .iter()
            .filter(|s| s.start >= interval.start && s.start < interval.end)
            .map(|s| s.start)
            .collect()
    }

    /// Sessions initiated within an interval.
    pub fn sessions_in(&self, interval: &Interval) -> Vec<Session> {
        self.sessions
            .iter()
            .filter(|s| s.start >= interval.start && s.start < interval.end)
            .copied()
            .collect()
    }

    /// Table 1 style summary: `(requests, sessions, megabytes)`.
    pub fn summary(&self) -> (usize, usize, f64) {
        (
            self.records.len(),
            self.sessions.len(),
            self.total_bytes() as f64 / (1024.0 * 1024.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Method;

    fn rec(t: f64, client: u32) -> LogRecord {
        LogRecord::new(t, client, Method::Get, 0, 200, 1000)
    }

    fn sample_dataset() -> WeekDataset {
        // Heavier traffic in intervals 10..20.
        let mut records = Vec::new();
        let mut id = 0u32;
        for iv in 0..42 {
            let per = if (10..20).contains(&iv) { 200 } else { 50 };
            for i in 0..per {
                id += 1;
                records.push(rec(
                    iv as f64 * SECONDS_PER_INTERVAL + i as f64 * 30.0,
                    id % 97,
                ));
            }
        }
        WeekDataset::from_records(records, 1800.0).unwrap()
    }

    #[test]
    fn intervals_cover_week() {
        let ds = sample_dataset();
        assert_eq!(ds.intervals().len(), 42);
        assert_eq!(ds.intervals()[41].end, SECONDS_PER_WEEK);
        let total: usize = ds.intervals().iter().map(|iv| iv.request_count).sum();
        assert_eq!(total, ds.records().len());
    }

    #[test]
    fn low_med_high_ordering() {
        let ds = sample_dataset();
        let (low, med, high) = ds.select_low_med_high();
        assert!(low.request_count <= med.request_count);
        assert!(med.request_count <= high.request_count);
        assert_eq!(low.request_count, 50);
        assert_eq!(high.request_count, 200);
    }

    #[test]
    fn interval_extraction_consistent() {
        let ds = sample_dataset();
        let (_, _, high) = ds.select_low_med_high();
        let times = ds.request_times_in(&high);
        assert_eq!(times.len(), high.request_count);
        assert!(times.iter().all(|&t| t >= high.start && t < high.end));
    }

    #[test]
    fn session_starts_partition() {
        let ds = sample_dataset();
        let total: usize = ds
            .intervals()
            .iter()
            .map(|iv| ds.session_starts_in(iv).len())
            .sum();
        assert_eq!(total, ds.sessions().len());
    }

    #[test]
    fn summary_units() {
        let ds = sample_dataset();
        let (req, sess, mb) = ds.summary();
        assert_eq!(req, ds.records().len());
        assert_eq!(sess, ds.sessions().len());
        assert!((mb - req as f64 * 1000.0 / 1048576.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_out_of_window() {
        let bad = vec![rec(-1.0, 1)];
        assert!(WeekDataset::from_records(bad, 1800.0).is_err());
        let bad = vec![rec(SECONDS_PER_WEEK, 1)];
        assert!(WeekDataset::from_records(bad, 1800.0).is_err());
        assert!(WeekDataset::from_records(vec![], 1800.0).is_err());
    }

    #[test]
    fn records_sorted_after_construction() {
        let records = vec![rec(500.0, 1), rec(10.0, 2), rec(300.0, 3)];
        let ds = WeekDataset::from_records(records, 1800.0).unwrap();
        let times = ds.request_times();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn workload_level_display() {
        assert_eq!(WorkloadLevel::Low.to_string(), "Low");
        assert_eq!(WorkloadLevel::High.to_string(), "High");
    }
}
