//! Sessionization: grouping requests into user sessions.
//!
//! The paper's definition (§2): a session is a sequence of requests from the
//! same IP address with inter-request gaps below a threshold; a gap at or
//! above the threshold starts a new session. The threshold adopted by the
//! paper (after the sensitivity study in [12]) is 30 minutes.

use crate::record::LogRecord;
use crate::{Result, WeblogError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The paper's session inactivity threshold: 30 minutes, in seconds.
pub const DEFAULT_SESSION_THRESHOLD: f64 = 1800.0;

/// One user session and its intra-session characteristics — exactly the
/// three quantities analyzed in §5.2 plus bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// Client (IP) identifier the session belongs to.
    pub client: u32,
    /// Timestamp of the first request.
    pub start: f64,
    /// Timestamp of the last request.
    pub end: f64,
    /// Number of requests in the session (§5.2.2).
    pub request_count: usize,
    /// Total bytes transferred, completed and partial (§5.2.3).
    pub bytes: u64,
}

impl Session {
    /// Session length in time units (§5.2.1). Zero for single-request
    /// sessions.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Group records into sessions using the given inactivity `threshold`
/// (seconds). Records need not be sorted; each client's stream is sorted
/// internally. Sessions are returned sorted by start time.
///
/// # Errors
///
/// Returns [`WeblogError::InvalidParameter`] for a non-positive threshold
/// and [`WeblogError::Empty`] for no records.
///
/// # Examples
///
/// ```
/// use webpuzzle_weblog::{sessionize, LogRecord, Method, DEFAULT_SESSION_THRESHOLD};
///
/// let recs = vec![
///     LogRecord::new(0.0, 1, Method::Get, 1, 200, 100),
///     LogRecord::new(100.0, 1, Method::Get, 2, 200, 200),
///     LogRecord::new(50.0, 2, Method::Get, 1, 200, 300),
/// ];
/// let sessions = sessionize(&recs, DEFAULT_SESSION_THRESHOLD).unwrap();
/// assert_eq!(sessions.len(), 2);
/// assert_eq!(sessions[0].client, 1);
/// assert_eq!(sessions[0].bytes, 300);
/// ```
pub fn sessionize(records: &[LogRecord], threshold: f64) -> Result<Vec<Session>> {
    let _span = webpuzzle_obs::span!("weblog/sessionize");
    if !threshold.is_finite() || threshold <= 0.0 {
        return Err(WeblogError::InvalidParameter {
            name: "threshold",
            constraint: "must be finite and > 0",
        });
    }
    if records.is_empty() {
        return Err(WeblogError::Empty);
    }

    // Bucket timestamps/bytes per client.
    let mut per_client: HashMap<u32, Vec<(f64, u64)>> = HashMap::new();
    for r in records {
        per_client
            .entry(r.client)
            .or_default()
            .push((r.timestamp, r.bytes));
    }

    let mut sessions = Vec::new();
    for (client, mut events) in per_client {
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite timestamps"));
        let mut current = Session {
            client,
            start: events[0].0,
            end: events[0].0,
            request_count: 1,
            bytes: events[0].1,
        };
        for &(t, b) in &events[1..] {
            if t - current.end < threshold {
                current.end = t;
                current.request_count += 1;
                current.bytes += b;
            } else {
                sessions.push(current);
                current = Session {
                    client,
                    start: t,
                    end: t,
                    request_count: 1,
                    bytes: b,
                };
            }
        }
        sessions.push(current);
    }
    sessions.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite starts"));
    webpuzzle_obs::metrics::sharded_counter("weblog/sessions_built").add(sessions.len() as u64);
    Ok(sessions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Method;

    fn rec(t: f64, client: u32, bytes: u64) -> LogRecord {
        LogRecord::new(t, client, Method::Get, 0, 200, bytes)
    }

    #[test]
    fn gap_below_threshold_stays_one_session() {
        let recs = vec![rec(0.0, 1, 1), rec(1799.0, 1, 1), rec(3598.0, 1, 1)];
        let s = sessionize(&recs, 1800.0).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].request_count, 3);
        assert_eq!(s[0].duration(), 3598.0);
    }

    #[test]
    fn gap_at_threshold_splits() {
        // "time between requests less than some threshold" — an exact
        // 1800 s gap starts a new session.
        let recs = vec![rec(0.0, 1, 1), rec(1800.0, 1, 1)];
        let s = sessionize(&recs, 1800.0).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn clients_never_mix() {
        let recs = vec![rec(0.0, 1, 1), rec(1.0, 2, 1), rec(2.0, 1, 1)];
        let s = sessionize(&recs, 1800.0).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.iter().any(|x| x.client == 1 && x.request_count == 2));
        assert!(s.iter().any(|x| x.client == 2 && x.request_count == 1));
    }

    #[test]
    fn bytes_accumulate() {
        let recs = vec![rec(0.0, 1, 100), rec(10.0, 1, 250)];
        let s = sessionize(&recs, 1800.0).unwrap();
        assert_eq!(s[0].bytes, 350);
    }

    #[test]
    fn unsorted_input_handled() {
        let recs = vec![rec(5000.0, 1, 1), rec(0.0, 1, 1), rec(10.0, 1, 1)];
        let s = sessionize(&recs, 1800.0).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].request_count, 2);
        assert_eq!(s[0].start, 0.0);
    }

    #[test]
    fn sessions_sorted_by_start() {
        let recs = vec![rec(100.0, 2, 1), rec(0.0, 1, 1), rec(50.0, 3, 1)];
        let s = sessionize(&recs, 1800.0).unwrap();
        let starts: Vec<f64> = s.iter().map(|x| x.start).collect();
        assert_eq!(starts, vec![0.0, 50.0, 100.0]);
    }

    #[test]
    fn request_counts_partition_records() {
        // Every record lands in exactly one session.
        let recs: Vec<LogRecord> = (0..500)
            .map(|i| rec(i as f64 * 700.0, (i % 7) as u32, 1))
            .collect();
        let s = sessionize(&recs, 1800.0).unwrap();
        let total: usize = s.iter().map(|x| x.request_count).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn single_request_session_has_zero_duration() {
        let s = sessionize(&[rec(42.0, 9, 7)], 1800.0).unwrap();
        assert_eq!(s[0].duration(), 0.0);
        assert_eq!(s[0].request_count, 1);
    }

    #[test]
    fn threshold_sensitivity() {
        // Smaller threshold → at least as many sessions (the [12] study).
        let recs: Vec<LogRecord> = (0..100).map(|i| rec(i as f64 * 60.0, 1, 1)).collect();
        let coarse = sessionize(&recs, 1800.0).unwrap().len();
        let fine = sessionize(&recs, 30.0).unwrap().len();
        assert!(fine >= coarse);
        assert_eq!(coarse, 1);
        assert_eq!(fine, 100);
    }

    #[test]
    fn validation() {
        assert!(sessionize(&[], 1800.0).is_err());
        assert!(sessionize(&[rec(0.0, 1, 1)], 0.0).is_err());
        assert!(sessionize(&[rec(0.0, 1, 1)], f64::NAN).is_err());
    }
}
