//! Merging of time-sorted log streams (the paper's access + error log merge
//! for servers with redundant front-ends, Figure 1).

use crate::record::LogRecord;
use crate::{Result, WeblogError};

/// Merge any number of individually time-sorted record streams into one
/// sorted stream (k-way merge, stable across streams in input order).
///
/// # Errors
///
/// Returns [`WeblogError::Unsorted`] if any input stream is not sorted by
/// timestamp (the index reported is within the offending stream).
///
/// # Examples
///
/// ```
/// use webpuzzle_weblog::{merge_sorted, LogRecord, Method};
///
/// let access = vec![
///     LogRecord::new(1.0, 1, Method::Get, 1, 200, 10),
///     LogRecord::new(5.0, 1, Method::Get, 2, 200, 10),
/// ];
/// let errors = vec![LogRecord::new(3.0, 2, Method::Get, 9, 404, 0)];
/// let merged = merge_sorted(&[&access, &errors]).unwrap();
/// let times: Vec<f64> = merged.iter().map(|r| r.timestamp).collect();
/// assert_eq!(times, vec![1.0, 3.0, 5.0]);
/// ```
pub fn merge_sorted(streams: &[&[LogRecord]]) -> Result<Vec<LogRecord>> {
    for stream in streams {
        if let Some(at) = first_unsorted(stream) {
            return Err(WeblogError::Unsorted { at });
        }
    }
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; streams.len()];
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (i, (stream, &cur)) in streams.iter().zip(&cursors).enumerate() {
            if cur < stream.len() {
                let t = stream[cur].timestamp;
                if best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    best = Some((i, t));
                }
            }
        }
        match best {
            Some((i, _)) => {
                out.push(streams[i][cursors[i]]);
                cursors[i] += 1;
            }
            None => break,
        }
    }
    Ok(out)
}

fn first_unsorted(records: &[LogRecord]) -> Option<usize> {
    records
        .windows(2)
        .position(|w| w[1].timestamp < w[0].timestamp)
        .map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Method;

    fn rec(t: f64, client: u32) -> LogRecord {
        LogRecord::new(t, client, Method::Get, 0, 200, 0)
    }

    #[test]
    fn merge_three_streams() {
        let a = vec![rec(1.0, 1), rec(4.0, 1), rec(7.0, 1)];
        let b = vec![rec(2.0, 2), rec(5.0, 2)];
        let c = vec![rec(3.0, 3), rec(6.0, 3)];
        let merged = merge_sorted(&[&a, &b, &c]).unwrap();
        let times: Vec<f64> = merged.iter().map(|r| r.timestamp).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn ties_stable_by_stream_order() {
        let a = vec![rec(1.0, 1)];
        let b = vec![rec(1.0, 2)];
        let merged = merge_sorted(&[&a, &b]).unwrap();
        assert_eq!(merged[0].client, 1);
        assert_eq!(merged[1].client, 2);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_sorted(&[]).unwrap().is_empty());
        let a: Vec<LogRecord> = vec![];
        let b = vec![rec(1.0, 1)];
        assert_eq!(merge_sorted(&[&a, &b]).unwrap().len(), 1);
    }

    #[test]
    fn unsorted_detected() {
        let a = vec![rec(2.0, 1), rec(1.0, 1)];
        assert_eq!(
            merge_sorted(&[&a]).unwrap_err(),
            WeblogError::Unsorted { at: 1 }
        );
    }

    #[test]
    fn merge_preserves_count() {
        let a: Vec<LogRecord> = (0..100).map(|i| rec(i as f64 * 2.0, 1)).collect();
        let b: Vec<LogRecord> = (0..77).map(|i| rec(i as f64 * 3.0, 2)).collect();
        assert_eq!(merge_sorted(&[&a, &b]).unwrap().len(), 177);
    }
}
