//! Merging of time-sorted log streams (the paper's access + error log merge
//! for servers with redundant front-ends, Figure 1).
//!
//! The core is a k-way heap merge: O(total · log k) comparisons with one
//! k-entry heap as the only scratch allocation. The same discipline — pop
//! the globally smallest timestamp, break ties by stream input order —
//! generalizes to the live watermark merge in `webpuzzle-ingest`, which
//! replaces the finished slices here with still-growing network buffers.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::record::LogRecord;
use crate::{Result, WeblogError};

/// One cursor into a stream, ordered for a *min*-heap on
/// `(timestamp, stream index)`: `BinaryHeap` is a max-heap, so the
/// comparison is reversed. Ties on timestamp resolve to the lower stream
/// index, which keeps the merge stable across streams in input order.
struct Cursor {
    t: f64,
    stream: usize,
    pos: usize,
}

impl PartialEq for Cursor {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Cursor {}

impl PartialOrd for Cursor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cursor {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.stream.cmp(&self.stream))
    }
}

/// Merge any number of individually time-sorted record streams into one
/// sorted stream (heap-based k-way merge, O(total · log k), stable across
/// streams in input order).
///
/// # Errors
///
/// Returns [`WeblogError::Unsorted`] if any input stream is not sorted by
/// timestamp (the index reported is within the offending stream).
///
/// # Examples
///
/// ```
/// use webpuzzle_weblog::{merge_sorted, LogRecord, Method};
///
/// let access = vec![
///     LogRecord::new(1.0, 1, Method::Get, 1, 200, 10),
///     LogRecord::new(5.0, 1, Method::Get, 2, 200, 10),
/// ];
/// let errors = vec![LogRecord::new(3.0, 2, Method::Get, 9, 404, 0)];
/// let merged = merge_sorted(&[&access, &errors]).unwrap();
/// let times: Vec<f64> = merged.iter().map(|r| r.timestamp).collect();
/// assert_eq!(times, vec![1.0, 3.0, 5.0]);
/// ```
pub fn merge_sorted(streams: &[&[LogRecord]]) -> Result<Vec<LogRecord>> {
    for stream in streams {
        if let Some(at) = first_unsorted(stream) {
            return Err(WeblogError::Unsorted { at });
        }
    }
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    // The common access + error merge is two streams; a two-pointer
    // merge beats the heap's pop/push per record by ~3× there, with
    // identical ordering semantics (ties to the lower stream index).
    match streams {
        [] => return Ok(out),
        [only] => {
            out.extend_from_slice(only);
            return Ok(out);
        }
        [a, b] => {
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                if a[i].timestamp <= b[j].timestamp {
                    out.push(a[i]);
                    i += 1;
                } else {
                    out.push(b[j]);
                    j += 1;
                }
            }
            out.extend_from_slice(&a[i..]);
            out.extend_from_slice(&b[j..]);
            return Ok(out);
        }
        _ => {}
    }
    let mut heap: BinaryHeap<Cursor> = BinaryHeap::with_capacity(streams.len());
    for (stream, records) in streams.iter().enumerate() {
        if let Some(first) = records.first() {
            heap.push(Cursor {
                t: first.timestamp,
                stream,
                pos: 0,
            });
        }
    }
    while let Some(Cursor { stream, pos, .. }) = heap.pop() {
        out.push(streams[stream][pos]);
        let next = pos + 1;
        if let Some(record) = streams[stream].get(next) {
            heap.push(Cursor {
                t: record.timestamp,
                stream,
                pos: next,
            });
        }
    }
    Ok(out)
}

fn first_unsorted(records: &[LogRecord]) -> Option<usize> {
    records
        .windows(2)
        .position(|w| w[1].timestamp < w[0].timestamp)
        .map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Method;

    fn rec(t: f64, client: u32) -> LogRecord {
        LogRecord::new(t, client, Method::Get, 0, 200, 0)
    }

    #[test]
    fn merge_three_streams() {
        let a = vec![rec(1.0, 1), rec(4.0, 1), rec(7.0, 1)];
        let b = vec![rec(2.0, 2), rec(5.0, 2)];
        let c = vec![rec(3.0, 3), rec(6.0, 3)];
        let merged = merge_sorted(&[&a, &b, &c]).unwrap();
        let times: Vec<f64> = merged.iter().map(|r| r.timestamp).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn ties_stable_by_stream_order() {
        let a = vec![rec(1.0, 1)];
        let b = vec![rec(1.0, 2)];
        let merged = merge_sorted(&[&a, &b]).unwrap();
        assert_eq!(merged[0].client, 1);
        assert_eq!(merged[1].client, 2);
    }

    #[test]
    fn tie_runs_stay_grouped_by_stream() {
        let a = vec![rec(1.0, 1), rec(2.0, 1), rec(2.0, 1)];
        let b = vec![rec(2.0, 2), rec(2.0, 2), rec(3.0, 2)];
        let merged = merge_sorted(&[&a, &b]).unwrap();
        let clients: Vec<u32> = merged.iter().map(|r| r.client).collect();
        assert_eq!(clients, vec![1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_sorted(&[]).unwrap().is_empty());
        let a: Vec<LogRecord> = vec![];
        let b = vec![rec(1.0, 1)];
        assert_eq!(merge_sorted(&[&a, &b]).unwrap().len(), 1);
    }

    #[test]
    fn unsorted_detected() {
        let a = vec![rec(2.0, 1), rec(1.0, 1)];
        assert_eq!(
            merge_sorted(&[&a]).unwrap_err(),
            WeblogError::Unsorted { at: 1 }
        );
    }

    #[test]
    fn merge_preserves_count() {
        let a: Vec<LogRecord> = (0..100).map(|i| rec(i as f64 * 2.0, 1)).collect();
        let b: Vec<LogRecord> = (0..77).map(|i| rec(i as f64 * 3.0, 2)).collect();
        assert_eq!(merge_sorted(&[&a, &b]).unwrap().len(), 177);
    }

    #[test]
    fn many_streams() {
        let streams: Vec<Vec<LogRecord>> = (0..32)
            .map(|s| {
                (0..50)
                    .map(|i| rec((i * 32 + s) as f64, s as u32))
                    .collect()
            })
            .collect();
        let refs: Vec<&[LogRecord]> = streams.iter().map(|s| s.as_slice()).collect();
        let merged = merge_sorted(&refs).unwrap();
        assert_eq!(merged.len(), 32 * 50);
        assert!(merged.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }
}
