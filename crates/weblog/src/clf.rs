//! Common Log Format (CLF) reading and writing.
//!
//! Lines look like:
//!
//! ```text
//! 10.0.3.17 - - [12/Jan/2004:00:00:07 +0000] "GET /r/42 HTTP/1.0" 200 2326
//! ```
//!
//! Record timestamps in this suite are *relative* seconds from the start of
//! the observation window, so both directions take a `base_epoch` (Unix
//! seconds, UTC) anchoring the window — e.g. the paper's WVU log starts
//! 12-Jan-04.

use crate::record::{LogRecord, Method};
use crate::{Result, WeblogError};
use std::fmt::Write as _;

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Format one record as a CLF line anchored at `base_epoch` (Unix seconds).
///
/// The client id renders as a synthetic IPv4 address and the resource id as
/// `/r/<id>`; sub-second timestamp precision is truncated, exactly like real
/// 1-second-granularity server logs (the property that forces the paper's
/// tie-spreading step in §4.2).
///
/// # Examples
///
/// ```
/// use webpuzzle_weblog::clf::format_line;
/// use webpuzzle_weblog::{LogRecord, Method};
///
/// let rec = LogRecord::new(7.9, 0x0A000311, Method::Get, 42, 200, 2326);
/// let line = format_line(&rec, 1_073_865_600); // 12-Jan-2004 00:00 UTC
/// assert_eq!(
///     line,
///     "10.0.3.17 - - [12/Jan/2004:00:00:07 +0000] \"GET /r/42 HTTP/1.0\" 200 2326"
/// );
/// ```
pub fn format_line(record: &LogRecord, base_epoch: i64) -> String {
    let [a, b, c, d] = record.client.to_be_bytes();
    let epoch = base_epoch + record.timestamp.floor() as i64;
    let (date, time) = split_epoch(epoch);
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{a}.{b}.{c}.{d} - - [{:02}/{}/{}:{:02}:{:02}:{:02} +0000] \"{} /r/{} HTTP/1.0\" {} {}",
        date.2,
        MONTHS[date.1 as usize - 1],
        date.0,
        time.0,
        time.1,
        time.2,
        record.method,
        record.resource,
        record.status,
        record.bytes,
    );
    line
}

/// Parse one CLF line into a record with timestamp relative to `base_epoch`.
///
/// Accepts `-` for the byte count (written by servers for bodyless
/// responses) and maps it to 0.
///
/// # Errors
///
/// Returns [`WeblogError::ParseLine`] describing the first malformed field.
///
/// # Examples
///
/// ```
/// use webpuzzle_weblog::clf::{format_line, parse_line};
/// use webpuzzle_weblog::{LogRecord, Method};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rec = LogRecord::new(61.0, 7, Method::Post, 3, 404, 0);
/// let line = format_line(&rec, 1_000_000_000);
/// let back = parse_line(&line, 1_000_000_000)?;
/// assert_eq!(back, rec);
/// # Ok(())
/// # }
/// ```
pub fn parse_line(line: &str, base_epoch: i64) -> Result<LogRecord> {
    let bad = |reason: &str| WeblogError::ParseLine {
        line: 0,
        reason: reason.to_string(),
    };

    // host ident user [date tz] "request" status bytes
    let (host, rest) = line.split_once(' ').ok_or_else(|| bad("missing host"))?;
    let client = parse_ipv4(host).ok_or_else(|| bad("bad host address"))?;

    let open = rest.find('[').ok_or_else(|| bad("missing [date]"))?;
    let close = rest[open..]
        .find(']')
        .map(|i| i + open)
        .ok_or_else(|| bad("unterminated [date]"))?;
    let epoch = parse_clf_date(&rest[open + 1..close]).ok_or_else(|| bad("bad date"))?;

    let after_date = &rest[close + 1..];
    let q1 = after_date.find('"').ok_or_else(|| bad("missing request"))?;
    let q2 = after_date[q1 + 1..]
        .find('"')
        .map(|i| i + q1 + 1)
        .ok_or_else(|| bad("unterminated request"))?;
    let request = &after_date[q1 + 1..q2];
    let mut req_parts = request.split_whitespace();
    let method = Method::parse(req_parts.next().ok_or_else(|| bad("empty request"))?);
    let uri = req_parts.next().ok_or_else(|| bad("request missing URI"))?;
    let resource = uri
        .rsplit('/')
        .next()
        .and_then(|tail| tail.parse::<u32>().ok())
        .unwrap_or_else(|| fnv1a(uri));

    let mut tail = after_date[q2 + 1..].split_whitespace();
    let status: u16 = tail
        .next()
        .ok_or_else(|| bad("missing status"))?
        .parse()
        .map_err(|_| bad("bad status"))?;
    let bytes_tok = tail.next().ok_or_else(|| bad("missing bytes"))?;
    let bytes: u64 = if bytes_tok == "-" {
        0
    } else {
        bytes_tok.parse().map_err(|_| bad("bad byte count"))?
    };

    Ok(LogRecord {
        timestamp: (epoch - base_epoch) as f64,
        client,
        method,
        resource,
        status,
        bytes,
    })
}

/// Metrics-registry name of the counter tracking malformed lines skipped
/// by lenient parsing (here and in the streaming reader).
pub const MALFORMED_SKIPPED_COUNTER: &str = "weblog/malformed_lines_skipped";

/// Why a line failed to parse — the poison-record taxonomy lenient
/// consumers report. Derived from the parse-error reason, so strict and
/// lenient paths classify identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MalformedKind {
    /// The `[date]` body was present but unparseable.
    BadTimestamp,
    /// The status field was present but not a number in 100..=999.
    BadStatus,
    /// The line ended before a required field (truncated write): a
    /// missing, unterminated, or empty field.
    Truncated,
    /// Any other malformation (bad host address, bad byte count, …).
    Other,
}

impl MalformedKind {
    /// All kinds, in reporting order.
    pub const ALL: [MalformedKind; 4] = [
        MalformedKind::BadTimestamp,
        MalformedKind::BadStatus,
        MalformedKind::Truncated,
        MalformedKind::Other,
    ];

    /// Stable lower-case token for reports and counter names.
    pub fn as_str(self) -> &'static str {
        match self {
            MalformedKind::BadTimestamp => "bad_timestamp",
            MalformedKind::BadStatus => "bad_status",
            MalformedKind::Truncated => "truncated",
            MalformedKind::Other => "other",
        }
    }

    /// Classify a [`WeblogError::ParseLine`] reason string.
    pub fn classify(reason: &str) -> MalformedKind {
        match reason {
            "bad date" => MalformedKind::BadTimestamp,
            "bad status" => MalformedKind::BadStatus,
            "empty request" | "request missing URI" => MalformedKind::Truncated,
            r if r.starts_with("missing") || r.starts_with("unterminated") => {
                MalformedKind::Truncated
            }
            _ => MalformedKind::Other,
        }
    }
}

/// Per-cause tally of skipped malformed lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MalformedBreakdown {
    /// Lines with an unparseable `[date]` body.
    pub bad_timestamp: u64,
    /// Lines with a non-numeric / out-of-range status.
    pub bad_status: u64,
    /// Lines truncated before a required field.
    pub truncated: u64,
    /// Everything else.
    pub other: u64,
}

impl MalformedBreakdown {
    /// Count one skipped line of the given kind.
    pub fn record(&mut self, kind: MalformedKind) {
        match kind {
            MalformedKind::BadTimestamp => self.bad_timestamp += 1,
            MalformedKind::BadStatus => self.bad_status += 1,
            MalformedKind::Truncated => self.truncated += 1,
            MalformedKind::Other => self.other += 1,
        }
    }

    /// Tally for one kind.
    pub fn count(&self, kind: MalformedKind) -> u64 {
        match kind {
            MalformedKind::BadTimestamp => self.bad_timestamp,
            MalformedKind::BadStatus => self.bad_status,
            MalformedKind::Truncated => self.truncated,
            MalformedKind::Other => self.other,
        }
    }

    /// Sum over all kinds — the historical `skipped` count.
    pub fn total(&self) -> u64 {
        self.bad_timestamp + self.bad_status + self.truncated + self.other
    }

    /// Fold another breakdown into this one.
    pub fn merge(&mut self, other: &MalformedBreakdown) {
        self.bad_timestamp += other.bad_timestamp;
        self.bad_status += other.bad_status;
        self.truncated += other.truncated;
        self.other += other.other;
    }
}

/// A leniently parsed CLF stream: the good records plus the count of
/// garbage lines that were skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct LenientParse {
    /// Successfully parsed records, in input order.
    pub records: Vec<LogRecord>,
    /// Number of malformed (non-blank, unparseable) lines skipped —
    /// always `malformed.total()`, kept for existing consumers.
    pub skipped: u64,
    /// The skipped lines broken down by cause.
    pub malformed: MalformedBreakdown,
}

/// Parse a whole CLF stream; line numbers are reported in errors.
///
/// # Errors
///
/// Returns [`WeblogError::ParseLine`] with the 1-based line number of the
/// first malformed line. Blank lines are skipped.
pub fn parse_log(text: &str, base_epoch: i64) -> Result<Vec<LogRecord>> {
    let _span = webpuzzle_obs::span!("weblog/parse");
    let parsed = webpuzzle_obs::metrics::sharded_counter("weblog/records_parsed");
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line, base_epoch) {
            Ok(r) => out.push(r),
            Err(WeblogError::ParseLine { reason, .. }) => {
                return Err(WeblogError::ParseLine {
                    line: i + 1,
                    reason,
                })
            }
            Err(e) => return Err(e),
        }
    }
    parsed.add(out.len() as u64);
    Ok(out)
}

/// Parse a whole CLF stream, skipping (and counting) malformed lines
/// instead of aborting — week-long real-world logs always contain a few
/// garbage lines (truncated writes, embedded control bytes, scanner
/// noise), and losing the whole week to one of them is the wrong trade.
///
/// Skips are surfaced on the [`MALFORMED_SKIPPED_COUNTER`] metrics
/// counter as well as in the returned [`LenientParse::skipped`] tally.
/// Blank lines are ignored and not counted as malformed.
///
/// # Examples
///
/// ```
/// use webpuzzle_weblog::clf::parse_log_lenient;
///
/// let text = "10.0.0.1 - - [12/Jan/2004:00:00:07 +0000] \"GET /r/1 HTTP/1.0\" 200 10\n\
///             total garbage line\n";
/// let parsed = parse_log_lenient(text, 1_073_865_600);
/// assert_eq!(parsed.records.len(), 1);
/// assert_eq!(parsed.skipped, 1);
/// ```
pub fn parse_log_lenient(text: &str, base_epoch: i64) -> LenientParse {
    let _span = webpuzzle_obs::span!("weblog/parse");
    let parsed = webpuzzle_obs::metrics::sharded_counter("weblog/records_parsed");
    let skip_counter = webpuzzle_obs::metrics::counter(MALFORMED_SKIPPED_COUNTER);
    let mut records = Vec::new();
    let mut malformed = MalformedBreakdown::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line, base_epoch) {
            Ok(r) => records.push(r),
            Err(WeblogError::ParseLine { reason, .. }) => {
                malformed.record(MalformedKind::classify(&reason))
            }
            Err(_) => malformed.record(MalformedKind::Other),
        }
    }
    parsed.add(records.len() as u64);
    skip_counter.add(malformed.total());
    LenientParse {
        records,
        skipped: malformed.total(),
        malformed,
    }
}

fn parse_ipv4(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut bytes = [0u8; 4];
    for b in &mut bytes {
        *b = parts.next()?.parse().ok()?;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(u32::from_be_bytes(bytes))
}

// [dd/Mon/yyyy:HH:MM:SS +ZZZZ] body (without brackets) → Unix seconds.
fn parse_clf_date(s: &str) -> Option<i64> {
    let (datetime, tz) = match s.split_once(' ') {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let mut it = datetime.splitn(3, '/');
    let day: i64 = it.next()?.parse().ok()?;
    let mon_name = it.next()?;
    let month = MONTHS.iter().position(|m| *m == mon_name)? as i64 + 1;
    let mut rest = it.next()?.splitn(4, ':');
    let year: i64 = rest.next()?.parse().ok()?;
    let hh: i64 = rest.next()?.parse().ok()?;
    let mm: i64 = rest.next()?.parse().ok()?;
    let ss: i64 = rest.next()?.parse().ok()?;
    if !(1..=31).contains(&day) || hh > 23 || mm > 59 || ss > 60 {
        return None;
    }
    let days = days_from_civil(year, month, day);
    let mut epoch = days * 86_400 + hh * 3_600 + mm * 60 + ss;
    if let Some(tz) = tz {
        // ±HHMM offset: logged local time minus offset = UTC.
        let sign = match tz.as_bytes().first()? {
            b'+' => 1,
            b'-' => -1,
            _ => return None,
        };
        let hhmm: i64 = tz[1..].parse().ok()?;
        let offset = (hhmm / 100) * 3_600 + (hhmm % 100) * 60;
        epoch -= sign * offset;
    }
    Some(epoch)
}

// Days since 1970-01-01 (Howard Hinnant's days_from_civil).
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

// Inverse of days_from_civil.
fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m, d)
}

// Epoch seconds → ((year, month, day), (hh, mm, ss)) in UTC.
fn split_epoch(epoch: i64) -> ((i64, i64, i64), (i64, i64, i64)) {
    let days = epoch.div_euclid(86_400);
    let secs = epoch.rem_euclid(86_400);
    (
        civil_from_days(days),
        (secs / 3_600, (secs / 60) % 60, secs % 60),
    )
}

// FNV-1a hash for non-numeric URIs so foreign logs can still be interned.
fn fnv1a(s: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in s.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: i64 = 1_073_865_600; // 2004-01-12 00:00:00 UTC

    #[test]
    fn civil_roundtrip() {
        for &z in &[-719_468i64, -1, 0, 1, 10_957, 12_418, 20_000, 100_000] {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z, "z = {z} → {y}-{m}-{d}");
        }
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        // 2004-01-12 is 12 431 days after the epoch.
        assert_eq!(days_from_civil(2004, 1, 12) * 86_400, BASE);
    }

    #[test]
    fn format_known_line() {
        let rec = LogRecord::new(7.0, 0x0A00_0311, Method::Get, 42, 200, 2326);
        assert_eq!(
            format_line(&rec, BASE),
            "10.0.3.17 - - [12/Jan/2004:00:00:07 +0000] \"GET /r/42 HTTP/1.0\" 200 2326"
        );
    }

    #[test]
    fn roundtrip_many() {
        for (i, &(ts, client, status, bytes)) in [
            (0.0, 1u32, 200u16, 0u64),
            (86_399.0, u32::MAX, 404, 123_456_789),
            (604_799.0, 0, 500, 1),
            (3_601.5, 77, 304, 0),
        ]
        .iter()
        .enumerate()
        {
            let rec = LogRecord::new(ts, client, Method::Head, i as u32, status, bytes);
            let line = format_line(&rec, BASE);
            let back = parse_line(&line, BASE).unwrap();
            assert_eq!(back.timestamp, ts.floor(), "line {line}");
            assert_eq!(back.client, client);
            assert_eq!(back.status, status);
            assert_eq!(back.bytes, bytes);
            assert_eq!(back.method, Method::Head);
            assert_eq!(back.resource, i as u32);
        }
    }

    #[test]
    fn parses_real_world_shapes() {
        // A ClarkNet-era line with "-" bytes and a textual URI.
        let line = r#"199.72.81.55 - - [28/Aug/1995:00:00:01 -0400] "GET /images/ksclogo.gif HTTP/1.0" 304 -"#;
        let rec = parse_line(line, 0).unwrap();
        assert_eq!(rec.status, 304);
        assert_eq!(rec.bytes, 0);
        assert_eq!(rec.method, Method::Get);
        // -0400 means UTC is 4h ahead of the logged local time.
        assert_eq!(
            rec.timestamp as i64,
            days_from_civil(1995, 8, 28) * 86_400 + 1 + 4 * 3_600
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_line("not a log line", 0).is_err());
        assert!(parse_line("1.2.3.4 - - [bad] \"GET / HTTP/1.0\" 200 1", 0).is_err());
        assert!(parse_line(
            "1.2.3.4 - - [12/Jan/2004:00:00:07 +0000] \"GET / HTTP/1.0\" xx 1",
            0
        )
        .is_err());
        assert!(parse_line(
            "300.2.3.4 - - [12/Jan/2004:00:00:07 +0000] \"GET / HTTP/1.0\" 200 1",
            0
        )
        .is_err());
    }

    #[test]
    fn parse_log_reports_line_numbers() {
        let text =
            "10.0.0.1 - - [12/Jan/2004:00:00:07 +0000] \"GET /r/1 HTTP/1.0\" 200 10\n\ngarbage\n";
        let err = parse_log(text, BASE).unwrap_err();
        match err {
            WeblogError::ParseLine { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parse_log_ok() {
        let mut text = String::new();
        for i in 0..50 {
            let rec = LogRecord::new(i as f64, i, Method::Get, i, 200, 100 + i as u64);
            text.push_str(&format_line(&rec, BASE));
            text.push('\n');
        }
        let records = parse_log(&text, BASE).unwrap();
        assert_eq!(records.len(), 50);
        assert_eq!(records[49].bytes, 149);
    }

    #[test]
    fn lenient_skips_and_counts_garbage() {
        let good = format_line(&LogRecord::new(3.0, 9, Method::Get, 1, 200, 64), BASE);
        let text = format!("{good}\nnot a log line\n\n1.2.3.4 incomplete\n{good}\n");
        let parsed = parse_log_lenient(&text, BASE);
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.skipped, 2);
        assert_eq!(parsed.records[0], parsed.records[1]);
        // A fully clean stream skips nothing.
        let clean = parse_log_lenient(&good, BASE);
        assert_eq!(clean.skipped, 0);
        assert_eq!(clean.records.len(), 1);
    }

    #[test]
    fn lenient_breakdown_classifies_by_cause() {
        let good = format_line(&LogRecord::new(3.0, 9, Method::Get, 1, 200, 64), BASE);
        let bad_date = r#"1.2.3.4 - - [99/Jan/2004:00:00:07 +0000] "GET /r HTTP/1.0" 200 5"#;
        let bad_status = r#"1.2.3.4 - - [12/Jan/2004:00:00:07 +0000] "GET /r HTTP/1.0" 2x0 5"#;
        let truncated = "1.2.3.4 - - [12/Jan/2004";
        let other = r#"zzz - - [12/Jan/2004:00:00:07 +0000] "GET /r HTTP/1.0" 200 5"#;
        let text = format!("{good}\n{bad_date}\n{bad_status}\n{truncated}\n{other}\n");
        let parsed = parse_log_lenient(&text, BASE);
        assert_eq!(parsed.records.len(), 1);
        assert_eq!(parsed.malformed.bad_timestamp, 1);
        assert_eq!(parsed.malformed.bad_status, 1);
        assert_eq!(parsed.malformed.truncated, 1);
        assert_eq!(parsed.malformed.other, 1);
        // The legacy count stays the sum of the breakdown.
        assert_eq!(parsed.skipped, parsed.malformed.total());
        let mut merged = parsed.malformed;
        merged.merge(&parsed.malformed);
        assert_eq!(merged.total(), 8);
        for kind in MalformedKind::ALL {
            assert_eq!(merged.count(kind), 2, "{}", kind.as_str());
        }
    }

    #[test]
    fn textual_uri_hashes_stably() {
        let line = r#"1.2.3.4 - - [12/Jan/2004:00:00:07 +0000] "GET /a/b.html HTTP/1.0" 200 5"#;
        let a = parse_line(line, BASE).unwrap().resource;
        let b = parse_line(line, BASE).unwrap().resource;
        assert_eq!(a, b);
    }
}
