//! Error type for log parsing and dataset construction.

use std::error::Error;
use std::fmt;

/// Error returned by log handling routines.
#[derive(Debug, Clone, PartialEq)]
pub enum WeblogError {
    /// A Common Log Format line could not be parsed.
    ParseLine {
        /// 1-based line number when parsing a stream, 0 for single lines.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A parameter (threshold, interval width, …) was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// The input records were empty where data is required.
    Empty,
    /// Records were required to be time-sorted but were not.
    Unsorted {
        /// Index of the first out-of-order record.
        at: usize,
    },
}

impl fmt::Display for WeblogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeblogError::ParseLine { line, reason } => {
                if *line == 0 {
                    write!(f, "malformed log line: {reason}")
                } else {
                    write!(f, "malformed log line {line}: {reason}")
                }
            }
            WeblogError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter {name}: {constraint}")
            }
            WeblogError::Empty => write!(f, "no log records provided"),
            WeblogError::Unsorted { at } => {
                write!(
                    f,
                    "records not sorted by timestamp (first violation at index {at})"
                )
            }
        }
    }
}

impl Error for WeblogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(WeblogError::Empty.to_string().contains("no log records"));
        assert!(WeblogError::Unsorted { at: 3 }.to_string().contains('3'));
        let e = WeblogError::ParseLine {
            line: 7,
            reason: "bad status".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn is_error_trait_object() {
        fn takes(_: &dyn Error) {}
        takes(&WeblogError::Empty);
    }
}
