//! Maximum-likelihood parameter fits for the model distributions.
//!
//! These are the fits the curvature test (Downey 2001) needs: given an
//! empirical sample, fit a candidate Pareto or lognormal and then compare the
//! sample's LLCD curvature against Monte-Carlo replicates from the fit.

use crate::descriptive::check_sample;
use crate::dist::{Exponential, LogNormal, Pareto, Weibull};
use crate::{Result, StatsError};

/// Fit an exponential distribution by maximum likelihood (`λ̂ = 1/x̄`).
///
/// # Errors
///
/// Returns an error for empty/non-finite input or if any observation is
/// negative (outside the exponential support) or the mean is zero.
///
/// # Examples
///
/// ```
/// let d = webpuzzle_stats::fit::fit_exponential(&[1.0, 2.0, 3.0]).unwrap();
/// assert!((d.rate() - 0.5).abs() < 1e-12);
/// ```
pub fn fit_exponential(data: &[f64]) -> Result<Exponential> {
    check_sample(data, 1)?;
    if data.iter().any(|&x| x < 0.0) {
        return Err(StatsError::DegenerateInput {
            what: "exponential fit requires non-negative data",
        });
    }
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    if mean <= 0.0 {
        return Err(StatsError::DegenerateInput {
            what: "exponential fit requires positive mean",
        });
    }
    Exponential::from_mean(mean)
}

/// Fit a lognormal by maximum likelihood on the logs
/// (`μ̂ = mean(ln x)`, `σ̂² = var(ln x)` with n denominator).
///
/// # Errors
///
/// Returns an error for fewer than two observations, non-finite input,
/// non-positive observations, or zero variance on the log scale.
pub fn fit_lognormal(data: &[f64]) -> Result<LogNormal> {
    check_sample(data, 2)?;
    if data.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::DegenerateInput {
            what: "lognormal fit requires strictly positive data",
        });
    }
    let logs: Vec<f64> = data.iter().map(|x| x.ln()).collect();
    let n = logs.len() as f64;
    let mu = logs.iter().sum::<f64>() / n;
    let var = logs.iter().map(|l| (l - mu) * (l - mu)).sum::<f64>() / n;
    if var <= 0.0 {
        return Err(StatsError::DegenerateInput {
            what: "lognormal fit requires non-degenerate data",
        });
    }
    LogNormal::new(mu, var.sqrt())
}

/// Fit a Pareto by maximum likelihood with the location fixed at the sample
/// minimum: `α̂ = n / Σ ln(xᵢ/k̂)`, `k̂ = min xᵢ`.
///
/// This is the conditional MLE; for tail-only fitting above a chosen
/// threshold use [`fit_pareto_tail`].
///
/// # Errors
///
/// Returns an error for fewer than two observations, non-finite input, or
/// non-positive observations.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use webpuzzle_stats::dist::{Pareto, Sampler};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let truth = Pareto::new(1.5, 2.0).unwrap();
/// let sample = truth.sample_n(&mut rng, 5000);
/// let fitted = webpuzzle_stats::fit::fit_pareto(&sample).unwrap();
/// assert!((fitted.alpha() - 1.5).abs() < 0.1);
/// ```
pub fn fit_pareto(data: &[f64]) -> Result<Pareto> {
    check_sample(data, 2)?;
    if data.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::DegenerateInput {
            what: "Pareto fit requires strictly positive data",
        });
    }
    let k = data.iter().cloned().fold(f64::INFINITY, f64::min);
    let sum_log: f64 = data.iter().map(|&x| (x / k).ln()).sum();
    if sum_log <= 0.0 {
        return Err(StatsError::DegenerateInput {
            what: "Pareto fit requires non-degenerate data",
        });
    }
    Pareto::new(data.len() as f64 / sum_log, k)
}

/// Fit a Pareto to the upper tail: observations `x ≥ threshold` only, with
/// the location fixed at `threshold`.
///
/// # Errors
///
/// Returns an error if the threshold is not positive, fewer than two
/// observations exceed it, or the tail is degenerate.
pub fn fit_pareto_tail(data: &[f64], threshold: f64) -> Result<Pareto> {
    if !threshold.is_finite() || threshold <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "threshold",
            value: threshold,
            constraint: "must be finite and > 0",
        });
    }
    let tail: Vec<f64> = data.iter().cloned().filter(|&x| x >= threshold).collect();
    if tail.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: tail.len(),
        });
    }
    check_sample(&tail, 2)?;
    let sum_log: f64 = tail.iter().map(|&x| (x / threshold).ln()).sum();
    if sum_log <= 0.0 {
        return Err(StatsError::DegenerateInput {
            what: "tail contains no spread above threshold",
        });
    }
    Pareto::new(tail.len() as f64 / sum_log, threshold)
}

/// Fit a Weibull distribution by maximum likelihood.
///
/// The shape `k̂` solves `Σxᵏln x / Σxᵏ − 1/k − mean(ln x) = 0` (found by
/// bisection on `k ∈ [0.02, 100]`), then `λ̂ = (Σxᵏ/n)^{1/k}`.
///
/// # Errors
///
/// Returns an error for fewer than two observations, non-finite or
/// non-positive data, degenerate (constant) samples, or if the profile
/// equation has no root in the bracket ([`StatsError::NoConvergence`]).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use webpuzzle_stats::dist::{Sampler, Weibull};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let truth = Weibull::new(0.8, 3.0).unwrap();
/// let sample = truth.sample_n(&mut rng, 5000);
/// let fit = webpuzzle_stats::fit::fit_weibull(&sample).unwrap();
/// assert!((fit.shape() - 0.8).abs() < 0.05);
/// ```
pub fn fit_weibull(data: &[f64]) -> Result<Weibull> {
    check_sample(data, 2)?;
    if data.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::DegenerateInput {
            what: "Weibull fit requires strictly positive data",
        });
    }
    let n = data.len() as f64;
    let mean_log: f64 = data.iter().map(|x| x.ln()).sum::<f64>() / n;
    let profile = |k: f64| -> f64 {
        let mut sxk = 0.0;
        let mut sxk_ln = 0.0;
        for &x in data {
            let xk = x.powf(k);
            sxk += xk;
            sxk_ln += xk * x.ln();
        }
        sxk_ln / sxk - 1.0 / k - mean_log
    };
    let (mut lo, mut hi) = (0.02, 100.0);
    let (flo, fhi) = (profile(lo), profile(hi));
    if !(flo < 0.0 && fhi > 0.0) {
        return Err(StatsError::NoConvergence {
            what: "Weibull shape profile has no sign change in [0.02, 100]",
        });
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if profile(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 {
            break;
        }
    }
    let k = 0.5 * (lo + hi);
    let scale = (data.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    Weibull::new(k, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Sampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_fit_recovers_rate() {
        let mut rng = StdRng::seed_from_u64(10);
        let truth = Exponential::new(2.5).unwrap();
        let sample = truth.sample_n(&mut rng, 50_000);
        let fit = fit_exponential(&sample).unwrap();
        assert!((fit.rate() - 2.5).abs() < 0.05, "rate = {}", fit.rate());
    }

    #[test]
    fn exponential_fit_rejects_negative() {
        assert!(fit_exponential(&[-1.0, 2.0]).is_err());
    }

    #[test]
    fn lognormal_fit_recovers_params() {
        let mut rng = StdRng::seed_from_u64(20);
        let truth = LogNormal::new(1.5, 0.8).unwrap();
        let sample = truth.sample_n(&mut rng, 50_000);
        let fit = fit_lognormal(&sample).unwrap();
        assert!((fit.mu() - 1.5).abs() < 0.02);
        assert!((fit.sigma() - 0.8).abs() < 0.02);
    }

    #[test]
    fn lognormal_fit_rejects_nonpositive() {
        assert!(fit_lognormal(&[0.0, 1.0]).is_err());
    }

    #[test]
    fn pareto_fit_recovers_alpha() {
        let mut rng = StdRng::seed_from_u64(30);
        let truth = Pareto::new(1.2, 3.0).unwrap();
        let sample = truth.sample_n(&mut rng, 50_000);
        let fit = fit_pareto(&sample).unwrap();
        assert!((fit.alpha() - 1.2).abs() < 0.05, "alpha = {}", fit.alpha());
        assert!((fit.location() - 3.0).abs() < 0.01);
    }

    #[test]
    fn pareto_tail_fit_ignores_body() {
        // Mix a lognormal body with a Pareto tail; the tail fit above the
        // splice point should recover the tail α.
        let mut rng = StdRng::seed_from_u64(40);
        let body = LogNormal::new(0.0, 0.5).unwrap().sample_n(&mut rng, 20_000);
        let tail = Pareto::new(1.6, 20.0).unwrap().sample_n(&mut rng, 20_000);
        let mut all = body;
        all.extend(tail);
        let fit = fit_pareto_tail(&all, 20.0).unwrap();
        assert!((fit.alpha() - 1.6).abs() < 0.1, "alpha = {}", fit.alpha());
    }

    #[test]
    fn pareto_tail_fit_needs_enough_tail() {
        assert!(matches!(
            fit_pareto_tail(&[1.0, 2.0, 3.0], 100.0),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn degenerate_sample_rejected() {
        assert!(fit_pareto(&[2.0, 2.0, 2.0]).is_err());
        assert!(fit_lognormal(&[5.0, 5.0]).is_err());
    }

    #[test]
    fn weibull_fit_recovers_params() {
        let mut rng = StdRng::seed_from_u64(55);
        for &(k, lam) in &[(0.6, 2.0), (1.0, 1.0), (2.5, 10.0)] {
            let truth = Weibull::new(k, lam).unwrap();
            let sample = truth.sample_n(&mut rng, 20_000);
            let fit = fit_weibull(&sample).unwrap();
            assert!(
                (fit.shape() - k).abs() < 0.05,
                "k = {k}: got {}",
                fit.shape()
            );
            assert!(
                (fit.scale() / lam - 1.0).abs() < 0.05,
                "λ = {lam}: got {}",
                fit.scale()
            );
        }
    }

    #[test]
    fn weibull_fit_rejects_bad_input() {
        assert!(fit_weibull(&[1.0]).is_err());
        assert!(fit_weibull(&[1.0, -2.0]).is_err());
        assert!(fit_weibull(&[3.0, 3.0, 3.0]).is_err());
    }
}
