//! Statistical foundations for the `webpuzzle` workload-characterization suite.
//!
//! This crate provides everything the higher layers (time-series analysis,
//! long-range-dependence estimation, heavy-tail analysis) need that a thin
//! Rust statistics ecosystem does not: special functions, parametric
//! distributions with samplers and maximum-likelihood fits, ordinary and
//! weighted least-squares regression, and the hypothesis tests used by the
//! paper (KPSS stationarity test, Anderson-Darling exponentiality test, and
//! the binomial meta-tests of §4.2).
//!
//! # Examples
//!
//! Fit a Pareto tail and run an Anderson-Darling test:
//!
//! ```
//! use rand::SeedableRng;
//! use webpuzzle_stats::dist::{Exponential, Sampler};
//! use webpuzzle_stats::htest::anderson_darling_exponential;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let exp = Exponential::new(2.0).unwrap();
//! let sample: Vec<f64> = (0..500).map(|_| exp.sample(&mut rng)).collect();
//! let result = anderson_darling_exponential(&sample).unwrap();
//! assert!(!result.reject, "a true exponential sample should not be rejected");
//! ```

pub mod descriptive;
pub mod dist;
pub mod error;
pub mod fit;
pub mod htest;
pub mod regression;
pub mod special;

pub use error::StatsError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;
