//! Ordinary and weighted least-squares simple linear regression.
//!
//! Every slope-based estimator in the suite reduces to one of these two
//! routines: LLCD tail-index fits, variance-time plots, R/S plots,
//! periodogram regressions (OLS), and the Abry-Veitch logscale diagram (WLS
//! with known per-octave variances).

use crate::{Result, StatsError};

/// Result of a simple linear regression `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Regression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Standard error of the slope estimate.
    pub slope_std_err: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl Regression {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Half-width of the normal-approximation confidence interval on the
    /// slope at the given confidence level (e.g. `0.95`).
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `(0, 1)`.
    pub fn slope_ci_half_width(&self, level: f64) -> f64 {
        let z = crate::special::normal_quantile(0.5 + level / 2.0);
        z * self.slope_std_err
    }
}

/// Ordinary least squares fit of `y` on `x`.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if fewer than 3 points (needed
/// for a residual degree of freedom), [`StatsError::DegenerateInput`] if the
/// lengths differ or `x` has no spread, and [`StatsError::NonFiniteData`] for
/// non-finite input.
///
/// # Examples
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.1, 3.9, 6.1, 7.9];
/// let fit = webpuzzle_stats::regression::ols(&x, &y).unwrap();
/// assert!((fit.slope - 2.0).abs() < 0.1);
/// assert!(fit.r_squared > 0.99);
/// ```
pub fn ols(x: &[f64], y: &[f64]) -> Result<Regression> {
    validate_xy(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|xi| (xi - mx) * (xi - mx)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(xi, yi)| (xi - mx) * (yi - my)).sum();
    let syy: f64 = y.iter().map(|yi| (yi - my) * (yi - my)).sum();
    if sxx <= 0.0 {
        return Err(StatsError::DegenerateInput {
            what: "x has zero variance",
        });
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(xi, yi)| {
            let r = yi - (intercept + slope * xi);
            r * r
        })
        .sum();
    let r_squared = if syy > 0.0 { 1.0 - ss_res / syy } else { 1.0 };
    let dof = (x.len() - 2).max(1) as f64;
    let slope_std_err = (ss_res / dof / sxx).sqrt();
    Ok(Regression {
        slope,
        intercept,
        slope_std_err,
        r_squared,
        n: x.len(),
    })
}

/// Weighted least squares fit of `y` on `x` with known weights `w`
/// (`wᵢ = 1/Var(yᵢ)` for optimal weighting).
///
/// The slope standard error is computed from the *supplied* weights
/// (`Var(slope) = 1/Σw·(x−x̄_w)²`), which is the correct formula when the
/// weights are known variances — the Abry-Veitch case.
///
/// # Errors
///
/// Same conditions as [`ols`], plus [`StatsError::InvalidParameter`] if any
/// weight is not finite and positive.
pub fn wls(x: &[f64], y: &[f64], w: &[f64]) -> Result<Regression> {
    validate_xy(x, y)?;
    if w.len() != x.len() {
        return Err(StatsError::DegenerateInput {
            what: "weight vector length mismatch",
        });
    }
    if w.iter().any(|&wi| !wi.is_finite() || wi <= 0.0) {
        return Err(StatsError::InvalidParameter {
            name: "w",
            value: f64::NAN,
            constraint: "all weights must be finite and > 0",
        });
    }
    let sw: f64 = w.iter().sum();
    let mx = x.iter().zip(w).map(|(xi, wi)| wi * xi).sum::<f64>() / sw;
    let my = y.iter().zip(w).map(|(yi, wi)| wi * yi).sum::<f64>() / sw;
    let sxx: f64 = x
        .iter()
        .zip(w)
        .map(|(xi, wi)| wi * (xi - mx) * (xi - mx))
        .sum();
    if sxx <= 0.0 {
        return Err(StatsError::DegenerateInput {
            what: "x has zero weighted variance",
        });
    }
    let sxy: f64 = x
        .iter()
        .zip(y)
        .zip(w)
        .map(|((xi, yi), wi)| wi * (xi - mx) * (yi - my))
        .sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    // R² on the weighted scale.
    let syy: f64 = y
        .iter()
        .zip(w)
        .map(|(yi, wi)| wi * (yi - my) * (yi - my))
        .sum();
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .zip(w)
        .map(|((xi, yi), wi)| {
            let r = yi - (intercept + slope * xi);
            wi * r * r
        })
        .sum();
    let r_squared = if syy > 0.0 { 1.0 - ss_res / syy } else { 1.0 };
    Ok(Regression {
        slope,
        intercept,
        slope_std_err: (1.0 / sxx).sqrt(),
        r_squared,
        n: x.len(),
    })
}

fn validate_xy(x: &[f64], y: &[f64]) -> Result<()> {
    if x.len() != y.len() {
        return Err(StatsError::DegenerateInput {
            what: "x and y lengths differ",
        });
    }
    if x.len() < 3 {
        return Err(StatsError::InsufficientData {
            needed: 3,
            got: x.len(),
        });
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteData);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|xi| 3.0 - 0.5 * xi).collect();
        let fit = ols(&x, &y).unwrap();
        assert!((fit.slope + 0.5).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.slope_std_err < 1e-10);
    }

    #[test]
    fn noisy_line_reasonable() {
        // Deterministic pseudo-noise.
        let x: Vec<f64> = (0..200).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, xi)| 2.0 * xi + 1.0 + ((i as f64 * 12.9898).sin() * 0.5))
            .collect();
        let fit = ols(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
        // The CI should cover the truth.
        assert!((fit.slope - 2.0).abs() < fit.slope_ci_half_width(0.99));
    }

    #[test]
    fn degenerate_x_rejected() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert!(matches!(
            ols(&x, &y),
            Err(StatsError::DegenerateInput { .. })
        ));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(ols(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(matches!(
            ols(&[1.0, 2.0], &[1.0, 2.0]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn wls_equal_weights_matches_ols() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|xi| 1.5 * xi - 2.0 + (xi * 0.7).sin())
            .collect();
        let w = vec![2.0; 50];
        let o = ols(&x, &y).unwrap();
        let wfit = wls(&x, &y, &w).unwrap();
        assert!((o.slope - wfit.slope).abs() < 1e-10);
        assert!((o.intercept - wfit.intercept).abs() < 1e-10);
    }

    #[test]
    fn wls_downweights_outliers() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0, 1.0, 2.0, 3.0, 100.0];
        // With the outlier weighted ~0, slope should be ~1.
        let w = [1.0, 1.0, 1.0, 1.0, 1e-9];
        let fit = wls(&x, &y, &w).unwrap();
        assert!((fit.slope - 1.0).abs() < 1e-3, "slope = {}", fit.slope);
        // Sanity: with equal weights it is far from 1.
        y[4] = 100.0;
        let fit_eq = ols(&x, &y).unwrap();
        assert!(fit_eq.slope > 5.0);
    }

    #[test]
    fn wls_rejects_bad_weights() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0];
        assert!(wls(&x, &y, &[1.0, -1.0, 1.0]).is_err());
        assert!(wls(&x, &y, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn nonfinite_rejected() {
        assert_eq!(
            ols(&[1.0, 2.0, f64::NAN], &[1.0, 2.0, 3.0]),
            Err(StatsError::NonFiniteData)
        );
    }
}
