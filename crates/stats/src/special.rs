//! Special mathematical functions.
//!
//! Hand-rolled implementations of the special functions the rest of the suite
//! depends on: log-gamma (Lanczos), digamma, error function, standard normal
//! CDF/quantile, and log-binomial coefficients. Accuracy targets are ~1e-10
//! relative error over the argument ranges used by the estimators, which is
//! far below the statistical noise of any of the procedures built on top.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), accurate to about
/// 1e-13 relative error for positive arguments.
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Examples
///
/// ```
/// let v = webpuzzle_stats::special::ln_gamma(5.0);
/// assert!((v - (24.0f64).ln()).abs() < 1e-10); // Γ(5) = 4! = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The gamma function `Γ(x)` for `x > 0`.
///
/// # Examples
///
/// ```
/// assert!((webpuzzle_stats::special::gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
/// ```
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses upward recurrence into the asymptotic region followed by the
/// asymptotic (Bernoulli) expansion; absolute error below 1e-12 for x ≥ 1e-3.
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Examples
///
/// ```
/// // ψ(1) = -γ (Euler–Mascheroni constant)
/// let v = webpuzzle_stats::special::digamma(1.0);
/// assert!((v + 0.5772156649015329).abs() < 1e-10);
/// ```
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    // Recurrence ψ(x) = ψ(x+1) - 1/x until x is large enough for the
    // asymptotic series.
    while x < 12.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion.
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))));
    result
}

/// Error function `erf(x)`, accurate to near machine precision (Cody's
/// CALERF rational approximations).
///
/// # Examples
///
/// ```
/// assert!(webpuzzle_stats::special::erf(0.0).abs() < 1e-15);
/// assert!((webpuzzle_stats::special::erf(1.0) - 0.842700792949715).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.abs() <= 0.46875 {
        erf_small(x)
    } else if x >= 0.0 {
        1.0 - erfc(x)
    } else {
        erfc(-x) - 1.0
    }
}

// Cody region 1: |x| <= 0.46875.
fn erf_small(x: f64) -> f64 {
    const A: [f64; 5] = [
        3.161_123_743_870_565_6,
        1.138_641_541_510_501_6e2,
        3.774_852_376_853_02e2,
        3.209_377_589_138_469_5e3,
        1.857_777_061_846_031_5e-1,
    ];
    const B: [f64; 4] = [
        2.360_129_095_234_412_1e1,
        2.440_246_379_344_441_7e2,
        1.282_616_526_077_372_3e3,
        2.844_236_833_439_171e3,
    ];
    let z = x * x;
    let mut xnum = A[4] * z;
    let mut xden = z;
    for i in 0..3 {
        xnum = (xnum + A[i]) * z;
        xden = (xden + B[i]) * z;
    }
    x * (xnum + A[3]) / (xden + B[3])
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses W. J. Cody's CALERF rational approximations (the netlib reference
/// implementation), giving relative error near machine epsilon over the full
/// range, including the deep tail where `1 - erf(x)` would cancel.
pub fn erfc(x: f64) -> f64 {
    let y = x.abs();
    let result = if y <= 0.46875 {
        return 1.0 - erf_small(x);
    } else if y <= 4.0 {
        // Cody region 2.
        const C: [f64; 9] = [
            5.641_884_969_886_701e-1,
            8.883_149_794_388_376,
            6.611_919_063_714_163e1,
            2.986_351_381_974_001e2,
            8.819_522_212_417_69e2,
            1.712_047_612_634_070_6e3,
            2.051_078_377_826_071_5e3,
            1.230_339_354_797_997_2e3,
            2.153_115_354_744_038_5e-8,
        ];
        const D: [f64; 8] = [
            1.574_492_611_070_983_5e1,
            1.176_939_508_913_125e2,
            5.371_811_018_620_099e2,
            1.621_389_574_566_690_2e3,
            3.290_799_235_733_459_7e3,
            4.362_619_090_143_247e3,
            3.439_367_674_143_721_6e3,
            1.230_339_354_803_749_4e3,
        ];
        let mut xnum = C[8] * y;
        let mut xden = y;
        for i in 0..7 {
            xnum = (xnum + C[i]) * y;
            xden = (xden + D[i]) * y;
        }
        (-y * y).exp() * (xnum + C[7]) / (xden + D[7])
    } else {
        // Cody region 3: y > 4.
        const SQRPI: f64 = 5.641_895_835_477_563e-1;
        const P: [f64; 6] = [
            3.053_266_349_612_323_4e-1,
            3.603_448_999_498_044_4e-1,
            1.257_817_261_112_292_5e-1,
            1.608_378_514_874_228e-2,
            6.587_491_615_298_378e-4,
            1.631_538_713_730_209_8e-2,
        ];
        const Q: [f64; 5] = [
            2.568_520_192_289_822,
            1.872_952_849_923_460_5,
            5.279_051_029_514_284e-1,
            6.051_834_131_244_132e-2,
            2.335_204_976_268_691_8e-3,
        ];
        if y >= 26.6 {
            // erfc underflows to 0 in double precision.
            0.0
        } else {
            let ysq = 1.0 / (y * y);
            let mut xnum = P[5] * ysq;
            let mut xden = ysq;
            for i in 0..4 {
                xnum = (xnum + P[i]) * ysq;
                xden = (xden + Q[i]) * ysq;
            }
            let r = ysq * (xnum + P[4]) / (xden + Q[4]);
            (-y * y).exp() * (SQRPI - r) / y
        }
    };
    if x >= 0.0 {
        result
    } else {
        2.0 - result
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// # Examples
///
/// ```
/// let phi = webpuzzle_stats::special::normal_cdf(0.0);
/// assert!((phi - 0.5).abs() < 1e-12);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile function `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Uses Peter Acklam's rational approximation (relative error < 1.15e-9)
/// followed by one Halley refinement step, giving near machine precision.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// let z = webpuzzle_stats::special::normal_quantile(0.975);
/// assert!((z - 1.959964).abs() < 1e-5);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Quantile of Student's t distribution with `dof` degrees of freedom.
///
/// Uses the Cornish–Fisher-style expansion of the t quantile around the
/// normal quantile (Fisher's asymptotic series in `1/dof` to third
/// order), which is accurate to a few 1e-3 for `dof >= 3` — more than
/// enough for confidence-interval half-widths, where the estimator noise
/// dominates. For large `dof` the result converges to
/// [`normal_quantile`].
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` or `dof` is zero.
///
/// # Examples
///
/// ```
/// use webpuzzle_stats::special::student_t_quantile;
///
/// // t_{0.975, 10} = 2.228…
/// let t = student_t_quantile(0.975, 10);
/// assert!((t - 2.228).abs() < 0.01);
/// // Converges to the normal quantile as dof grows.
/// assert!((student_t_quantile(0.975, 100_000) - 1.959964).abs() < 1e-3);
/// ```
pub fn student_t_quantile(p: f64, dof: usize) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "student_t_quantile requires p in (0,1), got {p}"
    );
    assert!(dof > 0, "student_t_quantile requires dof >= 1");
    // Exact closed forms where the asymptotic series is worst.
    if dof == 1 {
        return (std::f64::consts::PI * (p - 0.5)).tan();
    }
    if dof == 2 {
        let a = 2.0 * p - 1.0;
        return a * (2.0 / (1.0 - a * a)).sqrt();
    }
    let z = normal_quantile(p);
    let v = dof as f64;
    let z2 = z * z;
    // Fisher's expansion: t = z + g1/v + g2/v^2 + g3/v^3 with the
    // classical polynomial coefficients (Abramowitz & Stegun 26.7.5).
    let g1 = z * (z2 + 1.0) / 4.0;
    let g2 = z * (5.0 * z2 * z2 + 16.0 * z2 + 3.0) / 96.0;
    let g3 = z * (3.0 * z2 * z2 * z2 + 19.0 * z2 * z2 + 17.0 * z2 - 15.0) / 384.0;
    z + g1 / v + g2 / (v * v) + g3 / (v * v * v)
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise (Numerical Recipes `gammp`), accurate to ~1e-12.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
///
/// # Examples
///
/// ```
/// use webpuzzle_stats::special::reg_lower_gamma;
///
/// // P(1, x) = 1 - e^{-x}
/// let p = reg_lower_gamma(1.0, 2.0);
/// assert!((p - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
/// ```
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

// Series representation of P(a, x), convergent for x < a + 1.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

// Continued-fraction representation of Q(a, x) = 1 - P(a, x), for
// x >= a + 1 (modified Lentz).
fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// CDF of the chi-squared distribution with `dof` degrees of freedom.
///
/// # Panics
///
/// Panics if `dof <= 0` or `x < 0`.
///
/// # Examples
///
/// ```
/// use webpuzzle_stats::special::chi_squared_cdf;
///
/// // Median of χ²(2) is 2 ln 2.
/// let p = chi_squared_cdf(2.0 * (2.0f64).ln(), 2.0);
/// assert!((p - 0.5).abs() < 1e-10);
/// ```
pub fn chi_squared_cdf(x: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "chi_squared_cdf requires dof > 0, got {dof}");
    reg_lower_gamma(dof / 2.0, x / 2.0)
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// # Examples
///
/// ```
/// let v = webpuzzle_stats::special::ln_binomial(4, 2);
/// assert!((v - (6.0f64).ln()).abs() < 1e-10);
/// ```
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Probability mass function of the binomial distribution `B(n, p)` at `k`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// // P(X = 4) for X ~ B(4, 0.95) = 0.95^4 ≈ 0.8145
/// let pmf = webpuzzle_stats::special::binomial_pmf(4, 0.95, 4);
/// assert!((pmf - 0.81450625).abs() < 1e-10);
/// ```
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "binomial_pmf requires p in [0,1], got {p}"
    );
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_binomial(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Cumulative distribution function of the binomial `B(n, p)`: `P(X ≤ k)`.
pub fn binomial_cdf(n: u64, p: f64, k: u64) -> f64 {
    (0..=k.min(n))
        .map(|i| binomial_pmf(n, p, i))
        .sum::<f64>()
        .min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-9,
                "ln_gamma({n})"
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        assert!((gamma(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.25) = 3.6256099082...
        assert!((gamma(0.25) - 3.625_609_908_221_908).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn digamma_known_values() {
        assert!((digamma(1.0) + EULER_GAMMA).abs() < 1e-10);
        // ψ(2) = 1 - γ
        assert!((digamma(2.0) - (1.0 - EULER_GAMMA)).abs() < 1e-10);
        // ψ(0.5) = -γ - 2 ln 2
        assert!((digamma(0.5) + EULER_GAMMA + 2.0 * (2.0f64).ln()).abs() < 1e-10);
    }

    #[test]
    fn digamma_recurrence_property() {
        for &x in &[0.3, 1.7, 4.2, 11.0, 123.4] {
            assert!(
                (digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10,
                "recurrence at {x}"
            );
        }
    }

    #[test]
    fn erf_symmetry_and_values() {
        assert!(erf(0.0).abs() < 1e-15);
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12, "odd symmetry at {x}");
        }
        assert!((erf(1.0) - 0.842_700_792_949_715).abs() < 1e-12);
        assert!((erf(2.0) - 0.995_322_265_018_953).abs() < 1e-12);
        assert!((erf(0.3) - 0.328_626_759_459_127).abs() < 1e-12);
    }

    #[test]
    fn erfc_deep_tail() {
        // erfc(5) = 1.5374597944280349e-12; relative accuracy matters here.
        let v = erfc(5.0);
        assert!((v / 1.537_459_794_428_035e-12 - 1.0).abs() < 1e-10, "{v}");
        assert_eq!(erfc(30.0), 0.0);
        assert!((erfc(-5.0) - 2.0).abs() < 1e-11);
    }

    #[test]
    fn normal_cdf_values() {
        assert!((normal_cdf(1.959_963_985) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-1.644_853_627) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn normal_quantile_roundtrip() {
        for &p in &[0.001, 0.01, 0.05, 0.2, 0.5, 0.8, 0.95, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-9, "roundtrip at p = {p}");
        }
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(4u64, 0.95), (24, 0.95), (10, 0.5)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, p, k)).sum();
            assert!((total - 1.0).abs() < 1e-12, "n={n}, p={p}");
        }
    }

    #[test]
    fn binomial_cdf_monotone() {
        let mut prev = 0.0;
        for k in 0..=24 {
            let c = binomial_cdf(24, 0.95, k);
            assert!(c >= prev - 1e-15);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn incomplete_gamma_exponential_identity() {
        // P(1, x) = 1 - e^{-x} across both branches (series & cont. frac.).
        for &x in &[0.1f64, 0.5, 1.0, 1.9, 2.1, 5.0, 20.0] {
            let expected = 1.0 - (-x).exp();
            assert!(
                (reg_lower_gamma(1.0, x) - expected).abs() < 1e-12,
                "x = {x}"
            );
        }
    }

    #[test]
    fn incomplete_gamma_monotone_in_x() {
        let mut prev = 0.0;
        for i in 0..100 {
            let p = reg_lower_gamma(2.5, i as f64 * 0.3);
            assert!(p >= prev - 1e-15);
            prev = p;
        }
        assert!((prev - 1.0).abs() < 1e-10);
    }

    #[test]
    fn chi_squared_known_quantiles() {
        // χ²(1): P(X <= 3.841) ≈ 0.95; χ²(10): P(X <= 18.307) ≈ 0.95.
        assert!((chi_squared_cdf(3.841, 1.0) - 0.95).abs() < 1e-3);
        assert!((chi_squared_cdf(18.307, 10.0) - 0.95).abs() < 1e-3);
        // χ²(2) is Exponential(1/2).
        assert!((chi_squared_cdf(4.0, 2.0) - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn paper_binomial_values() {
        // §4.2: S ~ B(4, 0.95). P(S=4) ≈ 0.8145, P(S=3) ≈ 0.1715,
        // P(S=2) ≈ 0.0135 < 0.05 → observing s ≤ 2 rejects independence.
        assert!(binomial_pmf(4, 0.95, 4) > 0.05);
        assert!(binomial_pmf(4, 0.95, 3) > 0.05);
        assert!(binomial_pmf(4, 0.95, 2) < 0.05);
        assert!(binomial_pmf(4, 0.95, 0) < 0.05);
    }
}
