//! Descriptive statistics: moments, quantiles, and summary reports.

use crate::{Result, StatsError};

/// Arithmetic mean of a sample.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for an empty sample and
/// [`StatsError::NonFiniteData`] if any value is NaN or infinite.
///
/// # Examples
///
/// ```
/// let m = webpuzzle_stats::descriptive::mean(&[1.0, 2.0, 3.0]).unwrap();
/// assert!((m - 2.0).abs() < 1e-12);
/// ```
pub fn mean(data: &[f64]) -> Result<f64> {
    check_sample(data, 1)?;
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased (n−1 denominator) sample variance.
///
/// Uses a two-pass algorithm for numerical stability.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for samples with fewer than two
/// observations, [`StatsError::NonFiniteData`] for non-finite input.
pub fn variance(data: &[f64]) -> Result<f64> {
    check_sample(data, 2)?;
    let m = data.iter().sum::<f64>() / data.len() as f64;
    let ss: f64 = data.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / (data.len() - 1) as f64)
}

/// Sample standard deviation (square root of the unbiased variance).
///
/// # Errors
///
/// Same conditions as [`variance`].
pub fn std_dev(data: &[f64]) -> Result<f64> {
    Ok(variance(data)?.sqrt())
}

/// Population (n denominator) variance, used where the series itself is the
/// population of interest (e.g. variance-time plots).
///
/// # Errors
///
/// Same conditions as [`mean`].
pub fn population_variance(data: &[f64]) -> Result<f64> {
    check_sample(data, 1)?;
    let m = data.iter().sum::<f64>() / data.len() as f64;
    Ok(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64)
}

/// Empirical quantile using linear interpolation between order statistics
/// (type-7, the R default). `q` must lie in `[0, 1]`.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for an empty sample,
/// [`StatsError::InvalidParameter`] for `q` outside `[0, 1]`, and
/// [`StatsError::NonFiniteData`] for non-finite input.
///
/// # Examples
///
/// ```
/// let med = webpuzzle_stats::descriptive::quantile(&[3.0, 1.0, 2.0], 0.5).unwrap();
/// assert!((med - 2.0).abs() < 1e-12);
/// ```
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    check_sample(data, 1)?;
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            name: "q",
            value: q,
            constraint: "must be in [0, 1]",
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    Ok(quantile_sorted(&sorted, q))
}

/// Quantile of an already ascending-sorted sample (type-7 interpolation).
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(
        !sorted.is_empty(),
        "quantile_sorted requires a non-empty slice"
    );
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median of a sample.
///
/// # Errors
///
/// Same conditions as [`quantile`].
pub fn median(data: &[f64]) -> Result<f64> {
    quantile(data, 0.5)
}

/// Lag-`k` sample autocorrelation of a series.
///
/// Uses the biased (divide-by-n, overall-mean) estimator that is standard in
/// time-series analysis; it guarantees the estimated autocorrelation sequence
/// is positive semi-definite.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when `lag >= data.len()`, and
/// [`StatsError::DegenerateInput`] when the series has zero variance.
///
/// # Examples
///
/// ```
/// // A strongly alternating series has negative lag-1 autocorrelation.
/// let x: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let r = webpuzzle_stats::descriptive::autocorrelation(&x, 1).unwrap();
/// assert!(r < -0.9);
/// ```
pub fn autocorrelation(data: &[f64], lag: usize) -> Result<f64> {
    if data.len() <= lag {
        return Err(StatsError::InsufficientData {
            needed: lag + 1,
            got: data.len(),
        });
    }
    check_sample(data, 2)?;
    let n = data.len();
    let m = data.iter().sum::<f64>() / n as f64;
    let denom: f64 = data.iter().map(|x| (x - m) * (x - m)).sum();
    if denom <= 0.0 {
        return Err(StatsError::DegenerateInput {
            what: "zero-variance series has undefined autocorrelation",
        });
    }
    let num: f64 = (0..n - lag)
        .map(|t| (data[t] - m) * (data[t + lag] - m))
        .sum();
    Ok(num / denom)
}

/// A compact numeric summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1).
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Lower quartile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q75: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Compute the summary of a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] for samples with fewer than
    /// two observations and [`StatsError::NonFiniteData`] for non-finite input.
    ///
    /// # Examples
    ///
    /// ```
    /// use webpuzzle_stats::descriptive::Summary;
    /// let s = Summary::from_sample(&[1.0, 2.0, 3.0, 4.0]).unwrap();
    /// assert_eq!(s.n, 4);
    /// assert!((s.median - 2.5).abs() < 1e-12);
    /// ```
    pub fn from_sample(data: &[f64]) -> Result<Self> {
        check_sample(data, 2)?;
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Ok(Summary {
            n: data.len(),
            mean: mean(data)?,
            std_dev: std_dev(data)?,
            min: sorted[0],
            q25: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q75: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        })
    }
}

pub(crate) fn check_sample(data: &[f64], needed: usize) -> Result<()> {
    if data.len() < needed {
        return Err(StatsError::InsufficientData {
            needed,
            got: data.len(),
        });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteData);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&data).unwrap() - 5.0).abs() < 1e-12);
        // population variance = 4, sample variance = 32/7
        assert!((population_variance(&data).unwrap() - 4.0).abs() < 1e-12);
        assert!((variance(&data).unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_errors() {
        assert!(matches!(
            mean(&[]),
            Err(StatsError::InsufficientData { .. })
        ));
        assert!(matches!(
            variance(&[1.0]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn nan_rejected() {
        assert_eq!(mean(&[1.0, f64::NAN]), Err(StatsError::NonFiniteData));
        assert_eq!(
            quantile(&[1.0, f64::INFINITY], 0.5),
            Err(StatsError::NonFiniteData)
        );
    }

    #[test]
    fn quantile_interpolation() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&data, 0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((quantile(&data, 1.0).unwrap() - 4.0).abs() < 1e-12);
        assert!((quantile(&data, 0.5).unwrap() - 2.5).abs() < 1e-12);
        // type-7: h = 0.25 * 3 = 0.75 → 1 + 0.75*(2-1) = 1.75
        assert!((quantile(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert!(matches!(
            quantile(&[1.0], 1.5),
            Err(StatsError::InvalidParameter { name: "q", .. })
        ));
    }

    #[test]
    fn autocorrelation_constant_series_degenerate() {
        let x = [3.0; 50];
        assert!(matches!(
            autocorrelation(&x, 1),
            Err(StatsError::DegenerateInput { .. })
        ));
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        assert!((autocorrelation(&x, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_positive_for_trend() {
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        assert!(autocorrelation(&x, 1).unwrap() > 0.9);
    }

    #[test]
    fn summary_fields_consistent() {
        let s = Summary::from_sample(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.n, 5);
        assert!((s.min - 1.0).abs() < 1e-12);
        assert!((s.max - 5.0).abs() < 1e-12);
        assert!(s.q25 <= s.median && s.median <= s.q75);
    }
}
