//! Error type shared by all statistical routines in this crate.

use std::error::Error;
use std::fmt;

/// Error returned by statistical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution or test parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be > 0"`.
        constraint: &'static str,
    },
    /// The input sample was too small for the requested procedure.
    InsufficientData {
        /// Number of observations required.
        needed: usize,
        /// Number of observations provided.
        got: usize,
    },
    /// The input contained a non-finite value (NaN or infinity).
    NonFiniteData,
    /// An iterative numerical procedure failed to converge.
    NoConvergence {
        /// Name of the procedure that failed.
        what: &'static str,
    },
    /// The input was degenerate (e.g. zero variance where variance is needed).
    DegenerateInput {
        /// Explanation of the degeneracy.
        what: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            StatsError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: need at least {needed}, got {got}")
            }
            StatsError::NonFiniteData => write!(f, "input contains non-finite values"),
            StatsError::NoConvergence { what } => write!(f, "{what} failed to converge"),
            StatsError::DegenerateInput { what } => write!(f, "degenerate input: {what}"),
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StatsError::InvalidParameter {
            name: "alpha",
            value: -1.0,
            constraint: "must be > 0",
        };
        let s = e.to_string();
        assert!(s.contains("alpha"));
        assert!(s.contains("-1"));
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&StatsError::NonFiniteData);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
