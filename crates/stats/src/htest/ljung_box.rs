//! Ljung–Box portmanteau test for autocorrelation.
//!
//! An extension beyond the paper's §4.2 lag-1 test: instead of examining
//! only the first autocorrelation of the inter-arrival sequence, the
//! Ljung-Box statistic pools the first `h` lags,
//! `Q = n(n+2) Σ_{k=1..h} r_k²/(n−k)`, which is asymptotically χ²(h) under
//! independence. Useful as a more powerful cross-check on the §4.2
//! independence verdicts.

use crate::descriptive::autocorrelation;
use crate::special::chi_squared_cdf;
use crate::{Result, StatsError};

/// Outcome of a Ljung-Box test.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LjungBoxResult {
    /// The Q statistic.
    pub statistic: f64,
    /// Lags pooled.
    pub lags: usize,
    /// Asymptotic p-value from χ²(lags).
    pub p_value: f64,
    /// Whether independence is rejected at 5 %.
    pub reject: bool,
}

/// Run the Ljung-Box test over the first `lags` autocorrelations.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when `data.len() <= lags + 1`,
/// [`StatsError::InvalidParameter`] for `lags == 0`, and propagates
/// autocorrelation failures (constant series, non-finite values).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use webpuzzle_stats::dist::{Exponential, Sampler};
/// use webpuzzle_stats::htest::ljung_box;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let iid = Exponential::new(1.0).unwrap().sample_n(&mut rng, 2000);
/// let res = ljung_box(&iid, 10).unwrap();
/// assert!(!res.reject, "iid data rejected: p = {}", res.p_value);
/// ```
pub fn ljung_box(data: &[f64], lags: usize) -> Result<LjungBoxResult> {
    if lags == 0 {
        return Err(StatsError::InvalidParameter {
            name: "lags",
            value: 0.0,
            constraint: "must be >= 1",
        });
    }
    let n = data.len();
    if n <= lags + 1 {
        return Err(StatsError::InsufficientData {
            needed: lags + 2,
            got: n,
        });
    }
    let nf = n as f64;
    let mut q = 0.0;
    for k in 1..=lags {
        let r = autocorrelation(data, k)?;
        q += r * r / (nf - k as f64);
    }
    q *= nf * (nf + 2.0);
    let p_value = 1.0 - chi_squared_cdf(q, lags as f64);
    Ok(LjungBoxResult {
        statistic: q,
        lags,
        p_value,
        reject: p_value < 0.05,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Sampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn iid_rarely_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let exp = Exponential::new(2.0).unwrap();
        let mut rejections = 0;
        for _ in 0..30 {
            let x = exp.sample_n(&mut rng, 1000);
            if ljung_box(&x, 10).unwrap().reject {
                rejections += 1;
            }
        }
        assert!(rejections <= 5, "{rejections}/30 rejections on iid data");
    }

    #[test]
    fn ar1_strongly_rejected() {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(2);
        let mut x = vec![0.0f64; 2000];
        for t in 1..x.len() {
            x[t] = 0.5 * x[t - 1] + rng.random::<f64>() - 0.5;
        }
        let res = ljung_box(&x, 10).unwrap();
        assert!(res.reject);
        assert!(res.p_value < 1e-6);
    }

    #[test]
    fn statistic_grows_with_dependence() {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(3);
        let noise: Vec<f64> = (0..3000).map(|_| rng.random::<f64>() - 0.5).collect();
        let mut weak = vec![0.0f64; 3000];
        let mut strong = vec![0.0f64; 3000];
        for t in 1..3000 {
            weak[t] = 0.2 * weak[t - 1] + noise[t];
            strong[t] = 0.8 * strong[t - 1] + noise[t];
        }
        let qw = ljung_box(&weak, 5).unwrap().statistic;
        let qs = ljung_box(&strong, 5).unwrap().statistic;
        assert!(qs > qw);
    }

    #[test]
    fn validation() {
        assert!(ljung_box(&[1.0, 2.0, 3.0], 0).is_err());
        assert!(ljung_box(&[1.0, 2.0, 3.0], 5).is_err());
        assert!(ljung_box(&[2.0; 100], 3).is_err()); // constant
    }
}
