//! Kwiatkowski–Phillips–Schmidt–Shin (KPSS) stationarity test.
//!
//! Tests the null hypothesis that a series is (level- or trend-) stationary
//! against the alternative of a unit root. The paper uses this test to show
//! that raw request/session arrival series are non-stationary and that the
//! detrended, deseasonalized series are stationary (§4.1, §5.1.1).

use crate::{Result, StatsError};

/// Which stationarity null the KPSS test assumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum KpssType {
    /// Stationary around a constant level (demeaned residuals).
    Level,
    /// Stationary around a deterministic linear trend (detrended residuals).
    Trend,
}

/// Outcome of a KPSS test.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KpssResult {
    /// The KPSS statistic η.
    pub statistic: f64,
    /// Critical value at the 5 % significance level.
    pub critical_5pct: f64,
    /// Critical value at the 1 % significance level.
    pub critical_1pct: f64,
    /// Bartlett bandwidth used for the long-run variance estimate.
    pub bandwidth: usize,
    /// Null used ([`KpssType::Level`] or [`KpssType::Trend`]).
    pub kind: KpssType,
}

impl KpssResult {
    /// True when the stationarity null is **rejected** at 5 % — i.e. the
    /// series looks non-stationary.
    pub fn nonstationary_5pct(&self) -> bool {
        self.statistic > self.critical_5pct
    }

    /// True when the stationarity null is rejected at 1 %.
    pub fn nonstationary_1pct(&self) -> bool {
        self.statistic > self.critical_1pct
    }
}

/// Run the KPSS test with the Schwert-style default bandwidth
/// `l = ⌊4·(n/100)^{1/4}⌋`.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for fewer than 10 observations,
/// [`StatsError::NonFiniteData`] for non-finite input, and
/// [`StatsError::DegenerateInput`] for a constant series.
///
/// # Examples
///
/// ```
/// use rand::{RngExt, SeedableRng};
/// use webpuzzle_stats::htest::{kpss_test, KpssType};
///
/// // White noise is stationary: the null should not be rejected.
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let x: Vec<f64> = (0..2000).map(|_| rng.random::<f64>() - 0.5).collect();
/// let res = kpss_test(&x, KpssType::Level).unwrap();
/// assert!(!res.nonstationary_5pct());
/// ```
pub fn kpss_test(data: &[f64], kind: KpssType) -> Result<KpssResult> {
    let n = data.len();
    let bandwidth = (4.0 * (n as f64 / 100.0).powf(0.25)).floor() as usize;
    kpss_test_with_bandwidth(data, kind, bandwidth)
}

/// Run the KPSS test with an explicit Bartlett bandwidth `l`.
///
/// # Errors
///
/// Same conditions as [`kpss_test`], plus [`StatsError::InvalidParameter`]
/// if `bandwidth >= n`.
pub fn kpss_test_with_bandwidth(
    data: &[f64],
    kind: KpssType,
    bandwidth: usize,
) -> Result<KpssResult> {
    let _span = webpuzzle_obs::span!("stats/kpss");
    webpuzzle_obs::metrics::sharded_counter("stats/kpss_tests").incr();
    let n = data.len();
    if n < 10 {
        return Err(StatsError::InsufficientData { needed: 10, got: n });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteData);
    }
    if bandwidth >= n {
        return Err(StatsError::InvalidParameter {
            name: "bandwidth",
            value: bandwidth as f64,
            constraint: "must be < n",
        });
    }

    // Residuals from the deterministic component under the null.
    let residuals: Vec<f64> = match kind {
        KpssType::Level => {
            let mean = data.iter().sum::<f64>() / n as f64;
            data.iter().map(|x| x - mean).collect()
        }
        KpssType::Trend => {
            // OLS on time index.
            let t_mean = (n as f64 - 1.0) / 2.0;
            let y_mean = data.iter().sum::<f64>() / n as f64;
            let mut sxx = 0.0;
            let mut sxy = 0.0;
            for (t, &y) in data.iter().enumerate() {
                let dt = t as f64 - t_mean;
                sxx += dt * dt;
                sxy += dt * (y - y_mean);
            }
            let slope = sxy / sxx;
            let intercept = y_mean - slope * t_mean;
            data.iter()
                .enumerate()
                .map(|(t, &y)| y - (intercept + slope * t as f64))
                .collect()
        }
    };

    let ss_res: f64 = residuals.iter().map(|e| e * e).sum();
    if ss_res <= 0.0 {
        return Err(StatsError::DegenerateInput {
            what: "constant series has no stochastic component to test",
        });
    }

    // Long-run variance: Newey-West with Bartlett kernel.
    let mut s2 = ss_res / n as f64;
    for s in 1..=bandwidth {
        let w = 1.0 - s as f64 / (bandwidth as f64 + 1.0);
        let gamma: f64 = (s..n).map(|t| residuals[t] * residuals[t - s]).sum::<f64>() / n as f64;
        s2 += 2.0 * w * gamma;
    }
    if s2 <= 0.0 {
        // Numerically possible for pathological series; fall back to the
        // short-run variance so the statistic stays defined.
        s2 = ss_res / n as f64;
    }

    // Partial sums of residuals.
    let mut running = 0.0;
    let mut sum_sq_partial = 0.0;
    for &e in &residuals {
        running += e;
        sum_sq_partial += running * running;
    }
    let statistic = sum_sq_partial / (n as f64 * n as f64 * s2);

    // Critical values from KPSS (1992), Table 1.
    let (critical_5pct, critical_1pct) = match kind {
        KpssType::Level => (0.463, 0.739),
        KpssType::Trend => (0.146, 0.216),
    };

    Ok(KpssResult {
        statistic,
        critical_5pct,
        critical_1pct,
        bandwidth,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random::<f64>() - 0.5).collect()
    }

    #[test]
    fn white_noise_is_stationary() {
        let x = white_noise(5_000, 1);
        let res = kpss_test(&x, KpssType::Level).unwrap();
        assert!(
            !res.nonstationary_5pct(),
            "statistic {} vs critical {}",
            res.statistic,
            res.critical_5pct
        );
    }

    #[test]
    fn random_walk_is_nonstationary() {
        let noise = white_noise(5_000, 2);
        let mut walk = Vec::with_capacity(noise.len());
        let mut acc = 0.0;
        for e in noise {
            acc += e;
            walk.push(acc);
        }
        let res = kpss_test(&walk, KpssType::Level).unwrap();
        assert!(res.nonstationary_1pct(), "statistic {}", res.statistic);
    }

    #[test]
    fn trending_series_nonstationary_in_level_but_ok_in_trend() {
        let x: Vec<f64> = white_noise(5_000, 3)
            .iter()
            .enumerate()
            .map(|(t, e)| 0.01 * t as f64 + e)
            .collect();
        let level = kpss_test(&x, KpssType::Level).unwrap();
        assert!(level.nonstationary_5pct());
        let trend = kpss_test(&x, KpssType::Trend).unwrap();
        assert!(!trend.nonstationary_5pct(), "statistic {}", trend.statistic);
    }

    #[test]
    fn short_series_rejected() {
        assert!(matches!(
            kpss_test(&[1.0; 5], KpssType::Level),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn constant_series_degenerate() {
        assert!(matches!(
            kpss_test(&[2.0; 100], KpssType::Level),
            Err(StatsError::DegenerateInput { .. })
        ));
    }

    #[test]
    fn bandwidth_validation() {
        let x = white_noise(20, 4);
        assert!(kpss_test_with_bandwidth(&x, KpssType::Level, 20).is_err());
        assert!(kpss_test_with_bandwidth(&x, KpssType::Level, 5).is_ok());
    }

    #[test]
    fn result_reports_inputs() {
        let x = white_noise(1_000, 5);
        let res = kpss_test(&x, KpssType::Trend).unwrap();
        assert_eq!(res.kind, KpssType::Trend);
        assert_eq!(res.bandwidth, (4.0 * 10.0f64.powf(0.25)).floor() as usize);
        assert!((res.critical_5pct - 0.146).abs() < 1e-12);
    }
}
