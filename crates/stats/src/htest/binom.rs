//! Binomial meta-tests of §4.2.
//!
//! The paper aggregates per-subinterval verdicts (lag-1 autocorrelation below
//! the 1.96/√n band; Anderson–Darling below its critical value) into a single
//! conclusion via a binomial model: if each of `n` subintervals independently
//! "passes" with probability 0.95 under the null, the number of passes `S`
//! follows `B(n, 0.95)`, and an observed count `s` with `P(S = s) < 0.05`
//! rejects the null with 95 % confidence.

use crate::special::binomial_pmf;
use crate::{Result, StatsError};

/// Result of the binomial count meta-test.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BinomialCountResult {
    /// Number of subintervals.
    pub n: u64,
    /// Number of subintervals that passed the per-interval test.
    pub passes: u64,
    /// `P(S = passes)` under `S ~ B(n, p_pass)`.
    pub pmf: f64,
    /// Whether the null is rejected (`pmf < 0.05`).
    pub reject: bool,
}

/// The paper's count test: given `passes` of `n` subintervals passing a
/// per-interval 95 % test, reject the global null when `P(S = passes) < 0.05`
/// for `S ~ B(n, 0.95)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] when `passes > n` or `n == 0`.
///
/// # Examples
///
/// ```
/// use webpuzzle_stats::htest::binomial_count_test;
///
/// // All 4 hourly intervals pass: P(S=4) ≈ 0.81 → do not reject.
/// assert!(!binomial_count_test(4, 4).unwrap().reject);
/// // Only 2 pass: P(S=2) ≈ 0.013 → reject.
/// assert!(binomial_count_test(4, 2).unwrap().reject);
/// ```
pub fn binomial_count_test(n: u64, passes: u64) -> Result<BinomialCountResult> {
    if n == 0 {
        return Err(StatsError::InvalidParameter {
            name: "n",
            value: 0.0,
            constraint: "must be >= 1",
        });
    }
    if passes > n {
        return Err(StatsError::InvalidParameter {
            name: "passes",
            value: passes as f64,
            constraint: "must be <= n",
        });
    }
    let pmf = binomial_pmf(n, 0.95, passes);
    Ok(BinomialCountResult {
        n,
        passes,
        pmf,
        reject: pmf < 0.05,
    })
}

/// Direction of a detected correlation imbalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SignBalance {
    /// No significant imbalance between positive and negative correlations.
    Balanced,
    /// Significantly more positive autocorrelations than chance allows.
    SignificantlyPositive,
    /// Significantly more negative autocorrelations than chance allows.
    SignificantlyNegative,
}

/// The paper's sign test: under independence, each subinterval's lag-1
/// autocorrelation is positive with probability ½. With `positives` of `n`
/// positive, declare a significant imbalance when the one-sided tail
/// probability is below 2.5 %.
///
/// Note: the paper's text says `X` follows `B(4, 0.95)`, but its own premise
/// ("negative with probability 0.5 and positive with probability 0.5") makes
/// the null `B(n, 0.5)`; we implement `B(n, 0.5)` (documented deviation in
/// DESIGN.md).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] when `positives > n` or `n == 0`.
///
/// # Examples
///
/// ```
/// use webpuzzle_stats::htest::{sign_balance_test, SignBalance};
///
/// // 24 of 24 positive is wildly imbalanced.
/// assert_eq!(
///     sign_balance_test(24, 24).unwrap(),
///     SignBalance::SignificantlyPositive
/// );
/// // 2 of 4: perfectly balanced.
/// assert_eq!(sign_balance_test(4, 2).unwrap(), SignBalance::Balanced);
/// ```
pub fn sign_balance_test(n: u64, positives: u64) -> Result<SignBalance> {
    if n == 0 {
        return Err(StatsError::InvalidParameter {
            name: "n",
            value: 0.0,
            constraint: "must be >= 1",
        });
    }
    if positives > n {
        return Err(StatsError::InvalidParameter {
            name: "positives",
            value: positives as f64,
            constraint: "must be <= n",
        });
    }
    // One-sided exact binomial tail probabilities under B(n, 1/2).
    let upper: f64 = (positives..=n).map(|k| binomial_pmf(n, 0.5, k)).sum();
    let lower: f64 = (0..=positives).map(|k| binomial_pmf(n, 0.5, k)).sum();
    if upper < 0.025 {
        Ok(SignBalance::SignificantlyPositive)
    } else if lower < 0.025 {
        Ok(SignBalance::SignificantlyNegative)
    } else {
        Ok(SignBalance::Balanced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_test_four_intervals() {
        // B(4, 0.95): P(4)≈0.8145, P(3)≈0.1715, P(2)≈0.0135, P(1)≈0.00047.
        assert!(!binomial_count_test(4, 4).unwrap().reject);
        assert!(!binomial_count_test(4, 3).unwrap().reject);
        assert!(binomial_count_test(4, 2).unwrap().reject);
        assert!(binomial_count_test(4, 1).unwrap().reject);
        assert!(binomial_count_test(4, 0).unwrap().reject);
    }

    #[test]
    fn count_test_twentyfour_intervals() {
        // B(24, 0.95): the 10-minute-rate variant of §4.2.
        assert!(!binomial_count_test(24, 24).unwrap().reject);
        assert!(!binomial_count_test(24, 23).unwrap().reject);
        assert!(!binomial_count_test(24, 22).unwrap().reject);
        assert!(binomial_count_test(24, 20).unwrap().reject);
        assert!(binomial_count_test(24, 10).unwrap().reject);
    }

    #[test]
    fn count_test_validates() {
        assert!(binomial_count_test(0, 0).is_err());
        assert!(binomial_count_test(4, 5).is_err());
    }

    #[test]
    fn sign_test_balanced_small_n() {
        // With n = 4, even 4/4 positive has tail prob 1/16 = 0.0625 > 0.025,
        // so no imbalance can be declared — matching the weak power the
        // paper's 4-interval design has.
        for k in 0..=4 {
            assert_eq!(sign_balance_test(4, k).unwrap(), SignBalance::Balanced);
        }
    }

    #[test]
    fn sign_test_detects_imbalance_large_n() {
        assert_eq!(
            sign_balance_test(24, 20).unwrap(),
            SignBalance::SignificantlyPositive
        );
        assert_eq!(
            sign_balance_test(24, 4).unwrap(),
            SignBalance::SignificantlyNegative
        );
        assert_eq!(sign_balance_test(24, 12).unwrap(), SignBalance::Balanced);
    }

    #[test]
    fn sign_test_validates() {
        assert!(sign_balance_test(0, 0).is_err());
        assert!(sign_balance_test(4, 5).is_err());
    }
}
