//! Anderson–Darling goodness-of-fit test for the exponential distribution
//! with estimated rate.
//!
//! This is the per-interval exponentiality test of the paper's §4.2: the null
//! is `H₀: F(x) = 1 − e^{−λ̂x}` with `λ̂ = 1/x̄` estimated from the sample.
//! Following Stephens (1967/1974), the statistic is modified to
//! `A²·(1 + 0.6/n)` and compared to the 5 % critical value **1.341** (the
//! exact constants quoted by the paper).

use crate::{Result, StatsError};

/// The 5 % critical value for the modified statistic `A²(1 + 0.6/n)` when
/// the exponential rate is estimated from the data (Stephens).
pub const AD_EXPONENTIAL_CRITICAL_5PCT: f64 = 1.341;

/// Outcome of an Anderson–Darling exponentiality test.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AndersonDarlingResult {
    /// The raw A² statistic.
    pub a_squared: f64,
    /// The modified statistic `A²(1 + 0.6/n)` actually compared to the
    /// critical value.
    pub modified: f64,
    /// Critical value used (5 %).
    pub critical: f64,
    /// Whether the exponential null is rejected at 5 %.
    pub reject: bool,
    /// Estimated rate `λ̂ = 1/x̄`.
    pub rate: f64,
    /// Sample size.
    pub n: usize,
}

/// Run the Anderson–Darling test for exponentially distributed data with the
/// rate estimated by `λ̂ = 1/x̄`.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for fewer than 5 observations,
/// [`StatsError::NonFiniteData`] for non-finite input, and
/// [`StatsError::DegenerateInput`] if any observation is negative or the
/// mean is zero.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use webpuzzle_stats::dist::{Exponential, Sampler};
/// use webpuzzle_stats::htest::anderson_darling_exponential;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let sample = Exponential::new(1.0).unwrap().sample_n(&mut rng, 1000);
/// let res = anderson_darling_exponential(&sample).unwrap();
/// assert!(!res.reject);
/// ```
pub fn anderson_darling_exponential(data: &[f64]) -> Result<AndersonDarlingResult> {
    let n = data.len();
    if n < 5 {
        return Err(StatsError::InsufficientData { needed: 5, got: n });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteData);
    }
    if data.iter().any(|&x| x < 0.0) {
        return Err(StatsError::DegenerateInput {
            what: "exponential test requires non-negative data",
        });
    }
    let mean = data.iter().sum::<f64>() / n as f64;
    if mean <= 0.0 {
        return Err(StatsError::DegenerateInput {
            what: "zero-mean sample cannot be exponential",
        });
    }
    let rate = 1.0 / mean;

    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));

    // Transform to uniforms under the null, clamped away from {0, 1} so the
    // logs below stay finite (ties at zero occur with 1-second-granularity
    // timestamps spread deterministically).
    const EPS: f64 = 1e-12;
    let u: Vec<f64> = sorted
        .iter()
        .map(|&x| (1.0 - (-rate * x).exp()).clamp(EPS, 1.0 - EPS))
        .collect();

    let nf = n as f64;
    let mut sum = 0.0;
    for i in 0..n {
        let weight = (2 * i + 1) as f64;
        sum += weight * (u[i].ln() + (1.0 - u[n - 1 - i]).ln());
    }
    let a_squared = -nf - sum / nf;
    let modified = a_squared * (1.0 + 0.6 / nf);
    Ok(AndersonDarlingResult {
        a_squared,
        modified,
        critical: AD_EXPONENTIAL_CRITICAL_5PCT,
        reject: modified > AD_EXPONENTIAL_CRITICAL_5PCT,
        rate,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, LogNormal, Pareto, Sampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accepts_true_exponential() {
        let mut rng = StdRng::seed_from_u64(100);
        let mut rejections = 0;
        let trials = 40;
        for _ in 0..trials {
            let sample = Exponential::new(3.0).unwrap().sample_n(&mut rng, 500);
            if anderson_darling_exponential(&sample).unwrap().reject {
                rejections += 1;
            }
        }
        // 5% test: expect ~2 rejections out of 40; allow generous slack.
        assert!(rejections <= 6, "{rejections}/{trials} rejections");
    }

    #[test]
    fn rejects_pareto() {
        let mut rng = StdRng::seed_from_u64(101);
        let sample = Pareto::new(1.5, 1.0).unwrap().sample_n(&mut rng, 1000);
        assert!(anderson_darling_exponential(&sample).unwrap().reject);
    }

    #[test]
    fn rejects_lognormal() {
        let mut rng = StdRng::seed_from_u64(102);
        let sample = LogNormal::new(0.0, 1.5).unwrap().sample_n(&mut rng, 1000);
        assert!(anderson_darling_exponential(&sample).unwrap().reject);
    }

    #[test]
    fn rejects_uniform() {
        // Uniform data is very much not exponential.
        let sample: Vec<f64> = (0..1000).map(|i| 1.0 + i as f64 / 1000.0).collect();
        assert!(anderson_darling_exponential(&sample).unwrap().reject);
    }

    #[test]
    fn scale_invariance() {
        // The test is scale-free: multiplying the sample by a constant must
        // not change the statistic (rate is re-estimated).
        let mut rng = StdRng::seed_from_u64(103);
        let sample = Exponential::new(1.0).unwrap().sample_n(&mut rng, 300);
        let scaled: Vec<f64> = sample.iter().map(|x| x * 1000.0).collect();
        let a = anderson_darling_exponential(&sample).unwrap();
        let b = anderson_darling_exponential(&scaled).unwrap();
        assert!((a.a_squared - b.a_squared).abs() < 1e-9);
    }

    #[test]
    fn input_validation() {
        assert!(anderson_darling_exponential(&[1.0, 2.0]).is_err());
        assert!(anderson_darling_exponential(&[1.0, -2.0, 3.0, 4.0, 5.0]).is_err());
        assert!(anderson_darling_exponential(&[1.0, f64::NAN, 3.0, 4.0, 5.0]).is_err());
        assert!(anderson_darling_exponential(&[0.0; 10]).is_err());
    }

    #[test]
    fn zeros_from_tied_timestamps_tolerated() {
        // Deterministic spreading can yield zero inter-arrivals at interval
        // boundaries; the clamp must keep the statistic finite.
        let mut sample = vec![0.0, 0.0, 0.0];
        sample.extend((1..200).map(|i| i as f64 * 0.01));
        let res = anderson_darling_exponential(&sample).unwrap();
        assert!(res.a_squared.is_finite());
    }
}
