//! Hypothesis tests used by the paper's methodology.
//!
//! * [`kpss_test`] — Kwiatkowski-Phillips-Schmidt-Shin stationarity test
//!   (the paper's §4.1/§5.1 stationarity gate before Hurst estimation).
//! * [`anderson_darling_exponential`] — Anderson-Darling goodness-of-fit for
//!   exponential inter-arrival times with estimated rate (§4.2).
//! * [`binomial_count_test`] / [`sign_balance_test`] — the binomial
//!   meta-tests that aggregate per-interval verdicts
//!   into a single Poisson/non-Poisson conclusion (§4.2).

mod anderson_darling;
mod binom;
mod kpss;
mod ljung_box;

pub use anderson_darling::{anderson_darling_exponential, AndersonDarlingResult};
pub use binom::{binomial_count_test, sign_balance_test, BinomialCountResult, SignBalance};
pub use kpss::{kpss_test, kpss_test_with_bandwidth, KpssResult, KpssType};
pub use ljung_box::{ljung_box, LjungBoxResult};
