//! Normal (Gaussian) distribution.

use super::{open_unit, ContinuousDistribution, Sampler};
use crate::special::{normal_cdf, normal_quantile};
use crate::{Result, StatsError};
use rand::{Rng, RngExt};

/// Normal distribution `N(μ, σ²)`.
///
/// Sampling uses the Box–Muller transform (both variates generated, one
/// cached would add statefulness; we simply draw fresh pairs — throughput is
/// dominated by downstream work in this suite).
///
/// # Examples
///
/// ```
/// use webpuzzle_stats::dist::{ContinuousDistribution, Normal};
///
/// let n = Normal::standard();
/// assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Create a normal distribution with mean `mu` and standard deviation
    /// `sigma > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `mu` is not finite or
    /// `sigma` is not finite and positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mu",
                value: mu,
                constraint: "must be finite",
            });
        }
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                value: sigma,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Normal { mu, sigma })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// Mean parameter `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation parameter `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draw a standard normal variate via Box–Muller.
    pub fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1 = open_unit(rng);
        let u2: f64 = rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Default for Normal {
    fn default() -> Self {
        Normal::standard()
    }
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        normal_cdf((x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * normal_quantile(p)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
}

impl Sampler for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * Normal::standard_sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::*;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -2.0).is_err());
    }

    #[test]
    fn standard_matches_default() {
        assert_eq!(Normal::standard(), Normal::default());
    }

    #[test]
    fn quantile_roundtrip() {
        check_quantile_roundtrip(&Normal::new(3.0, 2.5).unwrap());
    }

    #[test]
    fn sampler_matches_cdf() {
        check_sampler_matches_cdf(&Normal::new(-1.0, 2.0).unwrap(), 20_000, 0.02, 21);
    }

    #[test]
    fn sample_moments() {
        let d = Normal::new(5.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let xs = d.sample_n(&mut rng, 100_000);
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!((m - 5.0).abs() < 0.05);
        assert!((v - 9.0).abs() < 0.2);
    }
}
