//! Parametric distributions used throughout the workload suite.
//!
//! Every distribution implements [`ContinuousDistribution`] (density, CDF,
//! quantile, moments) and [`Sampler`] (inverse-transform or transform-based
//! sampling from any [`rand::Rng`]). The set matches what the paper needs:
//! exponential (Poisson inter-arrivals, §4.2), Pareto and bounded Pareto
//! (heavy tails, §5.2 and the ON/OFF arrival substrate), lognormal (the
//! competing model in Downey's curvature test), and the normal distribution
//! (fGn synthesis and test statistics).

mod exponential;
mod lognormal;
mod normal;
mod pareto;
mod weibull;

pub use exponential::Exponential;
pub use lognormal::LogNormal;
pub use normal::Normal;
pub use pareto::{BoundedPareto, Pareto};
pub use weibull::Weibull;

use rand::{Rng, RngExt};

/// A continuous univariate distribution.
///
/// This trait is object-safe so heterogeneous model lists (e.g. the curvature
/// test comparing Pareto vs lognormal candidates) can hold
/// `Box<dyn ContinuousDistribution>`.
pub trait ContinuousDistribution {
    /// Probability density function at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P[X ≤ x]`.
    fn cdf(&self, x: f64) -> f64;

    /// Complementary CDF `P[X > x]`; the quantity LLCD plots display.
    fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Quantile (inverse CDF) for `p ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `p` is outside `(0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Mean, or `f64::INFINITY` when it does not exist (heavy tails with
    /// tail index α ≤ 1).
    fn mean(&self) -> f64;

    /// Variance, or `f64::INFINITY` when it does not exist (α ≤ 2).
    fn variance(&self) -> f64;
}

/// Sampling support for a distribution.
pub trait Sampler {
    /// Draw one value using the supplied random-number generator.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draw `n` values into a fresh vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Draw a uniform variate in the open interval (0, 1), safe for use in
/// inverse-transform sampling (never exactly 0 or 1).
pub(crate) fn open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Kolmogorov–Smirnov style sanity check: empirical CDF of `n` samples
    /// should track the analytic CDF within `tol` at every sample point.
    pub fn check_sampler_matches_cdf<D>(dist: &D, n: usize, tol: f64, seed: u64)
    where
        D: ContinuousDistribution + Sampler,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = dist.sample_n(&mut rng, n);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut max_gap = 0.0f64;
        for (i, &x) in xs.iter().enumerate() {
            let emp = (i + 1) as f64 / n as f64;
            let gap = (emp - dist.cdf(x)).abs();
            max_gap = max_gap.max(gap);
        }
        assert!(
            max_gap < tol,
            "empirical/analytic CDF gap {max_gap} exceeds {tol}"
        );
    }

    /// Check quantile/cdf round-trip across the body of the distribution.
    pub fn check_quantile_roundtrip<D: ContinuousDistribution>(dist: &D) {
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = dist.quantile(p);
            assert!(
                (dist.cdf(x) - p).abs() < 1e-9,
                "cdf(quantile({p})) = {} != {p}",
                dist.cdf(x)
            );
        }
    }
}
