//! Lognormal distribution.

use super::{ContinuousDistribution, Normal, Sampler};
use crate::special::{normal_cdf, normal_quantile};
use crate::{Result, StatsError};
use rand::Rng;

/// Lognormal distribution: `ln X ~ N(μ, σ²)`.
///
/// The lognormal is the paper's foil for the Pareto model: it is **not**
/// heavy-tailed in the sense of equation (3), yet for large σ its LLCD plot
/// is nearly straight "at least to a point" (Downey 2001), which is exactly
/// why the curvature test in [`crate::htest`]/`webpuzzle-heavytail` exists.
///
/// # Examples
///
/// ```
/// use webpuzzle_stats::dist::{ContinuousDistribution, LogNormal};
///
/// let ln = LogNormal::new(0.0, 1.0).unwrap();
/// // Median of a lognormal is exp(μ).
/// assert!((ln.quantile(0.5) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create a lognormal with log-mean `mu` and log-std-dev `sigma > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `mu` is not finite or
    /// `sigma` is not finite and positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mu",
                value: mu,
                constraint: "must be finite",
            });
        }
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                value: sigma,
                constraint: "must be finite and > 0",
            });
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Log-scale mean parameter `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-scale standard deviation parameter `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDistribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * normal_quantile(p)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
}

impl Sampler for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::standard_sample(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::*;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
    }

    #[test]
    fn moments() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        assert!((d.mean() - (1.125f64).exp()).abs() < 1e-10);
        let s2 = 0.25f64;
        let expected_var = (s2.exp() - 1.0) * (2.0 + s2).exp();
        assert!((d.variance() - expected_var).abs() < 1e-9);
    }

    #[test]
    fn quantile_roundtrip() {
        check_quantile_roundtrip(&LogNormal::new(2.0, 1.3).unwrap());
    }

    #[test]
    fn sampler_matches_cdf() {
        check_sampler_matches_cdf(&LogNormal::new(0.5, 1.0).unwrap(), 20_000, 0.02, 33);
    }

    #[test]
    fn support_positive_only() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
    }

    #[test]
    fn llcd_slope_steepens_in_extreme_tail() {
        // The property the curvature test exploits: unlike a Pareto, the
        // lognormal's LLCD slope becomes steeper (more negative) deeper in
        // the tail.
        let d = LogNormal::new(0.0, 2.0).unwrap();
        let slope = |x1: f64, x2: f64| (d.ccdf(x2).ln() - d.ccdf(x1).ln()) / (x2.ln() - x1.ln());
        let body = slope(1.0, 10.0);
        let tail = slope(100.0, 1000.0);
        assert!(
            tail < body,
            "tail slope {tail} should be steeper than body {body}"
        );
    }
}
