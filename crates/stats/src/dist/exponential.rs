//! Exponential distribution.

use super::{open_unit, ContinuousDistribution, Sampler};
use crate::{Result, StatsError};
use rand::Rng;

/// Exponential distribution with rate `λ` (mean `1/λ`).
///
/// This is the inter-arrival distribution of a homogeneous Poisson process —
/// the null model the paper formally rejects for Web request arrivals (§4.2).
///
/// # Examples
///
/// ```
/// use webpuzzle_stats::dist::{ContinuousDistribution, Exponential};
///
/// let exp = Exponential::new(2.0).unwrap();
/// assert!((exp.mean() - 0.5).abs() < 1e-12);
/// assert!((exp.cdf(0.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create an exponential distribution with the given rate `λ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `rate` is not a finite
    /// positive number.
    pub fn new(rate: f64) -> Result<Self> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Exponential { rate })
    }

    /// Create from the mean `1/λ`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `mean` is not finite and
    /// positive.
    pub fn from_mean(mean: f64) -> Result<Self> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and > 0",
            });
        }
        Self::new(1.0 / mean)
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDistribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        -(1.0 - p).ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
}

impl Sampler for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -open_unit(rng).ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::*;
    use super::*;

    #[test]
    fn rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::from_mean(0.0).is_err());
    }

    #[test]
    fn moments() {
        let d = Exponential::new(4.0).unwrap();
        assert!((d.mean() - 0.25).abs() < 1e-12);
        assert!((d.variance() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn median_matches_formula() {
        let d = Exponential::new(1.5).unwrap();
        assert!((d.quantile(0.5) - (2.0f64).ln() / 1.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_roundtrip() {
        check_quantile_roundtrip(&Exponential::new(0.7).unwrap());
    }

    #[test]
    fn sampler_matches_cdf() {
        check_sampler_matches_cdf(&Exponential::new(3.0).unwrap(), 20_000, 0.02, 42);
    }

    #[test]
    fn pdf_zero_below_support() {
        let d = Exponential::new(1.0).unwrap();
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
    }
}
