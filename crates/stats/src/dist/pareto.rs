//! Classical and bounded Pareto distributions.

use super::{open_unit, ContinuousDistribution, Sampler};
use crate::{Result, StatsError};
use rand::Rng;

/// Classical Pareto distribution with shape `α` and location (minimum) `k`,
/// the paper's equation (4): `F(x) = 1 − (k/x)^α` for `x ≥ k`.
///
/// This is the canonical heavy-tailed model: for `1 < α ≤ 2` the mean is
/// finite but the variance infinite; for `α ≤ 1` even the mean is infinite.
///
/// # Examples
///
/// ```
/// use webpuzzle_stats::dist::{ContinuousDistribution, Pareto};
///
/// let p = Pareto::new(1.5, 10.0).unwrap();
/// assert!((p.ccdf(20.0) - (0.5f64).powf(1.5)).abs() < 1e-12);
/// assert!(p.variance().is_infinite()); // α ≤ 2 ⇒ infinite variance
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    alpha: f64,
    k: f64,
}

impl Pareto {
    /// Create a Pareto distribution with shape `alpha > 0` and location
    /// `k > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if either parameter is not
    /// finite and positive.
    pub fn new(alpha: f64, k: f64) -> Result<Self> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must be finite and > 0",
            });
        }
        if !k.is_finite() || k <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "k",
                value: k,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Pareto { alpha, k })
    }

    /// The tail index (shape) `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The location (minimum value) `k`.
    pub fn location(&self) -> f64 {
        self.k
    }
}

impl ContinuousDistribution for Pareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.k {
            0.0
        } else {
            self.alpha * self.k.powf(self.alpha) / x.powf(self.alpha + 1.0)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.k {
            0.0
        } else {
            1.0 - (self.k / x).powf(self.alpha)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        self.k / (1.0 - p).powf(1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.k / (self.alpha - 1.0)
        }
    }

    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.alpha;
            self.k * self.k * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }
}

impl Sampler for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform: k / U^{1/α}.
        self.k / open_unit(rng).powf(1.0 / self.alpha)
    }
}

/// Bounded (truncated) Pareto on `[low, high]` with shape `α`.
///
/// Used by the workload generator where a physical cap exists — e.g. think
/// times inside a session are bounded above by the 30-minute session
/// threshold, and ON/OFF period lengths need finite support to keep the
/// simulated week well-defined.
///
/// # Examples
///
/// ```
/// use webpuzzle_stats::dist::{BoundedPareto, ContinuousDistribution};
///
/// let bp = BoundedPareto::new(1.2, 1.0, 1800.0).unwrap();
/// assert_eq!(bp.cdf(0.5), 0.0);
/// assert!((bp.cdf(1800.0) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    low: f64,
    high: f64,
    // Cached: low^alpha and the normalizing constant 1 - (low/high)^alpha.
    low_a: f64,
    norm: f64,
}

impl BoundedPareto {
    /// Create a bounded Pareto with shape `alpha > 0` on `0 < low < high`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `alpha` or `low` is not
    /// positive and finite, or if `high <= low`.
    pub fn new(alpha: f64, low: f64, high: f64) -> Result<Self> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must be finite and > 0",
            });
        }
        if !low.is_finite() || low <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "low",
                value: low,
                constraint: "must be finite and > 0",
            });
        }
        if !high.is_finite() || high <= low {
            return Err(StatsError::InvalidParameter {
                name: "high",
                value: high,
                constraint: "must be finite and > low",
            });
        }
        Ok(BoundedPareto {
            alpha,
            low,
            high,
            low_a: low.powf(alpha),
            norm: 1.0 - (low / high).powf(alpha),
        })
    }

    /// The tail index (shape) `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Lower bound of the support.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound of the support.
    pub fn high(&self) -> f64 {
        self.high
    }
}

impl ContinuousDistribution for BoundedPareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.low || x > self.high {
            0.0
        } else {
            self.alpha * self.low_a / (x.powf(self.alpha + 1.0) * self.norm)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.low {
            0.0
        } else if x >= self.high {
            1.0
        } else {
            (1.0 - (self.low / x).powf(self.alpha)) / self.norm
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        self.low / (1.0 - p * self.norm).powf(1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        let a = self.alpha;
        if (a - 1.0).abs() < 1e-12 {
            // α = 1 limit: E = L ln(H/L) / (1 - L/H)
            self.low * (self.high / self.low).ln() / self.norm
        } else {
            (a * self.low_a / (self.norm * (a - 1.0)))
                * (self.low.powf(1.0 - a) - self.high.powf(1.0 - a))
        }
    }

    fn variance(&self) -> f64 {
        let a = self.alpha;
        let ex2 = if (a - 2.0).abs() < 1e-12 {
            a * self.low_a / self.norm * (self.high / self.low).ln()
        } else {
            (a * self.low_a / (self.norm * (a - 2.0)))
                * (self.low.powf(2.0 - a) - self.high.powf(2.0 - a))
        };
        let m = self.mean();
        (ex2 - m * m).max(0.0)
    }
}

impl Sampler for BoundedPareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = open_unit(rng);
        self.low / (1.0 - u * self.norm).powf(1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::*;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pareto_rejects_bad_params() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
        assert!(Pareto::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn pareto_moment_regimes() {
        // α ≤ 1: infinite mean and variance.
        let p = Pareto::new(0.9, 1.0).unwrap();
        assert!(p.mean().is_infinite());
        assert!(p.variance().is_infinite());
        // 1 < α ≤ 2: finite mean, infinite variance.
        let p = Pareto::new(1.5, 1.0).unwrap();
        assert!((p.mean() - 3.0).abs() < 1e-12);
        assert!(p.variance().is_infinite());
        // α > 2: both finite.
        let p = Pareto::new(3.0, 2.0).unwrap();
        assert!((p.mean() - 3.0).abs() < 1e-12);
        assert!((p.variance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_llcd_slope_is_minus_alpha() {
        // The defining property the LLCD method exploits:
        // d log F̄ / d log x = -α exactly, everywhere.
        let p = Pareto::new(1.7, 5.0).unwrap();
        let (x1, x2) = (10.0, 1000.0);
        let slope = (p.ccdf(x2).ln() - p.ccdf(x1).ln()) / (x2.ln() - x1.ln());
        assert!((slope + 1.7).abs() < 1e-10);
    }

    #[test]
    fn pareto_quantile_roundtrip() {
        check_quantile_roundtrip(&Pareto::new(1.3, 2.0).unwrap());
    }

    #[test]
    fn pareto_sampler_matches_cdf() {
        check_sampler_matches_cdf(&Pareto::new(1.5, 1.0).unwrap(), 20_000, 0.02, 7);
    }

    #[test]
    fn bounded_rejects_bad_bounds() {
        assert!(BoundedPareto::new(1.0, 2.0, 2.0).is_err());
        assert!(BoundedPareto::new(1.0, 0.0, 2.0).is_err());
        assert!(BoundedPareto::new(-1.0, 1.0, 2.0).is_err());
    }

    #[test]
    fn bounded_support_is_respected() {
        let bp = BoundedPareto::new(1.1, 1.0, 100.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5_000 {
            let x = bp.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x), "sample {x} outside support");
        }
    }

    #[test]
    fn bounded_quantile_roundtrip() {
        check_quantile_roundtrip(&BoundedPareto::new(0.8, 1.0, 500.0).unwrap());
    }

    #[test]
    fn bounded_sampler_matches_cdf() {
        check_sampler_matches_cdf(
            &BoundedPareto::new(1.2, 1.0, 1800.0).unwrap(),
            20_000,
            0.02,
            13,
        );
    }

    #[test]
    fn bounded_mean_matches_monte_carlo() {
        let bp = BoundedPareto::new(1.4, 1.0, 1000.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let m: f64 = (0..n).map(|_| bp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (m - bp.mean()).abs() / bp.mean() < 0.05,
            "MC mean {m} vs analytic {}",
            bp.mean()
        );
    }

    #[test]
    fn bounded_alpha_one_mean_limit() {
        // Continuity near α = 1.
        let near = BoundedPareto::new(1.0 + 1e-9, 1.0, 100.0).unwrap().mean();
        let at = BoundedPareto::new(1.0, 1.0, 100.0).unwrap().mean();
        assert!((near - at).abs() / at < 1e-4);
    }
}
