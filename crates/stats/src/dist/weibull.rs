//! Weibull distribution.

use super::{open_unit, ContinuousDistribution, Sampler};
use crate::special::gamma;
use crate::{Result, StatsError};
use rand::Rng;

/// Weibull distribution with shape `k` and scale `λ`:
/// `F(x) = 1 − exp(−(x/λ)^k)`.
///
/// A *stretched-exponential* model often proposed as a middle ground
/// between exponential and Pareto session/transfer models: for `k < 1` the
/// tail is sub-exponential but still lighter than any power law, so it is a
/// useful additional foil for the heavy-tail discrimination machinery
/// (Hill plots of Weibull data must report NS).
///
/// # Examples
///
/// ```
/// use webpuzzle_stats::dist::{ContinuousDistribution, Weibull};
///
/// // k = 1 reduces to Exponential(1/λ).
/// let w = Weibull::new(1.0, 2.0).unwrap();
/// assert!((w.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Create a Weibull distribution with `shape > 0` and `scale > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when either parameter is
    /// not finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        if !shape.is_finite() || shape <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "shape",
                value: shape,
                constraint: "must be finite and > 0",
            });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "scale",
                value: scale,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Weibull { shape, scale })
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDistribution for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return if self.shape < 1.0 {
                f64::INFINITY
            } else if self.shape == 1.0 {
                1.0 / self.scale
            } else {
                0.0
            };
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }

    fn variance(&self) -> f64 {
        let g1 = gamma(1.0 + 1.0 / self.shape);
        let g2 = gamma(1.0 + 2.0 / self.shape);
        self.scale * self.scale * (g2 - g1 * g1)
    }
}

impl Sampler for Weibull {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * (-open_unit(rng).ln()).powf(1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::*;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, -1.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn reduces_to_exponential_at_shape_one() {
        let w = Weibull::new(1.0, 0.5).unwrap();
        // Exponential with rate 2: mean 0.5, variance 0.25.
        assert!((w.mean() - 0.5).abs() < 1e-10);
        assert!((w.variance() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn rayleigh_moments_at_shape_two() {
        // k = 2 is the Rayleigh distribution: mean = λ√π/2.
        let w = Weibull::new(2.0, 3.0).unwrap();
        assert!((w.mean() - 3.0 * std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_roundtrip() {
        check_quantile_roundtrip(&Weibull::new(0.7, 2.0).unwrap());
        check_quantile_roundtrip(&Weibull::new(2.5, 0.3).unwrap());
    }

    #[test]
    fn sampler_matches_cdf() {
        check_sampler_matches_cdf(&Weibull::new(0.6, 1.0).unwrap(), 20_000, 0.02, 44);
        check_sampler_matches_cdf(&Weibull::new(3.0, 2.0).unwrap(), 20_000, 0.02, 45);
    }

    #[test]
    fn stretched_exponential_is_subexponential_but_not_pareto() {
        // For k < 1 the LLCD slope keeps steepening — no straight-line
        // (power-law) regime exists.
        let w = Weibull::new(0.5, 1.0).unwrap();
        let slope = |x1: f64, x2: f64| (w.ccdf(x2).ln() - w.ccdf(x1).ln()) / (x2.ln() - x1.ln());
        let body = slope(1.0, 10.0);
        let tail = slope(10.0, 100.0);
        assert!(tail < body, "tail slope {tail} vs body {body}");
    }

    #[test]
    fn pdf_boundary_behaviour() {
        assert_eq!(Weibull::new(0.5, 1.0).unwrap().pdf(0.0), f64::INFINITY);
        assert_eq!(Weibull::new(2.0, 1.0).unwrap().pdf(0.0), 0.0);
        assert!((Weibull::new(1.0, 2.0).unwrap().pdf(0.0) - 0.5).abs() < 1e-12);
        assert_eq!(Weibull::new(1.0, 1.0).unwrap().pdf(-1.0), 0.0);
    }
}
