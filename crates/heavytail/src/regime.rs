//! Moment-existence classification of a tail index.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The qualitative moment regimes of a heavy-tailed distribution with tail
/// index α (paper §3.2): which moments exist decides whether quantities like
/// "average session length" are even meaningful to report (§5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TailRegime {
    /// `α ≤ 1`: infinite mean and variance.
    InfiniteMean,
    /// `1 < α ≤ 2`: finite mean, infinite variance.
    InfiniteVariance,
    /// `α > 2`: finite mean and variance.
    FiniteVariance,
}

impl TailRegime {
    /// Classify a tail index.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not finite and positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use webpuzzle_heavytail::TailRegime;
    ///
    /// assert_eq!(TailRegime::from_alpha(0.95), TailRegime::InfiniteMean);
    /// assert_eq!(TailRegime::from_alpha(1.67), TailRegime::InfiniteVariance);
    /// assert_eq!(TailRegime::from_alpha(2.33), TailRegime::FiniteVariance);
    /// ```
    pub fn from_alpha(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "tail index must be finite and positive, got {alpha}"
        );
        if alpha <= 1.0 {
            TailRegime::InfiniteMean
        } else if alpha <= 2.0 {
            TailRegime::InfiniteVariance
        } else {
            TailRegime::FiniteVariance
        }
    }

    /// Whether the mean exists.
    pub fn has_finite_mean(&self) -> bool {
        !matches!(self, TailRegime::InfiniteMean)
    }

    /// Whether the variance exists.
    pub fn has_finite_variance(&self) -> bool {
        matches!(self, TailRegime::FiniteVariance)
    }
}

impl fmt::Display for TailRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TailRegime::InfiniteMean => "infinite mean and variance",
            TailRegime::InfiniteVariance => "finite mean, infinite variance",
            TailRegime::FiniteVariance => "finite mean and variance",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries() {
        assert_eq!(TailRegime::from_alpha(1.0), TailRegime::InfiniteMean);
        assert_eq!(TailRegime::from_alpha(2.0), TailRegime::InfiniteVariance);
        assert_eq!(TailRegime::from_alpha(2.0001), TailRegime::FiniteVariance);
    }

    #[test]
    fn moment_flags() {
        assert!(!TailRegime::InfiniteMean.has_finite_mean());
        assert!(TailRegime::InfiniteVariance.has_finite_mean());
        assert!(!TailRegime::InfiniteVariance.has_finite_variance());
        assert!(TailRegime::FiniteVariance.has_finite_variance());
    }

    #[test]
    #[should_panic(expected = "tail index must be finite")]
    fn rejects_nonpositive() {
        TailRegime::from_alpha(0.0);
    }

    #[test]
    fn display_readable() {
        assert!(TailRegime::InfiniteVariance
            .to_string()
            .contains("infinite variance"));
    }
}
