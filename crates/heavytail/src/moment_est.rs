//! The Dekkers–Einmahl–de Haan "moment" estimator of the extreme-value
//! index — an extension beyond the paper's LLCD/Hill pair.
//!
//! The Hill estimator is only consistent for γ = 1/α > 0 (true power laws).
//! The moment estimator
//!
//! `γ̂ = M₁ + 1 − ½ (1 − M₁²/M₂)⁻¹`,
//! `Mᵣ = (1/k) Σ_{i<k} (ln X₍ᵢ₎ − ln X₍ₖ₎)ʳ`
//!
//! is consistent for *all* γ ∈ ℝ: it returns γ ≈ 1/α on Pareto tails,
//! γ ≈ 0 on light (exponential-class) tails, and γ < 0 on finite-endpoint
//! tails. That makes it a sharper companion verdict for the paper's tables:
//! NS cells (where Hill climbs forever) resolve to "γ ≈ 0, light tail"
//! instead of an unexplained blank.

use crate::Result;
use serde::{Deserialize, Serialize};
use webpuzzle_stats::StatsError;

/// Result of the moment estimator at one tail fraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MomentEstimate {
    /// Extreme-value index γ̂ (γ = 1/α for heavy tails).
    pub gamma: f64,
    /// Number of upper-order statistics used.
    pub k: usize,
}

impl MomentEstimate {
    /// The implied tail index `α = 1/γ` when the tail is heavy
    /// (`γ > threshold`); `None` for light or bounded tails.
    pub fn alpha(&self, heavy_threshold: f64) -> Option<f64> {
        (self.gamma > heavy_threshold).then(|| 1.0 / self.gamma)
    }
}

/// Run the moment estimator on the upper `tail_fraction` of the sample.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for a tail fraction outside
/// `(0, 1]`, [`StatsError::InsufficientData`] for fewer than 50
/// observations (or fewer than 10 tail points), and
/// [`StatsError::DegenerateInput`] for non-positive or tied-constant data.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use webpuzzle_heavytail::moment_estimator;
/// use webpuzzle_stats::dist::{Pareto, Sampler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(6);
/// let sample = Pareto::new(2.0, 1.0)?.sample_n(&mut rng, 20_000);
/// let est = moment_estimator(&sample, 0.1)?;
/// // γ = 1/α = 0.5.
/// assert!((est.gamma - 0.5).abs() < 0.1, "γ = {}", est.gamma);
/// # Ok(())
/// # }
/// ```
pub fn moment_estimator(data: &[f64], tail_fraction: f64) -> Result<MomentEstimate> {
    let _span = webpuzzle_obs::span!("tail/moment");
    if !(tail_fraction > 0.0 && tail_fraction <= 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "tail_fraction",
            value: tail_fraction,
            constraint: "must be in (0, 1]",
        });
    }
    let n = data.len();
    if n < 50 {
        return Err(StatsError::InsufficientData { needed: 50, got: n });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteData);
    }
    if data.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::DegenerateInput {
            what: "moment estimator requires strictly positive data",
        });
    }
    let mut desc = data.to_vec();
    desc.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
    let k = (((n as f64) * tail_fraction) as usize).min(n - 1).max(10);
    let ln_xk = desc[k].ln();
    let mut m1 = 0.0;
    let mut m2 = 0.0;
    for &x in &desc[..k] {
        let d = x.ln() - ln_xk;
        m1 += d;
        m2 += d * d;
    }
    m1 /= k as f64;
    m2 /= k as f64;
    if m2 <= 0.0 {
        return Err(StatsError::DegenerateInput {
            what: "tail has no spread above the threshold order statistic",
        });
    }
    let gamma = m1 + 1.0 - 0.5 / (1.0 - m1 * m1 / m2);
    Ok(MomentEstimate { gamma, k })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use webpuzzle_stats::dist::{Exponential, LogNormal, Pareto, Sampler, Weibull};

    #[test]
    fn pareto_gamma_is_inverse_alpha() {
        let mut rng = StdRng::seed_from_u64(1);
        for &alpha in &[1.0, 1.5, 2.5] {
            let data = Pareto::new(alpha, 1.0).unwrap().sample_n(&mut rng, 30_000);
            let est = moment_estimator(&data, 0.1).unwrap();
            assert!(
                (est.gamma - 1.0 / alpha).abs() < 0.12,
                "α = {alpha}: γ = {}",
                est.gamma
            );
            let implied = est.alpha(0.1).expect("heavy tail detected");
            assert!((implied - alpha).abs() < 0.6);
        }
    }

    #[test]
    fn exponential_gamma_near_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = Exponential::new(1.0).unwrap().sample_n(&mut rng, 30_000);
        let est = moment_estimator(&data, 0.1).unwrap();
        assert!(est.gamma.abs() < 0.12, "γ = {}", est.gamma);
        assert!(est.alpha(0.15).is_none());
    }

    #[test]
    fn weibull_light_tail_gamma_near_zero() {
        // Weibull (any shape) is in the Gumbel domain: γ = 0.
        let mut rng = StdRng::seed_from_u64(3);
        let data = Weibull::new(0.7, 1.0).unwrap().sample_n(&mut rng, 30_000);
        let est = moment_estimator(&data, 0.1).unwrap();
        assert!(est.gamma.abs() < 0.2, "γ = {}", est.gamma);
    }

    #[test]
    fn bounded_tail_gamma_negative() {
        // Uniform-like (finite endpoint): γ = -1 in theory.
        let data: Vec<f64> = (1..=20_000).map(|i| i as f64 / 20_000.0).collect();
        let est = moment_estimator(&data, 0.1).unwrap();
        assert!(est.gamma < -0.3, "γ = {}", est.gamma);
    }

    #[test]
    fn lognormal_sits_between() {
        // Lognormal is subexponential but γ = 0 asymptotically; at finite n
        // the estimate is small-positive — visibly below a true Pareto with
        // comparable body.
        let mut rng = StdRng::seed_from_u64(4);
        let ln_data = LogNormal::new(0.0, 1.5).unwrap().sample_n(&mut rng, 30_000);
        let pareto_data = Pareto::new(1.2, 1.0).unwrap().sample_n(&mut rng, 30_000);
        let g_ln = moment_estimator(&ln_data, 0.1).unwrap().gamma;
        let g_par = moment_estimator(&pareto_data, 0.1).unwrap().gamma;
        assert!(g_ln < g_par - 0.2, "lognormal γ {g_ln} vs Pareto γ {g_par}");
    }

    #[test]
    fn validation() {
        assert!(moment_estimator(&[1.0; 10], 0.1).is_err());
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!(moment_estimator(&data, 0.0).is_err());
        assert!(moment_estimator(&data, 1.5).is_err());
        let mut bad = data.clone();
        bad[0] = -1.0;
        assert!(moment_estimator(&bad, 0.1).is_err());
        assert!(moment_estimator(&[5.0; 100], 0.5).is_err());
    }
}
