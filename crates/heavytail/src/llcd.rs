//! LLCD (log-log complementary distribution) tail-index estimation.

use crate::ccdf::EmpiricalCcdf;
use crate::Result;
use serde::{Deserialize, Serialize};
use webpuzzle_stats::regression::ols;
use webpuzzle_stats::StatsError;

/// Result of a least-squares fit to the linear portion of an LLCD plot —
/// the paper's `α_LLCD`, `σ_α` and `R²` columns in Tables 2–4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlcdFit {
    /// Estimated tail index `α = −slope`.
    pub alpha: f64,
    /// Standard error of the slope (and hence of α).
    pub std_err: f64,
    /// Coefficient of determination of the log-log regression.
    pub r_squared: f64,
    /// Threshold θ above which the fit was performed.
    pub threshold: f64,
    /// Number of order statistics in the fitted tail.
    pub n_tail: usize,
}

/// Fit the LLCD slope over the upper `tail_fraction` of the sample
/// (e.g. `0.2` fits above the 80th percentile), the practical version of
/// "select θ above which the plot appears linear".
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] when `tail_fraction` is outside
/// `(0, 1]`, and propagates CCDF/regression failures (including
/// [`StatsError::InsufficientData`] when fewer than 10 tail points remain).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use webpuzzle_heavytail::llcd_fit;
/// use webpuzzle_stats::dist::{Pareto, Sampler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(8);
/// let sample = Pareto::new(1.67, 10.0)?.sample_n(&mut rng, 10_000);
/// let fit = llcd_fit(&sample, 0.5)?;
/// assert!((fit.alpha - 1.67).abs() < 0.1);
/// assert!(fit.r_squared > 0.98);
/// # Ok(())
/// # }
/// ```
pub fn llcd_fit(data: &[f64], tail_fraction: f64) -> Result<LlcdFit> {
    let _span = webpuzzle_obs::span!("tail/llcd");
    if !(tail_fraction > 0.0 && tail_fraction <= 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "tail_fraction",
            value: tail_fraction,
            constraint: "must be in (0, 1]",
        });
    }
    let ccdf = EmpiricalCcdf::new(data)?;
    let threshold = ccdf.quantile(1.0 - tail_fraction);
    llcd_fit_with_ccdf(&ccdf, threshold)
}

/// Fit the LLCD slope above an explicit threshold θ (the paper's Figure 11
/// usage: "for sessions longer than about 1000 seconds, the plot is nearly
/// linear").
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for a non-positive threshold and
/// [`StatsError::InsufficientData`] when fewer than 10 points lie above it.
pub fn llcd_fit_above(data: &[f64], threshold: f64) -> Result<LlcdFit> {
    if !threshold.is_finite() || threshold <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "threshold",
            value: threshold,
            constraint: "must be finite and > 0",
        });
    }
    let ccdf = EmpiricalCcdf::new(data)?;
    llcd_fit_with_ccdf(&ccdf, threshold)
}

fn llcd_fit_with_ccdf(ccdf: &EmpiricalCcdf, threshold: f64) -> Result<LlcdFit> {
    let log_thresh = threshold.log10();
    let pts: Vec<(f64, f64)> = ccdf
        .llcd_points()
        .into_iter()
        .filter(|(lx, _)| *lx >= log_thresh)
        .collect();
    if pts.len() < 10 {
        return Err(StatsError::InsufficientData {
            needed: 10,
            got: pts.len(),
        });
    }
    let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
    let fit = ols(&xs, &ys)?;
    Ok(LlcdFit {
        alpha: -fit.slope,
        std_err: fit.slope_std_err,
        r_squared: fit.r_squared,
        threshold,
        n_tail: pts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use webpuzzle_stats::dist::{Exponential, LogNormal, Pareto, Sampler};

    #[test]
    fn recovers_alpha_for_pure_pareto() {
        let mut rng = StdRng::seed_from_u64(1);
        for &alpha in &[0.8, 1.5, 2.3] {
            let sample = Pareto::new(alpha, 1.0).unwrap().sample_n(&mut rng, 20_000);
            let fit = llcd_fit(&sample, 0.5).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.12,
                "α = {alpha}, estimated {}",
                fit.alpha
            );
            assert!(fit.r_squared > 0.97, "R² = {}", fit.r_squared);
        }
    }

    #[test]
    fn threshold_variant_matches_fraction_variant() {
        let mut rng = StdRng::seed_from_u64(2);
        let sample = Pareto::new(1.6, 5.0).unwrap().sample_n(&mut rng, 10_000);
        let by_frac = llcd_fit(&sample, 0.2).unwrap();
        let by_thresh = llcd_fit_above(&sample, by_frac.threshold).unwrap();
        assert!((by_frac.alpha - by_thresh.alpha).abs() < 1e-9);
        assert_eq!(by_frac.n_tail, by_thresh.n_tail);
    }

    #[test]
    fn exponential_tail_not_hyperbolic() {
        // An exponential LLCD curves down sharply: the fit should produce a
        // large "alpha" and/or poor linearity relative to a Pareto.
        let mut rng = StdRng::seed_from_u64(3);
        let sample = Exponential::new(0.5).unwrap().sample_n(&mut rng, 20_000);
        let fit = llcd_fit(&sample, 0.2).unwrap();
        assert!(fit.alpha > 2.5, "exponential pseudo-α = {}", fit.alpha);
    }

    #[test]
    fn lognormal_looks_linear_to_a_point() {
        // Downey's warning: a high-variance lognormal produces a deceptively
        // good LLCD fit — R² alone cannot reject it. This test pins the
        // deceptive behaviour we must guard against with the curvature test.
        let mut rng = StdRng::seed_from_u64(4);
        let sample = LogNormal::new(0.0, 2.5).unwrap().sample_n(&mut rng, 20_000);
        let fit = llcd_fit(&sample, 0.2).unwrap();
        assert!(fit.r_squared > 0.95, "R² = {}", fit.r_squared);
    }

    #[test]
    fn fit_reports_tail_size() {
        let mut rng = StdRng::seed_from_u64(5);
        let sample = Pareto::new(1.2, 1.0).unwrap().sample_n(&mut rng, 1_000);
        let fit = llcd_fit(&sample, 0.14).unwrap();
        assert!(fit.n_tail >= 120 && fit.n_tail <= 160, "{}", fit.n_tail);
    }

    #[test]
    fn validation() {
        assert!(llcd_fit(&[1.0; 100], 0.0).is_err());
        assert!(llcd_fit(&[1.0; 100], 1.5).is_err());
        assert!(llcd_fit_above(&[1.0; 100], -1.0).is_err());
        // Too few points above threshold.
        let small: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        assert!(llcd_fit_above(&small, 15.0).is_err());
    }
}
