//! Empirical complementary cumulative distribution function.

use crate::Result;
use webpuzzle_stats::StatsError;

/// The empirical CCDF `F̄(x) = P[X > x]` of a positive sample, the object
/// LLCD plots display on log-log axes.
///
/// # Examples
///
/// ```
/// use webpuzzle_heavytail::EmpiricalCcdf;
///
/// let ccdf = EmpiricalCcdf::new(&[1.0, 2.0, 2.0, 4.0]).unwrap();
/// assert!((ccdf.eval(0.5) - 1.0).abs() < 1e-12);
/// assert!((ccdf.eval(2.0) - 0.25).abs() < 1e-12); // only 4.0 exceeds 2.0
/// assert!((ccdf.eval(5.0) - 0.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCcdf {
    sorted: Vec<f64>,
}

impl EmpiricalCcdf {
    /// Build the empirical CCDF of a sample of strictly positive values.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] for an empty sample,
    /// [`StatsError::NonFiniteData`] for non-finite values, and
    /// [`StatsError::DegenerateInput`] if any value is not strictly positive
    /// (LLCD analysis needs `log x`).
    pub fn new(data: &[f64]) -> Result<Self> {
        if data.is_empty() {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::NonFiniteData);
        }
        if data.iter().any(|&x| x <= 0.0) {
            return Err(StatsError::DegenerateInput {
                what: "CCDF analysis requires strictly positive data",
            });
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Ok(EmpiricalCcdf { sorted })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true via the constructor).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted underlying sample (ascending).
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluate `P[X > x]`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of values <= x.
        let le = self.sorted.partition_point(|&v| v <= x);
        (self.sorted.len() - le) as f64 / self.sorted.len() as f64
    }

    /// The LLCD point cloud: `(log10 x_(i), log10 F̄(x_(i)))` for each order
    /// statistic with positive CCDF (the largest observation is excluded
    /// because its empirical CCDF is zero).
    pub fn llcd_points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut pts = Vec::with_capacity(n.saturating_sub(1));
        for (i, &x) in self.sorted.iter().enumerate() {
            let surv = (n - i - 1) as f64 / n as f64;
            if surv > 0.0 {
                pts.push((x.log10(), surv.log10()));
            }
        }
        pts
    }

    /// The empirical quantile at probability `p ∈ [0, 1]` (by order
    /// statistic, no interpolation — adequate for tail thresholds).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        let idx = ((p * self.sorted.len() as f64) as usize).min(self.sorted.len() - 1);
        self.sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_definition() {
        let c = EmpiricalCcdf::new(&[3.0, 1.0, 2.0]).unwrap();
        assert!((c.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((c.eval(1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.eval(1.5) - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.eval(3.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonincreasing() {
        let data: Vec<f64> = (1..=100).map(|i| (i as f64).sqrt()).collect();
        let c = EmpiricalCcdf::new(&data).unwrap();
        let mut prev = 1.0;
        for i in 0..200 {
            let x = i as f64 * 0.06;
            let v = c.eval(x);
            assert!(v <= prev + 1e-15);
            prev = v;
        }
    }

    #[test]
    fn llcd_points_exclude_zero_survival() {
        let c = EmpiricalCcdf::new(&[1.0, 10.0, 100.0]).unwrap();
        let pts = c.llcd_points();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].0 - 0.0).abs() < 1e-12); // log10(1)
        assert!((pts[0].1 - (2.0f64 / 3.0).log10()).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(EmpiricalCcdf::new(&[]).is_err());
        assert!(EmpiricalCcdf::new(&[1.0, -1.0]).is_err());
        assert!(EmpiricalCcdf::new(&[0.0]).is_err());
        assert!(EmpiricalCcdf::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn quantile_thresholds() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let c = EmpiricalCcdf::new(&data).unwrap();
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 100.0);
        assert!((c.quantile(0.86) - 87.0).abs() <= 1.0); // 86th percentile-ish
        assert_eq!(c.len(), 100);
        assert!(!c.is_empty());
    }
}
