//! Heavy-tail analysis toolkit for the `webpuzzle` suite.
//!
//! Implements the three cross-validating methods the paper applies to the
//! intra-session characteristics (session length in seconds, requests per
//! session, bytes per session — §5.2):
//!
//! * [`LlcdFit`] / [`llcd_fit`] — least-squares slope of the log-log
//!   complementary distribution plot above a tail threshold, giving the
//!   tail index `α_LLCD`, its standard error, and R².
//! * [`hill_estimate`] / [`hill_plot`] — the Hill estimator over the range
//!   of upper-order statistics, with automatic plateau detection that
//!   reports **NS** (no stabilization) exactly like the paper's tables.
//! * [`curvature_test`] — Downey's Monte-Carlo curvature test that asks
//!   whether the extreme-tail curvature of the empirical LLCD is consistent
//!   with a fitted Pareto (straight line) or lognormal (downward curving).
//!
//! [`TailRegime`] classifies an estimated α into the moment-existence
//! regimes the paper reasons about (infinite mean / infinite variance /
//! finite variance).
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use webpuzzle_heavytail::{hill_estimate, llcd_fit, TailRegime};
//! use webpuzzle_stats::dist::{Pareto, Sampler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let sample = Pareto::new(1.5, 1.0)?.sample_n(&mut rng, 20_000);
//!
//! let llcd = llcd_fit(&sample, 0.2)?;
//! assert!((llcd.alpha - 1.5).abs() < 0.15);
//! assert_eq!(TailRegime::from_alpha(llcd.alpha), TailRegime::InfiniteVariance);
//!
//! let hill = hill_estimate(&sample, 0.15)?;
//! assert!((hill.alpha.unwrap() - 1.5).abs() < 0.15);
//! # Ok(())
//! # }
//! ```

mod ccdf;
mod curvature;
mod hill;
mod llcd;
mod moment_est;
mod regime;

pub use ccdf::EmpiricalCcdf;
pub use curvature::{curvature_test, CurvatureModel, CurvatureTest};
pub use hill::{
    hill_estimate, hill_plot, hill_stability_scan, HillEstimate, HillStabilityScan,
    STABILITY_GRID_POINTS,
};
pub use llcd::{llcd_fit, llcd_fit_above, LlcdFit};
pub use moment_est::{moment_estimator, MomentEstimate};
pub use regime::TailRegime;

pub use webpuzzle_stats::StatsError;

/// Crate-wide result alias (errors are [`StatsError`]).
pub type Result<T> = std::result::Result<T, StatsError>;
