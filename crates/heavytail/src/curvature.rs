//! Downey's curvature test: can the extreme-tail curvature of an empirical
//! LLCD plot be explained by a fitted Pareto (straight) or lognormal
//! (curving) model?
//!
//! The test statistic is the quadratic coefficient of a degree-2 polynomial
//! fitted to the tail of the LLCD plot. Its null distribution is obtained by
//! Monte Carlo: draw replicate samples of the same size from the fitted
//! model, compute their curvatures, and read off a two-sided rank p-value.
//! A small p-value means the observed curvature is not something the model
//! produces — reject the model.
//!
//! The paper notes (§5.2.1) that the test is sensitive to the estimated α
//! and the particular random replicates; [`curvature_test`] therefore takes
//! both the tail fraction and the RNG seed explicitly so the sensitivity is
//! reproducible.

use crate::ccdf::EmpiricalCcdf;
use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use webpuzzle_stats::dist::Sampler;
use webpuzzle_stats::fit::{fit_lognormal, fit_pareto_tail};
use webpuzzle_stats::StatsError;

/// Candidate model for the curvature test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CurvatureModel {
    /// Pareto tail: LLCD is a straight line — zero curvature under the null.
    Pareto,
    /// Lognormal: LLCD curves downward in the extreme tail.
    LogNormal,
}

/// Result of a curvature test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurvatureTest {
    /// Model tested.
    pub model: CurvatureModel,
    /// Observed curvature (quadratic coefficient of the LLCD fit).
    pub curvature: f64,
    /// Two-sided Monte-Carlo rank p-value.
    pub p_value: f64,
    /// Number of Monte-Carlo replicates used.
    pub replicates: usize,
    /// Fitted tail index (Pareto) or log-σ (lognormal) — recorded because
    /// the paper found the p-value sensitive to it.
    pub fitted_param: f64,
}

impl CurvatureTest {
    /// Whether the model is rejected at 5 %.
    pub fn reject_5pct(&self) -> bool {
        self.p_value < 0.05
    }
}

/// Run Downey's curvature test of `model` against the upper `tail_fraction`
/// of `data`, using `replicates` Monte-Carlo draws seeded by `seed`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `tail_fraction` outside
/// `(0, 1)` or `replicates < 19` (a rank p-value needs at least 19 draws
/// for 5 % resolution), plus fit/CCDF failures.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use webpuzzle_heavytail::{curvature_test, CurvatureModel};
/// use webpuzzle_stats::dist::{Pareto, Sampler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let sample = Pareto::new(1.5, 1.0)?.sample_n(&mut rng, 3_000);
/// let test = curvature_test(&sample, CurvatureModel::Pareto, 0.3, 99, 7)?;
/// assert!(!test.reject_5pct(), "true Pareto rejected: p = {}", test.p_value);
/// # Ok(())
/// # }
/// ```
pub fn curvature_test(
    data: &[f64],
    model: CurvatureModel,
    tail_fraction: f64,
    replicates: usize,
    seed: u64,
) -> Result<CurvatureTest> {
    let _span = webpuzzle_obs::span!("tail/curvature");
    if !(tail_fraction > 0.0 && tail_fraction < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "tail_fraction",
            value: tail_fraction,
            constraint: "must be in (0, 1)",
        });
    }
    if replicates < 19 {
        return Err(StatsError::InvalidParameter {
            name: "replicates",
            value: replicates as f64,
            constraint: "must be >= 19 for a 5% rank p-value",
        });
    }
    let observed = tail_curvature(data, tail_fraction)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.len();

    type ReplicateSampler = Box<dyn FnMut(&mut StdRng) -> Vec<f64>>;
    let (fitted_param, sample_fn): (f64, ReplicateSampler) = match model {
        CurvatureModel::Pareto => {
            let ccdf = EmpiricalCcdf::new(data)?;
            let threshold = ccdf.quantile(1.0 - tail_fraction);
            let pareto = fit_pareto_tail(data, threshold)?;
            let n_tail = data.iter().filter(|&&x| x >= threshold).count();
            // Replicate only the tail: draw n_tail points from the
            // fitted Pareto, whose curvature is then compared over the
            // full replicate (it IS a tail sample).
            (
                pareto.alpha(),
                Box::new(move |rng| pareto.sample_n(rng, n_tail)),
            )
        }
        CurvatureModel::LogNormal => {
            let ln = fit_lognormal(data)?;
            (ln.sigma(), Box::new(move |rng| ln.sample_n(rng, n)))
        }
    };

    let mut sample_fn = sample_fn;
    let mut more_extreme_low = 0usize;
    let mut more_extreme_high = 0usize;
    let mut used = 0usize;
    for _ in 0..replicates {
        let replicate = sample_fn(&mut rng);
        // For the Pareto case the replicate is already a pure tail, so its
        // curvature is measured over the whole replicate; for the lognormal
        // case we take the same upper fraction as in the observed data.
        let frac = match model {
            CurvatureModel::Pareto => 0.999,
            CurvatureModel::LogNormal => tail_fraction,
        };
        if let Ok(c) = tail_curvature(&replicate, frac) {
            if c <= observed {
                more_extreme_low += 1;
            }
            if c >= observed {
                more_extreme_high += 1;
            }
            used += 1;
        }
    }
    webpuzzle_obs::metrics::sharded_counter("heavytail/curvature_replicates").add(used as u64);
    if used < 19 {
        return Err(StatsError::NoConvergence {
            what: "curvature Monte Carlo (too many degenerate replicates)",
        });
    }
    // Two-sided rank p-value with the +1 correction.
    let p_low = (more_extreme_low + 1) as f64 / (used + 1) as f64;
    let p_high = (more_extreme_high + 1) as f64 / (used + 1) as f64;
    let p_value = (2.0 * p_low.min(p_high)).min(1.0);

    Ok(CurvatureTest {
        model,
        curvature: observed,
        p_value,
        replicates: used,
        fitted_param,
    })
}

/// Curvature (quadratic coefficient) of the LLCD plot over the upper
/// `tail_fraction` of the sample.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when fewer than 10 tail points
/// remain, plus CCDF construction failures.
pub(crate) fn tail_curvature(data: &[f64], tail_fraction: f64) -> Result<f64> {
    let ccdf = EmpiricalCcdf::new(data)?;
    let threshold = ccdf.quantile((1.0 - tail_fraction).max(0.0));
    let log_thresh = threshold.log10();
    let pts: Vec<(f64, f64)> = ccdf
        .llcd_points()
        .into_iter()
        .filter(|(lx, _)| *lx >= log_thresh)
        .collect();
    if pts.len() < 10 {
        return Err(StatsError::InsufficientData {
            needed: 10,
            got: pts.len(),
        });
    }
    quadratic_coefficient(&pts)
}

// Least-squares quadratic coefficient of y ≈ a + b·x + c·x² via the 3×3
// normal equations. Centering x first keeps the system well-conditioned.
fn quadratic_coefficient(pts: &[(f64, f64)]) -> Result<f64> {
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let (mut s1, mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0, 0.0);
    let (mut sy, mut sxy, mut sx2y) = (0.0, 0.0, 0.0);
    for &(x0, y) in pts {
        let x = x0 - mx;
        let x2 = x * x;
        s1 += x;
        s2 += x2;
        s3 += x2 * x;
        s4 += x2 * x2;
        sy += y;
        sxy += x * y;
        sx2y += x2 * y;
    }
    // Normal equations:
    // [ n  s1 s2 ] [a]   [sy  ]
    // [ s1 s2 s3 ] [b] = [sxy ]
    // [ s2 s3 s4 ] [c]   [sx2y]
    let mut m = [[n, s1, s2, sy], [s1, s2, s3, sxy], [s2, s3, s4, sx2y]];
    // Gaussian elimination with partial pivoting.
    for col in 0..3 {
        let pivot = (col..3)
            .max_by(|&a, &b| m[a][col].abs().partial_cmp(&m[b][col].abs()).unwrap())
            .unwrap();
        m.swap(col, pivot);
        if m[col][col].abs() < 1e-12 {
            return Err(StatsError::DegenerateInput {
                what: "singular system in quadratic LLCD fit",
            });
        }
        for row in col + 1..3 {
            let f = m[row][col] / m[col][col];
            let pivot_row = m[col];
            for (k, cell) in m[row].iter_mut().enumerate().skip(col) {
                *cell -= f * pivot_row[k];
            }
        }
    }
    // Back-substitute only c (the last unknown).
    Ok(m[2][3] / m[2][2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use webpuzzle_stats::dist::{Exponential, LogNormal, Pareto};

    fn pareto_sample(alpha: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        Pareto::new(alpha, 1.0).unwrap().sample_n(&mut rng, n)
    }

    fn lognormal_sample(sigma: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        LogNormal::new(0.0, sigma).unwrap().sample_n(&mut rng, n)
    }

    #[test]
    fn quadratic_fit_exact() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64 * 0.3;
                (x, 1.0 + 2.0 * x - 0.7 * x * x)
            })
            .collect();
        let c = quadratic_coefficient(&pts).unwrap();
        assert!((c + 0.7).abs() < 1e-9, "c = {c}");
    }

    #[test]
    fn pareto_tail_has_near_zero_curvature() {
        let sample = pareto_sample(1.5, 20_000, 31);
        let c = tail_curvature(&sample, 0.2).unwrap();
        assert!(c.abs() < 0.5, "curvature = {c}");
    }

    #[test]
    fn lognormal_tail_curves_down() {
        let sample = lognormal_sample(1.5, 20_000, 32);
        let c = tail_curvature(&sample, 0.2).unwrap();
        assert!(c < -0.2, "curvature = {c}");
    }

    #[test]
    fn true_pareto_not_rejected_under_pareto() {
        let sample = pareto_sample(1.6, 5_000, 33);
        let t = curvature_test(&sample, CurvatureModel::Pareto, 0.3, 99, 1).unwrap();
        assert!(!t.reject_5pct(), "p = {}", t.p_value);
    }

    #[test]
    fn true_lognormal_not_rejected_under_lognormal() {
        let sample = lognormal_sample(1.8, 5_000, 34);
        let t = curvature_test(&sample, CurvatureModel::LogNormal, 0.3, 99, 2).unwrap();
        assert!(!t.reject_5pct(), "p = {}", t.p_value);
    }

    #[test]
    fn exponential_rejected_under_pareto() {
        // Exponential data curves hard; a fitted Pareto cannot reproduce it.
        let mut rng = StdRng::seed_from_u64(35);
        let sample = Exponential::new(1.0).unwrap().sample_n(&mut rng, 5_000);
        let t = curvature_test(&sample, CurvatureModel::Pareto, 0.3, 99, 3).unwrap();
        assert!(t.reject_5pct(), "p = {}", t.p_value);
    }

    #[test]
    fn p_value_sensitive_to_seed() {
        // Paper observation (3): the MC p-value moves with the simulated
        // sample. Check it varies across seeds without changing the verdict
        // wildly.
        let sample = pareto_sample(1.5, 3_000, 36);
        let p1 = curvature_test(&sample, CurvatureModel::Pareto, 0.3, 99, 10)
            .unwrap()
            .p_value;
        let p2 = curvature_test(&sample, CurvatureModel::Pareto, 0.3, 99, 11)
            .unwrap()
            .p_value;
        assert_ne!(p1, p2);
    }

    #[test]
    fn validation() {
        let sample = pareto_sample(1.5, 1_000, 37);
        assert!(curvature_test(&sample, CurvatureModel::Pareto, 0.0, 99, 1).is_err());
        assert!(curvature_test(&sample, CurvatureModel::Pareto, 0.3, 5, 1).is_err());
    }

    #[test]
    fn reports_fitted_param() {
        let sample = pareto_sample(1.4, 5_000, 38);
        let t = curvature_test(&sample, CurvatureModel::Pareto, 0.3, 99, 4).unwrap();
        assert!((t.fitted_param - 1.4).abs() < 0.2, "α̂ = {}", t.fitted_param);
        assert_eq!(t.model, CurvatureModel::Pareto);
        assert_eq!(t.replicates, 99);
    }
}
