//! Hill estimator of the tail index, with plateau (stabilization)
//! detection.

use crate::Result;
use serde::{Deserialize, Serialize};
use webpuzzle_stats::StatsError;

/// Result of Hill-plot analysis — the paper's `α_Hill` cells, including the
/// **NS** ("did not stabilize") outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HillEstimate {
    /// The stabilized estimate, or `None` when the plot never settles (NS).
    pub alpha: Option<f64>,
    /// Coefficient of variation of `α_{k,n}` over the assessment window —
    /// the stability diagnostic (small = plateau).
    pub plateau_cv: f64,
    /// Number of upper-order statistics at the right edge of the plot.
    pub k_max: usize,
}

impl HillEstimate {
    /// Whether the Hill plot stabilized.
    pub fn stabilized(&self) -> bool {
        self.alpha.is_some()
    }
}

/// The Hill plot: `(k, α_{k,n})` for `k = k_min .. k_max`, where
/// `α_{k,n} = 1/H_{k,n}` and `H_{k,n} = (1/k) Σ_{i≤k} ln X_(i) − ln X_(k+1)`
/// over the descending order statistics (paper equation (5)).
///
/// `tail_fraction` bounds `k_max = ⌊tail_fraction · n⌋` (the paper uses the
/// upper 14 % for Figure 12).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `tail_fraction` outside
/// `(0, 1]`, [`StatsError::InsufficientData`] when fewer than 25 usable
/// order statistics exist, and [`StatsError::DegenerateInput`] for
/// non-positive data.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use webpuzzle_heavytail::hill_plot;
/// use webpuzzle_stats::dist::{Pareto, Sampler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(12);
/// let sample = Pareto::new(1.58, 1.0)?.sample_n(&mut rng, 5_000);
/// let plot = hill_plot(&sample, 0.14)?;
/// let (_, alpha_at_kmax) = *plot.last().unwrap();
/// assert!((alpha_at_kmax - 1.58).abs() < 0.2);
/// # Ok(())
/// # }
/// ```
pub fn hill_plot(data: &[f64], tail_fraction: f64) -> Result<Vec<(usize, f64)>> {
    if !(tail_fraction > 0.0 && tail_fraction <= 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "tail_fraction",
            value: tail_fraction,
            constraint: "must be in (0, 1]",
        });
    }
    let n = data.len();
    if n < 50 {
        return Err(StatsError::InsufficientData { needed: 50, got: n });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteData);
    }
    if data.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::DegenerateInput {
            what: "Hill estimation requires strictly positive data",
        });
    }
    let mut desc = data.to_vec();
    desc.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
    // k must leave X_(k+1) available.
    let k_max = (((n as f64) * tail_fraction) as usize).min(n - 1);
    let k_min = 5usize;
    if k_max <= k_min + 20 {
        return Err(StatsError::InsufficientData {
            needed: k_min + 21,
            got: k_max,
        });
    }
    let logs: Vec<f64> = desc.iter().map(|&x| x.ln()).collect();
    let mut prefix = 0.0;
    let mut out = Vec::with_capacity(k_max - k_min + 1);
    for k in 1..=k_max {
        prefix += logs[k - 1];
        if k >= k_min {
            let h = prefix / k as f64 - logs[k];
            // Guard against round-off on (near-)tied order statistics: an
            // h of ~1e-16 would otherwise produce an absurd α ~ 1e16.
            if h > 1e-9 {
                out.push((k, 1.0 / h));
            }
        }
    }
    if out.len() < 20 {
        return Err(StatsError::DegenerateInput {
            what: "Hill plot degenerate (too many tied order statistics)",
        });
    }
    webpuzzle_obs::metrics::sharded_counter("heavytail/hill_order_stats").add(k_max as u64);
    Ok(out)
}

/// Hill estimate with automatic plateau detection over the outer half of the
/// plot: if the coefficient of variation of `α_{k,n}` across the assessment
/// window is below 7.5 %, the plot is declared stable and the window mean is
/// returned; otherwise `alpha` is `None` (**NS**, as annotated in the
/// paper's Tables 2–4).
///
/// # Errors
///
/// Same conditions as [`hill_plot`].
pub fn hill_estimate(data: &[f64], tail_fraction: f64) -> Result<HillEstimate> {
    let _span = webpuzzle_obs::span!("tail/hill");
    const CV_THRESHOLD: f64 = 0.075;
    let plot = hill_plot(data, tail_fraction)?;
    let k_max = plot.last().expect("plot non-empty").0;
    // Assessment window: the outer half of the plot (large k), where the
    // paper reads off the settled value.
    let window: Vec<f64> = plot
        .iter()
        .filter(|(k, _)| *k >= k_max / 2)
        .map(|(_, a)| *a)
        .collect();
    let mean = window.iter().sum::<f64>() / window.len() as f64;
    let var = window.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / window.len() as f64;
    let cv = if mean > 0.0 {
        var.sqrt() / mean
    } else {
        f64::INFINITY
    };
    Ok(HillEstimate {
        alpha: if cv < CV_THRESHOLD { Some(mean) } else { None },
        plateau_cv: cv,
        k_max,
    })
}

/// A Hill-plot stability scan: `α(k)` sampled on a log-spaced k grid,
/// plateau detection over the outer half, and an asymptotic confidence
/// interval at the plateau edge.
///
/// This is the diagnostics-grade companion to [`hill_estimate`]: instead
/// of a bare point estimate it reports *where* the plot settles
/// (`plateau_k_lo ..= plateau_k_hi`), *how flat* it is there
/// (`plateau_cv`), and the sampling error `α · z / √k` implied by the
/// Hill estimator's asymptotic normality (`√k (α̂/α − 1) → N(0, 1)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HillStabilityScan {
    /// `(k, α(k))` on the log-spaced grid, ascending in k.
    pub grid: Vec<(usize, f64)>,
    /// The plateau mean, or `None` when the plot never settles (NS).
    pub alpha: Option<f64>,
    /// Half-width of the asymptotic CI `α · z / √k` evaluated at the
    /// plateau's left edge (conservative for the window mean). `None`
    /// when NS.
    pub alpha_ci_half_width: Option<f64>,
    /// Smallest k in the assessment window when the plot stabilized.
    pub plateau_k_lo: Option<usize>,
    /// Largest k in the assessment window when the plot stabilized.
    pub plateau_k_hi: Option<usize>,
    /// Coefficient of variation over the assessment window.
    pub plateau_cv: f64,
    /// Right edge of the scanned k range.
    pub k_max: usize,
}

/// Number of grid points a stability scan samples across `k_min..=k_max`.
pub const STABILITY_GRID_POINTS: usize = 32;

/// Hill-plot stability scan over **descending-sorted** order statistics.
///
/// Takes the data already sorted descending (as maintained by a top-k
/// heap) so streaming callers pay no extra sort; `k_max` is clamped to
/// `descending.len() − 1` so `X_(k+1)` stays available. `α(k)` is
/// evaluated on a log-spaced grid of [`STABILITY_GRID_POINTS`] values
/// of k; the plateau test is the same CV < 7.5 % criterion as
/// [`hill_estimate`], applied to the grid points in the outer half
/// `k ≥ k_max / 2`. `level` is the two-sided confidence level for the
/// CI (e.g. `0.95`).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `level` outside `(0, 1)`,
/// [`StatsError::InsufficientData`] when fewer than 30 order statistics
/// are available, and [`StatsError::DegenerateInput`] when the input is
/// not positive and descending or too many order statistics are tied.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use webpuzzle_heavytail::hill_stability_scan;
/// use webpuzzle_stats::dist::{Pareto, Sampler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(12);
/// let mut sample = Pareto::new(1.58, 1.0)?.sample_n(&mut rng, 5_000);
/// sample.sort_by(|a, b| b.partial_cmp(a).unwrap());
/// let scan = hill_stability_scan(&sample, 700, 0.95)?;
/// let alpha = scan.alpha.expect("pure Pareto stabilizes");
/// let half = scan.alpha_ci_half_width.unwrap();
/// assert!((alpha - 1.58).abs() < 2.0 * half);
/// # Ok(())
/// # }
/// ```
pub fn hill_stability_scan(
    descending: &[f64],
    k_max: usize,
    level: f64,
) -> Result<HillStabilityScan> {
    const CV_THRESHOLD: f64 = 0.075;
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "level",
            value: level,
            constraint: "must be in (0, 1)",
        });
    }
    let n = descending.len();
    if n < 30 {
        return Err(StatsError::InsufficientData { needed: 30, got: n });
    }
    let k_min = 5usize;
    let k_max = k_max.clamp(k_min + 1, n - 1);
    if k_max <= k_min + 10 {
        return Err(StatsError::InsufficientData {
            needed: k_min + 11,
            got: k_max,
        });
    }
    // Only the first k_max + 1 order statistics participate; validate
    // exactly those (positivity + descending order).
    let head = &descending[..=k_max];
    if head.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteData);
    }
    if head.iter().any(|&x| x <= 0.0) || head.windows(2).any(|w| w[0] < w[1]) {
        return Err(StatsError::DegenerateInput {
            what: "Hill scan requires positive descending-sorted data",
        });
    }
    // Log-spaced k grid, deduplicated, always ending exactly at k_max.
    let ratio = (k_max as f64 / k_min as f64).powf(1.0 / (STABILITY_GRID_POINTS - 1) as f64);
    let mut ks = Vec::with_capacity(STABILITY_GRID_POINTS);
    let mut target = k_min as f64;
    for _ in 0..STABILITY_GRID_POINTS {
        let k = (target.round() as usize).clamp(k_min, k_max);
        if ks.last() != Some(&k) {
            ks.push(k);
        }
        target *= ratio;
    }
    if ks.last() != Some(&k_max) {
        ks.push(k_max);
    }
    // One pass of prefix sums over ln X_(i) serves every grid point.
    let mut grid = Vec::with_capacity(ks.len());
    let mut prefix = 0.0;
    let mut next = 0usize;
    for k in 1..=k_max {
        prefix += head[k - 1].ln();
        if next < ks.len() && k == ks[next] {
            let h = prefix / k as f64 - head[k].ln();
            if h > 1e-9 {
                grid.push((k, 1.0 / h));
            }
            next += 1;
        }
    }
    webpuzzle_obs::metrics::sharded_counter("heavytail/hill_order_stats").add(k_max as u64);
    // Assessment window: grid points in the outer half of the k range.
    let window: Vec<(usize, f64)> = grid
        .iter()
        .filter(|(k, _)| *k >= k_max / 2)
        .copied()
        .collect();
    if window.len() < 3 {
        return Err(StatsError::DegenerateInput {
            what: "Hill scan degenerate (too many tied order statistics)",
        });
    }
    let mean = window.iter().map(|(_, a)| a).sum::<f64>() / window.len() as f64;
    let var = window
        .iter()
        .map(|(_, a)| (a - mean) * (a - mean))
        .sum::<f64>()
        / window.len() as f64;
    let cv = if mean > 0.0 {
        var.sqrt() / mean
    } else {
        f64::INFINITY
    };
    let stable = cv < CV_THRESHOLD;
    let (k_lo, k_hi) = (window[0].0, window[window.len() - 1].0);
    let half = if stable {
        // Evaluated at the plateau's LEFT edge: the reported α is the
        // window mean, and the nested Hill estimates are so strongly
        // positively correlated that averaging buys almost no variance —
        // the mean is no better determined than its least-informed
        // member. α·z/√k_hi under-covers (92% measured at nominal 95%);
        // √k_lo restores calibrated coverage (see
        // `scan_ci_covers_planted_alpha`).
        let z = webpuzzle_stats::special::normal_quantile(0.5 + level / 2.0);
        Some(mean * z / (k_lo as f64).sqrt())
    } else {
        None
    };
    Ok(HillStabilityScan {
        grid,
        alpha: stable.then_some(mean),
        alpha_ci_half_width: half,
        plateau_k_lo: stable.then_some(k_lo),
        plateau_k_hi: stable.then_some(k_hi),
        plateau_cv: cv,
        k_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use webpuzzle_stats::dist::{Exponential, Pareto, Sampler};

    #[test]
    fn recovers_alpha_for_pareto() {
        let mut rng = StdRng::seed_from_u64(21);
        for &alpha in &[0.9, 1.58, 2.2] {
            let sample = Pareto::new(alpha, 1.0).unwrap().sample_n(&mut rng, 20_000);
            let est = hill_estimate(&sample, 0.14).unwrap();
            let got = est.alpha.expect("pure Pareto must stabilize");
            assert!((got - alpha).abs() < 0.15, "α = {alpha}, estimated {got}");
        }
    }

    #[test]
    fn plot_k_range_respects_fraction() {
        let mut rng = StdRng::seed_from_u64(22);
        let sample = Pareto::new(1.5, 1.0).unwrap().sample_n(&mut rng, 10_000);
        let plot = hill_plot(&sample, 0.14).unwrap();
        assert!(plot.last().unwrap().0 <= 1400);
        assert!(plot.first().unwrap().0 >= 5);
    }

    #[test]
    fn exponential_data_does_not_stabilize() {
        // For light tails the Hill plot rises steadily with k — the NS case.
        let mut rng = StdRng::seed_from_u64(23);
        let sample = Exponential::new(1.0).unwrap().sample_n(&mut rng, 20_000);
        let est = hill_estimate(&sample, 0.5).unwrap();
        assert!(
            !est.stabilized(),
            "exponential should be NS, got α = {:?} (cv = {})",
            est.alpha,
            est.plateau_cv
        );
    }

    #[test]
    fn plateau_cv_small_for_pareto() {
        let mut rng = StdRng::seed_from_u64(24);
        let sample = Pareto::new(1.3, 1.0).unwrap().sample_n(&mut rng, 50_000);
        let est = hill_estimate(&sample, 0.14).unwrap();
        assert!(est.plateau_cv < 0.04, "cv = {}", est.plateau_cv);
    }

    #[test]
    fn validation() {
        assert!(hill_plot(&[1.0; 10], 0.14).is_err());
        assert!(hill_plot(&[1.0; 100], 0.0).is_err());
        let mut bad = vec![1.0; 100];
        bad[0] = -1.0;
        assert!(hill_plot(&bad, 0.5).is_err());
        // All-equal data: log spacings vanish.
        assert!(hill_plot(&[7.0; 1000], 0.5).is_err());
    }

    fn sorted_pareto(alpha: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sample = Pareto::new(alpha, 1.0).unwrap().sample_n(&mut rng, n);
        sample.sort_by(|a, b| b.partial_cmp(a).unwrap());
        sample
    }

    #[test]
    fn scan_recovers_alpha_with_a_covering_ci() {
        for &alpha in &[0.9, 1.45, 2.2] {
            let sample = sorted_pareto(alpha, 20_000, 31);
            let scan = hill_stability_scan(&sample, 2_800, 0.95).unwrap();
            let got = scan.alpha.expect("pure Pareto must stabilize");
            let half = scan.alpha_ci_half_width.unwrap();
            assert!(half > 0.0 && half < 0.5 * alpha, "half = {half}");
            assert!(
                (got - alpha).abs() < 3.0 * half,
                "α = {alpha}, got {got} ± {half}"
            );
            let (lo, hi) = (scan.plateau_k_lo.unwrap(), scan.plateau_k_hi.unwrap());
            assert!(lo >= scan.k_max / 2 && hi == scan.k_max);
        }
    }

    #[test]
    fn scan_grid_is_log_spaced_and_ascending() {
        let sample = sorted_pareto(1.5, 10_000, 32);
        let scan = hill_stability_scan(&sample, 1_400, 0.95).unwrap();
        assert!(scan.grid.len() >= 20 && scan.grid.len() <= STABILITY_GRID_POINTS + 1);
        assert!(scan.grid.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(scan.grid.first().unwrap().0, 5);
        assert_eq!(scan.grid.last().unwrap().0, 1_400);
    }

    #[test]
    fn scan_matches_hill_estimate_on_the_same_window() {
        // Same data, same outer-half assessment window: the scan's
        // plateau mean must agree with hill_estimate's to within the
        // grid-sampling error.
        let mut rng = StdRng::seed_from_u64(33);
        let sample = Pareto::new(1.3, 1.0).unwrap().sample_n(&mut rng, 30_000);
        let est = hill_estimate(&sample, 0.14).unwrap();
        let mut desc = sample;
        desc.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let scan = hill_stability_scan(&desc, est.k_max, 0.95).unwrap();
        let a = est.alpha.unwrap();
        let b = scan.alpha.unwrap();
        assert!((a - b).abs() < 0.05, "estimate {a} vs scan {b}");
    }

    #[test]
    fn scan_marks_exponential_ns() {
        let mut rng = StdRng::seed_from_u64(34);
        let mut sample = Exponential::new(1.0).unwrap().sample_n(&mut rng, 20_000);
        sample.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let scan = hill_stability_scan(&sample, 10_000, 0.95).unwrap();
        assert!(scan.alpha.is_none(), "exponential should be NS");
        assert!(scan.alpha_ci_half_width.is_none());
        assert!(scan.plateau_k_lo.is_none());
    }

    #[test]
    fn scan_ci_covers_planted_alpha() {
        // DESIGN.md §13 calibration: over 200 seeded pure-Pareto runs the
        // asymptotic CI (α · z / √k at the plateau's left edge) must
        // cover the planted tail index at least 95% of the time. A run
        // that fails to stabilize counts as a miss.
        let alpha = 1.5;
        let dist = Pareto::new(alpha, 1.0).unwrap();
        let runs = 200;
        let mut covered = 0;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(10_000 + seed);
            let mut sample = dist.sample_n(&mut rng, 5_000);
            sample.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let scan = hill_stability_scan(&sample, 700, 0.95).unwrap();
            if let (Some(a), Some(half)) = (scan.alpha, scan.alpha_ci_half_width) {
                if (a - alpha).abs() <= half {
                    covered += 1;
                }
            }
        }
        assert!(covered >= 190, "coverage {covered}/{runs} < 95%");
    }

    #[test]
    fn scan_validation() {
        assert!(hill_stability_scan(&[1.0; 10], 5, 0.95).is_err());
        let sample = sorted_pareto(1.5, 1_000, 35);
        assert!(hill_stability_scan(&sample, 140, 0.0).is_err());
        assert!(hill_stability_scan(&sample, 140, 1.0).is_err());
        // Ascending (not descending) data is refused.
        let mut asc = sample.clone();
        asc.reverse();
        assert!(hill_stability_scan(&asc, 140, 0.95).is_err());
        // Ties everywhere: degenerate.
        assert!(hill_stability_scan(&[7.0; 1000], 140, 0.95).is_err());
    }
}
