//! Hill estimator of the tail index, with plateau (stabilization)
//! detection.

use crate::Result;
use serde::{Deserialize, Serialize};
use webpuzzle_stats::StatsError;

/// Result of Hill-plot analysis — the paper's `α_Hill` cells, including the
/// **NS** ("did not stabilize") outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HillEstimate {
    /// The stabilized estimate, or `None` when the plot never settles (NS).
    pub alpha: Option<f64>,
    /// Coefficient of variation of `α_{k,n}` over the assessment window —
    /// the stability diagnostic (small = plateau).
    pub plateau_cv: f64,
    /// Number of upper-order statistics at the right edge of the plot.
    pub k_max: usize,
}

impl HillEstimate {
    /// Whether the Hill plot stabilized.
    pub fn stabilized(&self) -> bool {
        self.alpha.is_some()
    }
}

/// The Hill plot: `(k, α_{k,n})` for `k = k_min .. k_max`, where
/// `α_{k,n} = 1/H_{k,n}` and `H_{k,n} = (1/k) Σ_{i≤k} ln X_(i) − ln X_(k+1)`
/// over the descending order statistics (paper equation (5)).
///
/// `tail_fraction` bounds `k_max = ⌊tail_fraction · n⌋` (the paper uses the
/// upper 14 % for Figure 12).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `tail_fraction` outside
/// `(0, 1]`, [`StatsError::InsufficientData`] when fewer than 25 usable
/// order statistics exist, and [`StatsError::DegenerateInput`] for
/// non-positive data.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use webpuzzle_heavytail::hill_plot;
/// use webpuzzle_stats::dist::{Pareto, Sampler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(12);
/// let sample = Pareto::new(1.58, 1.0)?.sample_n(&mut rng, 5_000);
/// let plot = hill_plot(&sample, 0.14)?;
/// let (_, alpha_at_kmax) = *plot.last().unwrap();
/// assert!((alpha_at_kmax - 1.58).abs() < 0.2);
/// # Ok(())
/// # }
/// ```
pub fn hill_plot(data: &[f64], tail_fraction: f64) -> Result<Vec<(usize, f64)>> {
    if !(tail_fraction > 0.0 && tail_fraction <= 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "tail_fraction",
            value: tail_fraction,
            constraint: "must be in (0, 1]",
        });
    }
    let n = data.len();
    if n < 50 {
        return Err(StatsError::InsufficientData { needed: 50, got: n });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteData);
    }
    if data.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::DegenerateInput {
            what: "Hill estimation requires strictly positive data",
        });
    }
    let mut desc = data.to_vec();
    desc.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
    // k must leave X_(k+1) available.
    let k_max = (((n as f64) * tail_fraction) as usize).min(n - 1);
    let k_min = 5usize;
    if k_max <= k_min + 20 {
        return Err(StatsError::InsufficientData {
            needed: k_min + 21,
            got: k_max,
        });
    }
    let logs: Vec<f64> = desc.iter().map(|&x| x.ln()).collect();
    let mut prefix = 0.0;
    let mut out = Vec::with_capacity(k_max - k_min + 1);
    for k in 1..=k_max {
        prefix += logs[k - 1];
        if k >= k_min {
            let h = prefix / k as f64 - logs[k];
            // Guard against round-off on (near-)tied order statistics: an
            // h of ~1e-16 would otherwise produce an absurd α ~ 1e16.
            if h > 1e-9 {
                out.push((k, 1.0 / h));
            }
        }
    }
    if out.len() < 20 {
        return Err(StatsError::DegenerateInput {
            what: "Hill plot degenerate (too many tied order statistics)",
        });
    }
    webpuzzle_obs::metrics::sharded_counter("heavytail/hill_order_stats").add(k_max as u64);
    Ok(out)
}

/// Hill estimate with automatic plateau detection over the outer half of the
/// plot: if the coefficient of variation of `α_{k,n}` across the assessment
/// window is below 7.5 %, the plot is declared stable and the window mean is
/// returned; otherwise `alpha` is `None` (**NS**, as annotated in the
/// paper's Tables 2–4).
///
/// # Errors
///
/// Same conditions as [`hill_plot`].
pub fn hill_estimate(data: &[f64], tail_fraction: f64) -> Result<HillEstimate> {
    let _span = webpuzzle_obs::span!("tail/hill");
    const CV_THRESHOLD: f64 = 0.075;
    let plot = hill_plot(data, tail_fraction)?;
    let k_max = plot.last().expect("plot non-empty").0;
    // Assessment window: the outer half of the plot (large k), where the
    // paper reads off the settled value.
    let window: Vec<f64> = plot
        .iter()
        .filter(|(k, _)| *k >= k_max / 2)
        .map(|(_, a)| *a)
        .collect();
    let mean = window.iter().sum::<f64>() / window.len() as f64;
    let var = window.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / window.len() as f64;
    let cv = if mean > 0.0 {
        var.sqrt() / mean
    } else {
        f64::INFINITY
    };
    Ok(HillEstimate {
        alpha: if cv < CV_THRESHOLD { Some(mean) } else { None },
        plateau_cv: cv,
        k_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use webpuzzle_stats::dist::{Exponential, Pareto, Sampler};

    #[test]
    fn recovers_alpha_for_pareto() {
        let mut rng = StdRng::seed_from_u64(21);
        for &alpha in &[0.9, 1.58, 2.2] {
            let sample = Pareto::new(alpha, 1.0).unwrap().sample_n(&mut rng, 20_000);
            let est = hill_estimate(&sample, 0.14).unwrap();
            let got = est.alpha.expect("pure Pareto must stabilize");
            assert!((got - alpha).abs() < 0.15, "α = {alpha}, estimated {got}");
        }
    }

    #[test]
    fn plot_k_range_respects_fraction() {
        let mut rng = StdRng::seed_from_u64(22);
        let sample = Pareto::new(1.5, 1.0).unwrap().sample_n(&mut rng, 10_000);
        let plot = hill_plot(&sample, 0.14).unwrap();
        assert!(plot.last().unwrap().0 <= 1400);
        assert!(plot.first().unwrap().0 >= 5);
    }

    #[test]
    fn exponential_data_does_not_stabilize() {
        // For light tails the Hill plot rises steadily with k — the NS case.
        let mut rng = StdRng::seed_from_u64(23);
        let sample = Exponential::new(1.0).unwrap().sample_n(&mut rng, 20_000);
        let est = hill_estimate(&sample, 0.5).unwrap();
        assert!(
            !est.stabilized(),
            "exponential should be NS, got α = {:?} (cv = {})",
            est.alpha,
            est.plateau_cv
        );
    }

    #[test]
    fn plateau_cv_small_for_pareto() {
        let mut rng = StdRng::seed_from_u64(24);
        let sample = Pareto::new(1.3, 1.0).unwrap().sample_n(&mut rng, 50_000);
        let est = hill_estimate(&sample, 0.14).unwrap();
        assert!(est.plateau_cv < 0.04, "cv = {}", est.plateau_cv);
    }

    #[test]
    fn validation() {
        assert!(hill_plot(&[1.0; 10], 0.14).is_err());
        assert!(hill_plot(&[1.0; 100], 0.0).is_err());
        let mut bad = vec![1.0; 100];
        bad[0] = -1.0;
        assert!(hill_plot(&bad, 0.5).is_err());
        // All-equal data: log spacings vanish.
        assert!(hill_plot(&[7.0; 1000], 0.5).is_err());
    }
}
