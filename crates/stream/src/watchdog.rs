//! Stage watchdog: stall detection for the long-running pipeline.
//!
//! Every pipeline stage that makes progress (a record pushed, a batch
//! drained, a poll loop turned) **beats** its [`StageHandle`]. The
//! watchdog scans those beats; a stage whose last beat is older than
//! [`WatchdogConfig::stall_after`] is declared stalled — a `Critical`
//! `watchdog` event is published, the stage's stall counter and the
//! `watchdog/stalled_stages` gauge go up, and the stage shows up in
//! [`Watchdog::stalled_stages`] for the supervisor loop to escalate on
//! (degrade the exit code, force a checkpoint, refuse new work). The
//! first beat after a stall clears it with an `Info` recovery event.
//!
//! The scan is a pure function of injected millisecond timestamps
//! ([`StageHandle::beat_at`] / [`Watchdog::scan_at`]), so tests and
//! chaos drills drive stalls deterministically without sleeping.
//! [`Watchdog::spawn_monitor`] is the thin wall-clock loop the binaries
//! run: beat on progress, scan on a cadence, nothing else.
//!
//! A stall is an *escalation signal*, not a kill switch: the watchdog
//! never unwinds a stage itself. Tearing down a wedged thread from
//! outside would tear its state mid-update; instead the supervisor
//! decides — and because every verdict is also a typed event, a stall
//! that self-heals still leaves a record that it happened.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use webpuzzle_obs::events::{self, Event, Severity};
use webpuzzle_obs::metrics;

/// Watchdog tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// A stage with no beat for this long is stalled.
    pub stall_after: Duration,
    /// Monitor-thread scan cadence ([`Watchdog::spawn_monitor`] only;
    /// deterministic drivers call [`Watchdog::scan_at`] themselves).
    pub poll_interval: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_after: Duration::from_secs(30),
            poll_interval: Duration::from_secs(1),
        }
    }
}

/// One watched stage: its last beat and whether it is currently
/// considered stalled.
struct StageSlot {
    name: String,
    /// Milliseconds since the watchdog's epoch at the last beat.
    last_beat_ms: AtomicU64,
    stalled: AtomicBool,
    stalls: Arc<metrics::Counter>,
}

struct Inner {
    cfg: WatchdogConfig,
    epoch: Instant,
    stages: Vec<StageSlot>,
    stop: AtomicBool,
    stalled_gauge: Arc<metrics::Gauge>,
}

impl Inner {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// Cloneable per-stage beat handle; cheap enough to call per record.
#[derive(Clone)]
pub struct StageHandle {
    inner: Arc<Inner>,
    idx: usize,
}

impl StageHandle {
    /// Record progress now (wall clock).
    pub fn beat(&self) {
        self.beat_at(self.inner.now_ms());
    }

    /// Record progress at an injected timestamp (milliseconds since
    /// the watchdog's epoch) — the deterministic form for tests and
    /// drills.
    pub fn beat_at(&self, now_ms: u64) {
        self.inner.stages[self.idx]
            .last_beat_ms
            .store(now_ms, Ordering::Relaxed);
    }
}

/// The watchdog itself. See the module docs.
pub struct Watchdog {
    inner: Arc<Inner>,
    monitor: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Build a watchdog over named stages; every stage starts freshly
    /// beaten (a stage is only stalled `stall_after` after the watchdog
    /// comes up, never at t=0).
    pub fn new(cfg: WatchdogConfig, stage_names: &[&str]) -> Watchdog {
        let stages = stage_names
            .iter()
            .map(|name| StageSlot {
                name: (*name).to_string(),
                last_beat_ms: AtomicU64::new(0),
                stalled: AtomicBool::new(false),
                stalls: metrics::counter(&format!("watchdog/{name}_stalls")),
            })
            .collect();
        Watchdog {
            inner: Arc::new(Inner {
                cfg,
                epoch: Instant::now(),
                stages,
                stop: AtomicBool::new(false),
                stalled_gauge: metrics::gauge("watchdog/stalled_stages"),
            }),
            monitor: None,
        }
    }

    /// Beat handle for stage `idx` (order of construction).
    ///
    /// # Panics
    ///
    /// If `idx` is out of range.
    pub fn handle(&self, idx: usize) -> StageHandle {
        assert!(idx < self.inner.stages.len(), "no such watchdog stage");
        StageHandle {
            inner: Arc::clone(&self.inner),
            idx,
        }
    }

    /// Scan all stages at an injected timestamp: flag stalls, clear
    /// recoveries, publish events, update gauges. Returns how many
    /// stages are stalled after the scan.
    pub fn scan_at(&self, now_ms: u64) -> usize {
        let stall_ms = self.inner.cfg.stall_after.as_millis() as u64;
        let mut stalled_now = 0usize;
        for slot in &self.inner.stages {
            let last = slot.last_beat_ms.load(Ordering::Relaxed);
            let silent_ms = now_ms.saturating_sub(last);
            let was_stalled = slot.stalled.load(Ordering::Relaxed);
            if silent_ms > stall_ms {
                stalled_now += 1;
                if !was_stalled {
                    slot.stalled.store(true, Ordering::Relaxed);
                    slot.stalls.incr();
                    events::publish(Event::new(
                        Severity::Critical,
                        "watchdog",
                        &format!("watchdog/{}_stalls", slot.name),
                        0,
                        now_ms as f64 / 1000.0,
                        0.0,
                        1.0,
                        silent_ms as f64 / 1000.0,
                        stall_ms as f64 / 1000.0,
                        format!(
                            "stage '{}' stalled: no progress for {:.1}s \
                             (stall_after = {:.1}s)",
                            slot.name,
                            silent_ms as f64 / 1000.0,
                            stall_ms as f64 / 1000.0,
                        ),
                    ));
                }
            } else if was_stalled {
                slot.stalled.store(false, Ordering::Relaxed);
                events::publish(Event::new(
                    Severity::Info,
                    "watchdog",
                    &format!("watchdog/{}_stalls", slot.name),
                    0,
                    now_ms as f64 / 1000.0,
                    1.0,
                    0.0,
                    silent_ms as f64 / 1000.0,
                    stall_ms as f64 / 1000.0,
                    format!("stage '{}' recovered: beating again", slot.name),
                ));
            }
        }
        self.inner.stalled_gauge.set(stalled_now as f64);
        stalled_now
    }

    /// Scan at the wall clock — [`Watchdog::scan_at`] with now. For
    /// callers running their own monitor loop (e.g. one that only
    /// scans while work is actually pending).
    pub fn scan(&self) -> usize {
        self.scan_at(self.inner.now_ms())
    }

    /// Names of the stages currently flagged as stalled.
    pub fn stalled_stages(&self) -> Vec<String> {
        self.inner
            .stages
            .iter()
            .filter(|s| s.stalled.load(Ordering::Relaxed))
            .map(|s| s.name.clone())
            .collect()
    }

    /// Total stall verdicts across all stages since construction.
    pub fn total_stalls(&self) -> u64 {
        self.inner.stages.iter().map(|s| s.stalls.get()).sum()
    }

    /// Start the wall-clock monitor thread (idempotent). It beats
    /// nothing itself — it only scans on `poll_interval`.
    pub fn spawn_monitor(&mut self) {
        if self.monitor.is_some() {
            return;
        }
        let inner = Arc::clone(&self.inner);
        let scanner = Watchdog {
            inner: Arc::clone(&self.inner),
            monitor: None,
        };
        self.monitor = Some(std::thread::spawn(move || {
            while !inner.stop.load(Ordering::Relaxed) {
                std::thread::sleep(inner.cfg.poll_interval);
                if inner.stop.load(Ordering::Relaxed) {
                    break;
                }
                scanner.scan_at(inner.now_ms());
            }
        }));
    }

    /// Stop and join the monitor thread, if one is running.
    pub fn stop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.monitor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dog(stall_secs: u64) -> Watchdog {
        Watchdog::new(
            WatchdogConfig {
                stall_after: Duration::from_secs(stall_secs),
                poll_interval: Duration::from_millis(10),
            },
            &["ingest", "engine"],
        )
    }

    #[test]
    fn silence_past_the_deadline_stalls_and_a_beat_recovers() {
        let wd = dog(5);
        let ingest = wd.handle(0);
        let engine = wd.handle(1);
        ingest.beat_at(0);
        engine.beat_at(0);

        // Inside the deadline: quiet is fine.
        assert_eq!(wd.scan_at(5_000), 0);
        assert!(wd.stalled_stages().is_empty());

        // Engine beats, ingest goes silent past the deadline.
        engine.beat_at(6_000);
        assert_eq!(wd.scan_at(6_001), 1);
        assert_eq!(wd.stalled_stages(), vec!["ingest".to_string()]);
        assert_eq!(wd.total_stalls(), 1);

        // Staying stalled is not a new stall.
        assert_eq!(wd.scan_at(9_000), 1);
        assert_eq!(wd.total_stalls(), 1);

        // One beat clears it.
        ingest.beat_at(9_500);
        assert_eq!(wd.scan_at(9_600), 0);
        assert!(wd.stalled_stages().is_empty());

        // A second silence is a second stall.
        assert_eq!(wd.scan_at(20_000), 2);
        assert_eq!(wd.total_stalls(), 3);
    }

    #[test]
    fn monitor_thread_stops_cleanly() {
        let mut wd = dog(3600);
        wd.handle(0).beat();
        wd.handle(1).beat();
        wd.spawn_monitor();
        wd.spawn_monitor(); // idempotent
        wd.stop();
        wd.stop(); // idempotent
    }
}
