//! The wired-up streaming engine: one [`StreamAnalyzer::push`] per log
//! record in, one [`StreamSummary`] out, bounded memory throughout.
//!
//! The analyzer composes the crate's pieces the way the batch pipeline
//! composes its phases: records flow into the TTL
//! [`StreamSessionizer`]; evicted sessions update Welford moments and
//! top-k Hill tails for the paper's three intra-session metrics
//! (§5.2: duration, requests, bytes); request and session-start
//! timestamps feed two [`WindowedArrivals`] accumulators whose
//! completed windows run the variance-time estimator and the §4.2
//! Poisson battery. Everything is also mirrored into `stream/*`
//! counters, gauges, and histograms in the `webpuzzle-obs` registry, so
//! a live `--telemetry-addr` endpoint sees progress mid-stream.

use crate::diagnostics;
use crate::observatory::{
    DriftObservatory, DriftSummary, ObservatoryConfig, ObservatoryState, WindowObservation,
};
use crate::online::{LogHistogram, Moments, TopK, Welford};
use crate::sessionizer::{SessionizerState, StreamSessionizer};
use crate::window::{ArrivalsState, WindowConfig, WindowReport, WindowedArrivals};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use webpuzzle_obs::diagnostics::{DiagnosticsReport, WindowDiagnostics};
use webpuzzle_obs::governor;
use webpuzzle_obs::metrics;
use webpuzzle_obs::profile::{self, Stage};
use webpuzzle_weblog::{LogRecord, Session, DEFAULT_SESSION_THRESHOLD};

/// Estimator sampling stride under governor degradation (Yellow or
/// Red): one record in this many feeds the per-record estimators
/// (byte moments, histograms, inter-arrival CI accumulators). Counts
/// shrink by the same factor, so confidence intervals widen honestly —
/// the recorded [`StreamSummary::sampling_stride`] tells readers why.
/// Sessionization and arrival counting always see every record.
pub const DEGRADED_SAMPLING_STRIDE: u64 = 4;

/// Session-TTL scale under governor degradation (Yellow or Red): idle
/// sessions are evicted at `threshold · scale` instead of the nominal
/// threshold, shrinking the TTL map. Early evictions are counted in
/// [`StreamSummary::early_evicted_sessions`].
pub const DEGRADED_TTL_SCALE: f64 = 0.5;

/// Configuration of the streaming engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Session inactivity threshold, seconds (paper: 30 minutes).
    pub session_threshold: f64,
    /// Windowing of the request arrival process.
    pub request_window: WindowConfig,
    /// Windowing of the session arrival process (fine ring is pointless
    /// at session rates, so it defaults to off here).
    pub session_window: WindowConfig,
    /// Order statistics retained per tail metric. Memory is
    /// `O(tail_k)`; when `tail_k` exceeds `⌊tail_fraction·n⌋` the Hill
    /// assessment window coincides with the batch pipeline's.
    pub tail_k: usize,
    /// Tail fraction for the Hill assessment cap (paper/batch: 0.14).
    pub tail_fraction: f64,
    /// Drift-observatory tuning (detectors over the per-window
    /// estimates; see [`crate::observatory`]).
    pub observatory: ObservatoryConfig,
    /// Hard cap on simultaneously-open sessions (`0` = unbounded, the
    /// historical behavior). Over the cap the TTL map sheds its
    /// oldest-ending session early — counted in
    /// [`StreamSummary::shed_sessions`] and the `stream/records_shed`
    /// counter, never silent. This is the graceful-degradation valve
    /// for adversarial client cardinality under memory pressure.
    pub max_open_sessions: usize,
    /// Compute per-window estimator diagnostics (Hill stability scans,
    /// CI propagation, agreement verdicts) at every window close. Off
    /// by default: the scan costs an extra `O(k_max)` pass per close,
    /// and diagnostics publish `low_confidence` /
    /// `estimator_disagreement` events that default runs must not emit.
    pub diagnostics: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            session_threshold: DEFAULT_SESSION_THRESHOLD,
            request_window: WindowConfig::default(),
            session_window: WindowConfig {
                fine_bin_width: None,
                ..WindowConfig::default()
            },
            tail_k: 8_192,
            tail_fraction: 0.14,
            observatory: ObservatoryConfig::default(),
            max_open_sessions: 0,
            diagnostics: false,
        }
    }
}

/// State of one top-k Hill tail estimate at summary time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TailSnapshot {
    /// Positive observations offered to the heap.
    pub seen: u64,
    /// Order statistics retained (`min(seen, tail_k)`).
    pub retained: usize,
    /// Hill tail index α, assessed over the batch window
    /// `[k_max/2, k_max]`, `k_max = ⌊tail_fraction·seen⌋` (capped at
    /// what the heap retains). `None` with too little data.
    pub alpha: Option<f64>,
}

/// One-pass summary of a log stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSummary {
    /// Records pushed.
    pub records: u64,
    /// Sessions completed (after [`StreamAnalyzer::finish`], all of
    /// them).
    pub sessions: u64,
    /// Sessions still open (zero after [`StreamAnalyzer::finish`]).
    pub open_sessions: usize,
    /// Peak simultaneously-open sessions — the memory high-water mark
    /// of the TTL map.
    pub peak_open_sessions: usize,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Per-request transfer size moments.
    pub response_bytes: Moments,
    /// Session duration moments, seconds (§5.2.1).
    pub session_duration: Moments,
    /// Requests-per-session moments (§5.2.2).
    pub session_requests: Moments,
    /// Bytes-per-session moments (§5.2.3).
    pub session_bytes: Moments,
    /// Hill tail of session durations.
    pub duration_tail: TailSnapshot,
    /// Hill tail of requests per session.
    pub requests_tail: TailSnapshot,
    /// Hill tail of bytes per session.
    pub bytes_tail: TailSnapshot,
    /// Per-window analysis of the request arrival process.
    pub request_windows: Vec<WindowReport>,
    /// Per-window analysis of the session arrival process.
    pub session_windows: Vec<WindowReport>,
    /// Drift-observatory results (alarms over the per-window
    /// estimates).
    pub drift: DriftSummary,
    /// Sessions shed early by the [`StreamConfig::max_open_sessions`]
    /// cap (0 when unbounded). Shed sessions still reach the moment and
    /// tail estimators — "shed" means truncated early, not dropped.
    pub shed_sessions: u64,
    /// Records already absorbed into sessions that were then shed.
    pub shed_records: u64,
    /// Per-window estimator confidence & agreement evidence
    /// ([`StreamConfig::diagnostics`]; empty rows when disabled, with
    /// `enabled: false` recorded so readers can tell off from missing).
    pub diagnostics: DiagnosticsReport,
    /// Records refused outright under Red-state degradation (the
    /// client had no open session, so admitting it would have grown
    /// the TTL map). Not part of [`StreamSummary::records`].
    pub hard_shed_records: u64,
    /// Per-record estimator updates skipped under degraded sampling
    /// (the records themselves were fully sessionized and counted).
    pub sampled_out: u64,
    /// Estimator sampling stride in effect when the summary was taken
    /// (1 = unsampled; [`DEGRADED_SAMPLING_STRIDE`] under Yellow/Red).
    pub sampling_stride: u64,
    /// Sessions evicted earlier than the nominal TTL under degradation
    /// (see [`DEGRADED_TTL_SCALE`]).
    pub early_evicted_sessions: u64,
}

/// Complete mutable state of a [`StreamAnalyzer`], for checkpointing
/// via [`StreamAnalyzer::export_state`] /
/// [`StreamAnalyzer::restore`].
///
/// Welford accumulators travel as `(n, mean, m2)` raw parts, top-k
/// tails as `(k, seen, retained-values)`, the log histogram as
/// `(buckets, count, sum)`. Registry metrics (`stream/*` counters,
/// gauges, histograms) are deliberately **not** part of this state:
/// they have process lifetime, and a resumed process accumulates its
/// own from zero — the summary-facing totals here are authoritative.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    /// TTL sessionizer state (open sessions, watermark, counts).
    pub sessionizer: SessionizerState,
    /// Request arrival rings and window cursor.
    pub request_arrivals: ArrivalsState,
    /// Session arrival rings and window cursor.
    pub session_arrivals: ArrivalsState,
    /// Closed request-window reports so far.
    pub request_windows: Vec<WindowReport>,
    /// Closed session-window reports so far.
    pub session_windows: Vec<WindowReport>,
    /// Per-request transfer-size moments.
    pub response_bytes: (u64, f64, f64),
    /// Log-bucketed transfer-size histogram `(buckets, count, sum)`.
    pub bytes_hist: (Vec<u64>, u64, u64),
    /// Session-duration moments.
    pub session_duration: (u64, f64, f64),
    /// Requests-per-session moments.
    pub session_requests: (u64, f64, f64),
    /// Bytes-per-session moments.
    pub session_bytes: (u64, f64, f64),
    /// Session-duration tail heap `(k, seen, retained)`.
    pub duration_tail: (usize, u64, Vec<f64>),
    /// Requests-per-session tail heap.
    pub requests_tail: (usize, u64, Vec<f64>),
    /// Bytes-per-session tail heap.
    pub bytes_tail: (usize, u64, Vec<f64>),
    /// Records pushed.
    pub records: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Drift-observatory detector positions and alarm counts.
    pub observatory: ObservatoryState,
    /// Current-window bytes accumulator (feeds the drift bytes
    /// channel when the window closes).
    pub window_bytes: (u64, f64, f64),
    /// Eviction-rate bookkeeping: sessions emitted at last sync.
    pub last_emitted: u64,
    /// Eviction-rate bookkeeping: watermark at last eviction.
    pub last_evict_time: f64,
    /// Current-window inter-arrival accumulator (feeds the diagnostics
    /// inter-arrival CI when the window closes).
    pub window_interarrival: (u64, f64, f64),
    /// Timestamp of the last record pushed (`-inf` before the first) —
    /// the inter-arrival accumulator's anchor.
    pub last_arrival: f64,
    /// Diagnostics rows for closed windows so far (empty when
    /// [`StreamConfig::diagnostics`] is off).
    pub diagnostics_windows: Vec<WindowDiagnostics>,
    /// Governor degradation mode the engine last observed
    /// (0 = Green, 1 = Yellow, 2 = Red).
    pub degradation_mode: u8,
    /// Per-record estimator updates skipped under degraded sampling.
    pub sampled_out: u64,
    /// Records refused under Red-state degradation.
    pub hard_shed_records: u64,
    /// A forced checkpoint (Red entry) was requested but not yet taken.
    pub forced_checkpoint_due: bool,
}

/// The one-pass analysis engine. See the crate docs for an example.
#[derive(Debug)]
pub struct StreamAnalyzer {
    cfg: StreamConfig,
    sessionizer: StreamSessionizer,
    session_buf: Vec<Session>,
    window_buf: Vec<WindowReport>,
    request_arrivals: WindowedArrivals,
    session_arrivals: WindowedArrivals,
    request_windows: Vec<WindowReport>,
    session_windows: Vec<WindowReport>,
    response_bytes: Welford,
    bytes_hist: LogHistogram,
    session_duration: Welford,
    session_requests: Welford,
    session_bytes: Welford,
    duration_tail: TopK,
    requests_tail: TopK,
    bytes_tail: TopK,
    records: u64,
    bytes: u64,
    finished: bool,
    observatory: DriftObservatory,
    window_bytes: Welford,
    window_interarrival: Welford,
    last_arrival: f64,
    diagnostics_windows: Vec<WindowDiagnostics>,
    last_emitted: u64,
    last_evict_time: f64,
    shed_synced: u64,
    shed_records_synced: u64,
    degradation_mode: u8,
    sampled_out: u64,
    hard_shed_records: u64,
    forced_checkpoint_due: bool,
    // Flight-recorder bookkeeping: cumulative per-stage totals at the
    // last window-timing event, for per-window self-time deltas. Not
    // part of EngineState — profiler data has process lifetime, like
    // every other registry metric (see the EngineState docs).
    profile_totals: [u64; profile::STAGE_COUNT],
    records_counter: Arc<webpuzzle_obs::ShardedCounter>,
    shed_counter: Arc<metrics::Counter>,
    hard_shed_counter: Arc<metrics::Counter>,
    sampled_out_counter: Arc<metrics::Counter>,
    mode_gauge: Arc<metrics::Gauge>,
    bytes_counter: Arc<metrics::Counter>,
    sessions_counter: Arc<metrics::Counter>,
    windows_counter: Arc<metrics::Counter>,
    open_gauge: Arc<metrics::Gauge>,
    peak_gauge: Arc<metrics::Gauge>,
    occupancy_gauge: Arc<metrics::Gauge>,
    watermark_lag_gauge: Arc<metrics::Gauge>,
    evict_rate_gauge: Arc<metrics::Gauge>,
    backlog_gauge: Arc<metrics::Gauge>,
    live_bytes_hist: Arc<metrics::Histogram>,
    live_duration_hist: Arc<metrics::Histogram>,
    alpha_ci_gauge: Arc<metrics::Gauge>,
    h_ci_gauge: Arc<metrics::Gauge>,
    r_squared_gauge: Arc<metrics::Gauge>,
    agreement_gauge: Arc<metrics::Gauge>,
}

impl StreamAnalyzer {
    /// Build an engine.
    ///
    /// # Errors
    ///
    /// Rejects a non-finite or non-positive session threshold, exactly
    /// as batch [`webpuzzle_weblog::sessionize`] would.
    pub fn new(cfg: StreamConfig) -> Result<Self> {
        let sessionizer =
            StreamSessionizer::new(cfg.session_threshold)?.with_max_open(cfg.max_open_sessions);
        let request_arrivals = WindowedArrivals::new(cfg.request_window.clone());
        let session_arrivals = WindowedArrivals::new(cfg.session_window.clone());
        Ok(StreamAnalyzer {
            sessionizer,
            request_arrivals,
            session_arrivals,
            session_buf: Vec::new(),
            window_buf: Vec::new(),
            request_windows: Vec::new(),
            session_windows: Vec::new(),
            response_bytes: Welford::new(),
            bytes_hist: LogHistogram::new(),
            session_duration: Welford::new(),
            session_requests: Welford::new(),
            session_bytes: Welford::new(),
            duration_tail: TopK::new(cfg.tail_k),
            requests_tail: TopK::new(cfg.tail_k),
            bytes_tail: TopK::new(cfg.tail_k),
            records: 0,
            bytes: 0,
            finished: false,
            observatory: DriftObservatory::new(&cfg.observatory, cfg.request_window.window_len),
            window_bytes: Welford::new(),
            window_interarrival: Welford::new(),
            last_arrival: f64::NEG_INFINITY,
            diagnostics_windows: Vec::new(),
            last_emitted: 0,
            last_evict_time: f64::NEG_INFINITY,
            shed_synced: 0,
            shed_records_synced: 0,
            degradation_mode: 0,
            sampled_out: 0,
            hard_shed_records: 0,
            forced_checkpoint_due: false,
            profile_totals: profile::stage_totals(),
            records_counter: metrics::sharded_counter("stream/records"),
            shed_counter: metrics::counter("stream/records_shed"),
            hard_shed_counter: metrics::counter("stream/records_hard_shed"),
            sampled_out_counter: metrics::counter("stream/estimator_samples_skipped"),
            mode_gauge: metrics::gauge("stream/degradation_mode"),
            bytes_counter: metrics::counter("stream/bytes"),
            sessions_counter: metrics::counter("stream/sessions_completed"),
            windows_counter: metrics::counter("stream/windows_closed"),
            open_gauge: metrics::gauge("stream/open_sessions"),
            peak_gauge: metrics::gauge("stream/peak_open_sessions"),
            occupancy_gauge: metrics::gauge("stream/ttl_map_occupancy"),
            watermark_lag_gauge: metrics::gauge("stream/watermark_lag_secs"),
            evict_rate_gauge: metrics::gauge("stream/eviction_rate_per_sec"),
            backlog_gauge: metrics::gauge("stream/chunk_backlog"),
            live_bytes_hist: metrics::histogram("stream/response_bytes"),
            live_duration_hist: metrics::histogram("stream/session_duration_secs"),
            alpha_ci_gauge: metrics::gauge("estimator_confidence/alpha_ci_half_width"),
            h_ci_gauge: metrics::gauge("estimator_confidence/h_ci_half_width"),
            r_squared_gauge: metrics::gauge("estimator_confidence/r_squared"),
            agreement_gauge: metrics::gauge("estimator_confidence/agreement_score"),
            cfg,
        })
    }

    /// Feed one record (timestamps must be nondecreasing).
    ///
    /// # Errors
    ///
    /// [`webpuzzle_weblog::WeblogError::Unsorted`] on out-of-order
    /// input; estimator errors from a window that closed on this push.
    pub fn push(&mut self, record: &LogRecord) -> Result<()> {
        // Degradation mode tracks the governor on the same 64-record
        // cadence as the health gauges; the counter includes hard sheds
        // so a Red engine keeps re-reading the governor and relaxes.
        if (self.records + self.hard_shed_records).is_multiple_of(64) {
            self.update_degradation();
        }
        // Red: refuse records that would open a *new* session — the
        // one admission that grows the TTL map. Existing sessions keep
        // absorbing, and every refusal is counted.
        if self.degradation_mode == 2 && !self.sessionizer.is_open(record.client) {
            self.hard_shed_records += 1;
            self.hard_shed_counter.incr();
            return Ok(());
        }
        // Flight recorder: adopt the trace the source began for this
        // record, or start one iff the deterministic record index is
        // sampled. Inactive timers take no timestamps at all.
        let mut timer = profile::record_timer(self.records, record.timestamp);
        let started = self.sessionizer.push(record, &mut self.session_buf)?;
        timer.mark(Stage::Sessionize);
        // Degraded sampling gates the per-record estimators only:
        // totals, sessionization, and arrival windows stay exact. The
        // stride is deterministic in the record index, so a resumed
        // run samples identically.
        let sampled =
            self.degradation_mode == 0 || self.records.is_multiple_of(DEGRADED_SAMPLING_STRIDE);
        self.records += 1;
        self.bytes += record.bytes;
        self.records_counter.incr();
        self.bytes_counter.add(record.bytes);
        if sampled {
            self.response_bytes.push(record.bytes as f64);
            self.bytes_hist.record(record.bytes);
            self.live_bytes_hist.record(record.bytes);
        } else {
            self.sampled_out += 1;
            self.sampled_out_counter.incr();
        }

        // Window closes are rare and expensive (variance-time + the
        // Poisson battery), so while profiling they are timed on every
        // occurrence, not 1-in-N — a one-comparison pre-check decides
        // whether any timestamp is taken.
        let closing = profile::is_enabled() && self.request_arrivals.would_close(record.timestamp);
        let close_start = closing.then(std::time::Instant::now);
        let closed_from = self.request_windows.len();
        self.request_arrivals
            .push(record.timestamp, &mut self.window_buf)?;
        Self::drain_windows(
            &mut self.window_buf,
            &mut self.request_windows,
            &self.windows_counter,
        );
        if self.request_windows.len() > closed_from {
            self.observe_closed_windows(closed_from);
        }
        // The record that crossed a window boundary belongs to the new
        // window, so it joins the per-window accumulators *after* the
        // closed window was observed (the boundary-spanning
        // inter-arrival gap is charged to the new window).
        if sampled {
            self.window_bytes.push(record.bytes as f64);
            if self.last_arrival.is_finite() {
                self.window_interarrival
                    .push(record.timestamp - self.last_arrival);
            }
        }
        self.last_arrival = record.timestamp;
        if started {
            self.session_arrivals
                .push(record.timestamp, &mut self.window_buf)?;
            Self::drain_windows(
                &mut self.window_buf,
                &mut self.session_windows,
                &self.windows_counter,
            );
        }
        if let Some(t0) = close_start {
            profile::record_stage_ns(Stage::WindowClose, t0.elapsed().as_nanos() as u64);
            timer.resync();
            self.publish_window_timing(closed_from);
        }

        if !self.session_buf.is_empty() {
            self.backlog_gauge.set(self.session_buf.len() as f64);
            let evicted = std::mem::take(&mut self.session_buf);
            for session in &evicted {
                self.absorb_session(session);
            }
        }
        // Gauges are scraped at ≥ 1 s granularity, so refreshing them on
        // every 64th record keeps the hot path free of per-push atomic
        // stores without visible staleness (finish() does a final sync).
        if self.records.is_multiple_of(64) {
            self.update_health_gauges();
        }
        timer.mark(Stage::Estimators);
        timer.finish();
        Ok(())
    }

    /// Close all open sessions and the trailing window, and return the
    /// final summary. Further [`StreamAnalyzer::push`] calls are
    /// rejected as unsorted by the sessionizer's watermark only if they
    /// go backwards; calling `finish` twice is harmless.
    ///
    /// # Errors
    ///
    /// Estimator errors from the trailing window analysis.
    pub fn finish(&mut self) -> Result<StreamSummary> {
        if !self.finished {
            self.finished = true;
            let mut drained = std::mem::take(&mut self.session_buf);
            self.sessionizer.finish(&mut drained);
            for session in &drained {
                self.absorb_session(session);
            }
            let closed_from = self.request_windows.len();
            let close_start = profile::is_enabled().then(std::time::Instant::now);
            self.request_arrivals.finish(&mut self.window_buf)?;
            Self::drain_windows(
                &mut self.window_buf,
                &mut self.request_windows,
                &self.windows_counter,
            );
            if self.request_windows.len() > closed_from {
                self.observe_closed_windows(closed_from);
            }
            if let Some(t0) = close_start {
                if self.request_windows.len() > closed_from {
                    profile::record_stage_ns(Stage::WindowClose, t0.elapsed().as_nanos() as u64);
                    self.publish_window_timing(closed_from);
                }
            }
            self.session_arrivals.finish(&mut self.window_buf)?;
            Self::drain_windows(
                &mut self.window_buf,
                &mut self.session_windows,
                &self.windows_counter,
            );
            self.update_health_gauges();
            self.open_gauge.set(0.0);
            self.occupancy_gauge.set(0.0);
            if self.cfg.diagnostics {
                webpuzzle_obs::diagnostics::set_current(self.diagnostics_report());
            }
        }
        Ok(self.summary())
    }

    /// A snapshot of everything estimated so far — valid mid-stream
    /// (open sessions and the current partial window are *not*
    /// included) and after [`StreamAnalyzer::finish`] (everything is).
    pub fn summary(&self) -> StreamSummary {
        StreamSummary {
            records: self.records,
            sessions: self.sessionizer.emitted(),
            open_sessions: self.sessionizer.open_sessions(),
            peak_open_sessions: self.sessionizer.peak_open_sessions(),
            bytes: self.bytes,
            response_bytes: self.response_bytes.snapshot(),
            session_duration: self.session_duration.snapshot(),
            session_requests: self.session_requests.snapshot(),
            session_bytes: self.session_bytes.snapshot(),
            duration_tail: self.tail_snapshot(&self.duration_tail),
            requests_tail: self.tail_snapshot(&self.requests_tail),
            bytes_tail: self.tail_snapshot(&self.bytes_tail),
            request_windows: self.request_windows.clone(),
            session_windows: self.session_windows.clone(),
            drift: self.observatory.summary(),
            shed_sessions: self.sessionizer.shed_sessions(),
            shed_records: self.sessionizer.shed_records(),
            diagnostics: self.diagnostics_report(),
            hard_shed_records: self.hard_shed_records,
            sampled_out: self.sampled_out,
            sampling_stride: if self.degradation_mode >= 1 {
                DEGRADED_SAMPLING_STRIDE
            } else {
                1
            },
            early_evicted_sessions: self.sessionizer.early_evicted(),
        }
    }

    /// The per-request transfer-size histogram (log-bucketed).
    pub fn bytes_histogram(&self) -> &LogHistogram {
        &self.bytes_hist
    }

    /// Engine configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Records pushed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Drift results so far (cheaper than a full [`StreamAnalyzer::summary`]).
    pub fn drift_summary(&self) -> DriftSummary {
        self.observatory.summary()
    }

    /// Export the engine's complete mutable state for checkpointing.
    ///
    /// Valid at any push boundary; the internal session/window buffers
    /// are always drained within the push that filled them, so they are
    /// never part of the state.
    pub fn export_state(&self) -> EngineState {
        EngineState {
            sessionizer: self.sessionizer.export_state(),
            request_arrivals: self.request_arrivals.export_state(),
            session_arrivals: self.session_arrivals.export_state(),
            request_windows: self.request_windows.clone(),
            session_windows: self.session_windows.clone(),
            response_bytes: self.response_bytes.raw_parts(),
            bytes_hist: self.bytes_hist.export_state(),
            session_duration: self.session_duration.raw_parts(),
            session_requests: self.session_requests.raw_parts(),
            session_bytes: self.session_bytes.raw_parts(),
            duration_tail: self.duration_tail.export_state(),
            requests_tail: self.requests_tail.export_state(),
            bytes_tail: self.bytes_tail.export_state(),
            records: self.records,
            bytes: self.bytes,
            observatory: self.observatory.export_state(),
            window_bytes: self.window_bytes.raw_parts(),
            last_emitted: self.last_emitted,
            last_evict_time: self.last_evict_time,
            window_interarrival: self.window_interarrival.raw_parts(),
            last_arrival: self.last_arrival,
            diagnostics_windows: self.diagnostics_windows.clone(),
            degradation_mode: self.degradation_mode,
            sampled_out: self.sampled_out,
            hard_shed_records: self.hard_shed_records,
            forced_checkpoint_due: self.forced_checkpoint_due,
        }
    }

    /// Rebuild an engine from a configuration plus exported state. The
    /// restored engine produces a [`StreamSummary`] bit-identical to
    /// the uninterrupted run when fed the remaining records.
    ///
    /// Registry metrics restart from zero (process lifetime, see
    /// [`EngineState`]); the shed-event bookkeeping is seeded so a
    /// restore never re-announces sheds already reported.
    ///
    /// # Errors
    ///
    /// Rejects a state whose sessionizer threshold is invalid, as
    /// [`StreamAnalyzer::new`] would.
    pub fn restore(cfg: StreamConfig, state: &EngineState) -> Result<Self> {
        let mut engine = StreamAnalyzer::new(cfg)?;
        engine.sessionizer = StreamSessionizer::from_state(state.sessionizer.clone())?;
        engine.request_arrivals = WindowedArrivals::restore(
            engine.cfg.request_window.clone(),
            state.request_arrivals.clone(),
        );
        engine.session_arrivals = WindowedArrivals::restore(
            engine.cfg.session_window.clone(),
            state.session_arrivals.clone(),
        );
        engine.request_windows = state.request_windows.clone();
        engine.session_windows = state.session_windows.clone();
        let (n, mean, m2) = state.response_bytes;
        engine.response_bytes = Welford::from_raw_parts(n, mean, m2);
        let (buckets, count, sum) = &state.bytes_hist;
        engine.bytes_hist = LogHistogram::from_state(buckets, *count, *sum);
        let (n, mean, m2) = state.session_duration;
        engine.session_duration = Welford::from_raw_parts(n, mean, m2);
        let (n, mean, m2) = state.session_requests;
        engine.session_requests = Welford::from_raw_parts(n, mean, m2);
        let (n, mean, m2) = state.session_bytes;
        engine.session_bytes = Welford::from_raw_parts(n, mean, m2);
        let (k, seen, retained) = &state.duration_tail;
        engine.duration_tail = TopK::from_state(*k, *seen, retained);
        let (k, seen, retained) = &state.requests_tail;
        engine.requests_tail = TopK::from_state(*k, *seen, retained);
        let (k, seen, retained) = &state.bytes_tail;
        engine.bytes_tail = TopK::from_state(*k, *seen, retained);
        engine.records = state.records;
        engine.bytes = state.bytes;
        engine.observatory = DriftObservatory::restore(
            &engine.cfg.observatory,
            engine.cfg.request_window.window_len,
            &state.observatory,
        );
        let (n, mean, m2) = state.window_bytes;
        engine.window_bytes = Welford::from_raw_parts(n, mean, m2);
        engine.last_emitted = state.last_emitted;
        engine.last_evict_time = state.last_evict_time;
        let (n, mean, m2) = state.window_interarrival;
        engine.window_interarrival = Welford::from_raw_parts(n, mean, m2);
        engine.last_arrival = state.last_arrival;
        engine.diagnostics_windows = state.diagnostics_windows.clone();
        engine.shed_synced = engine.sessionizer.shed_sessions();
        engine.shed_records_synced = engine.sessionizer.shed_records();
        engine.degradation_mode = state.degradation_mode;
        engine.sampled_out = state.sampled_out;
        engine.hard_shed_records = state.hard_shed_records;
        engine.forced_checkpoint_due = state.forced_checkpoint_due;
        // Re-apply the restored mode (gauge + TTL scale); the restore
        // path never re-forces a checkpoint the flag doesn't carry.
        engine.apply_degradation(false);
        Ok(engine)
    }

    /// Feed every request window closed since `from` to the drift
    /// observatory, publishing any alarms to the global event ring.
    /// The per-window bytes accumulator describes the oldest closed
    /// window (later ones, if any, were empty quiet stretches) and is
    /// recycled here.
    fn observe_closed_windows(&mut self, from: usize) {
        let window_len = self.cfg.request_window.window_len;
        let alpha = self
            .bytes_tail
            .hill_with_k_max(self.bytes_tail.batch_k_max(self.cfg.tail_fraction));
        let observations: Vec<WindowObservation> = self.request_windows[from..]
            .iter()
            .enumerate()
            .map(|(i, w)| WindowObservation {
                index: w.index,
                start: w.start,
                rate: w.events as f64 / window_len,
                bytes_mean: if i == 0 && self.window_bytes.count() > 0 {
                    Some(self.window_bytes.mean())
                } else {
                    None
                },
                hill_alpha: alpha,
                h_variance_time: w.h_variance_time,
            })
            .collect();
        let diag_rows: Vec<WindowDiagnostics> = if self.cfg.diagnostics {
            let scan = diagnostics::scan_tail(&self.bytes_tail, self.cfg.tail_fraction);
            self.request_windows[from..]
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    diagnostics::window_row(
                        w,
                        scan.as_ref(),
                        (i == 0).then_some(&self.window_bytes),
                        (i == 0).then_some(&self.window_interarrival),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        self.window_bytes = Welford::new();
        self.window_interarrival = Welford::new();
        for obs in &observations {
            for event in self.observatory.observe(obs) {
                webpuzzle_obs::events::publish(event);
            }
        }
        if self.cfg.diagnostics {
            for row in &diag_rows {
                if let Some(v) = row.alpha_ci_half_width {
                    self.alpha_ci_gauge.set(v);
                }
                if let Some(v) = row.h_ci_half_width {
                    self.h_ci_gauge.set(v);
                }
                if let Some(v) = row.h_r_squared {
                    self.r_squared_gauge.set(v);
                }
                if let Some(v) = row.agreement_score {
                    self.agreement_gauge.set(v);
                }
                if let Some(event) = diagnostics::events_for(row) {
                    webpuzzle_obs::events::publish(event);
                }
            }
            self.diagnostics_windows.extend(diag_rows);
            webpuzzle_obs::diagnostics::set_current(self.diagnostics_report());
        }
    }

    /// The estimator confidence/agreement evidence accumulated so far,
    /// as the schema-versioned report served at `/diagnostics` and
    /// embedded in [`StreamSummary`]. When the engine runs with
    /// [`StreamConfig::diagnostics`] off, the report is empty with
    /// `enabled: false`.
    pub fn diagnostics_report(&self) -> DiagnosticsReport {
        diagnostics::build_report(self.cfg.diagnostics, self.diagnostics_windows.clone())
    }

    /// Publish one Info timeline event for the window-close batch that
    /// just happened: per-stage self-time accumulated since the
    /// previous timing event, plus the watermark lag behind the newest
    /// closed window's end. Batches are singletons except across quiet
    /// gaps (empty windows closed by one push share a delta). Only
    /// called while profiling is enabled, so runs without `--profile`
    /// leave the event ring and JSONL log untouched.
    fn publish_window_timing(&mut self, closed_from: usize) {
        if self.request_windows.len() <= closed_from {
            return;
        }
        let Some(last) = self.request_windows.last() else {
            return;
        };
        let totals = profile::stage_totals();
        let mut breakdown = String::new();
        let mut delta_total_ns = 0u64;
        for (i, stage) in profile::STAGES.iter().enumerate() {
            let d = totals[i].wrapping_sub(self.profile_totals[i]);
            if d > 0 {
                if !breakdown.is_empty() {
                    breakdown.push_str(", ");
                }
                breakdown.push_str(&format!("{} {:.2}ms", stage.as_str(), d as f64 / 1e6));
                delta_total_ns += d;
            }
        }
        self.profile_totals = totals;
        let end = last.start + self.cfg.request_window.window_len;
        let lag = (self.sessionizer.watermark() - end).max(0.0);
        let self_time_ms = delta_total_ns as f64 / 1e6;
        webpuzzle_obs::events::publish(webpuzzle_obs::events::Event::new(
            webpuzzle_obs::events::Severity::Info,
            "flight_recorder",
            "window_timing",
            last.index,
            last.start,
            0.0,
            self_time_ms,
            lag,
            0.0,
            format!(
                "window {} pipeline self-time {:.2} ms ({}), watermark lag {:.1} s",
                last.index,
                self_time_ms,
                if breakdown.is_empty() {
                    "sampled stages idle"
                } else {
                    &breakdown
                },
                lag
            ),
        ));
    }

    /// Re-read the process governor (when one is installed) and apply
    /// any stage change. Called on the 64-record cadence, so a mode is
    /// stable between cadence boundaries and a resumed run — which
    /// restores the mode and the counters the cadence is computed
    /// from — re-applies it at the same record indexes.
    fn update_degradation(&mut self) {
        if !governor::is_installed() {
            return;
        }
        let mode = governor::state().code();
        if mode != self.degradation_mode {
            self.degradation_mode = mode;
            self.apply_degradation(true);
        }
    }

    /// Wire the current mode into the sessionizer and gauges. `entered`
    /// distinguishes a live transition (Red entry forces a checkpoint)
    /// from a restore re-applying saved state.
    fn apply_degradation(&mut self, entered: bool) {
        let scale = if self.degradation_mode >= 1 {
            DEGRADED_TTL_SCALE
        } else {
            1.0
        };
        self.sessionizer.set_ttl_scale(scale);
        if entered && self.degradation_mode == 2 {
            self.forced_checkpoint_due = true;
        }
        self.mode_gauge.set(self.degradation_mode as f64);
    }

    /// True once after the engine enters Red — the supervisor's cue to
    /// write an immediate checkpoint. Reading clears the flag (it is
    /// checkpointed, so a crash between Red entry and the forced write
    /// re-arms on restore).
    pub fn take_forced_checkpoint(&mut self) -> bool {
        std::mem::take(&mut self.forced_checkpoint_due)
    }

    /// Governor degradation mode the engine is currently applying
    /// (0 = Green, 1 = Yellow, 2 = Red).
    pub fn degradation_mode(&self) -> u8 {
        self.degradation_mode
    }

    #[cfg(test)]
    pub(crate) fn force_mode(&mut self, mode: u8) {
        self.degradation_mode = mode;
        self.apply_degradation(true);
    }

    /// Refresh the pipeline-health gauges: TTL-map occupancy, eviction
    /// staleness relative to the watermark, and the eviction rate over
    /// the stretch since sessions last left the map.
    fn update_health_gauges(&mut self) {
        // The eviction buffer is drained within the push that filled it,
        // so by sync time the true backlog is always zero; the gauge
        // holds the last batch size until this decay.
        self.backlog_gauge.set(0.0);
        let open = self.sessionizer.open_sessions() as f64;
        self.open_gauge.set(open);
        self.occupancy_gauge.set(open);
        // Session occupancy is one of the governor's budget inputs;
        // evaluate here too so a hub-less binary (stream-analyze)
        // still walks the stage machine on the health-gauge cadence.
        governor::set_sessions(self.sessionizer.open_sessions() as u64);
        governor::evaluate();
        self.peak_gauge
            .set(self.sessionizer.peak_open_sessions() as f64);
        let sweep = self.sessionizer.last_sweep();
        if sweep.is_finite() {
            self.watermark_lag_gauge
                .set(self.sessionizer.watermark() - sweep);
        }
        let shed = self.sessionizer.shed_sessions();
        if shed > self.shed_synced {
            let shed_records = self.sessionizer.shed_records();
            self.shed_counter
                .add(shed_records - self.shed_records_synced);
            webpuzzle_obs::events::publish(webpuzzle_obs::events::Event::new(
                webpuzzle_obs::events::Severity::Warn,
                "load_shed",
                "stream/open_sessions",
                0,
                self.sessionizer.watermark(),
                self.sessionizer.max_open() as f64,
                self.sessionizer.open_sessions() as f64,
                shed as f64,
                self.sessionizer.max_open() as f64,
                format!(
                    "load shedding: {} sessions ({} records) truncated early at \
                     max_open_sessions = {}",
                    shed,
                    shed_records,
                    self.sessionizer.max_open()
                ),
            ));
            self.shed_synced = shed;
            self.shed_records_synced = shed_records;
        }
        let emitted = self.sessionizer.emitted();
        if emitted > self.last_emitted {
            if self.last_evict_time.is_finite() {
                let dt = self.sessionizer.watermark() - self.last_evict_time;
                if dt > 0.0 {
                    self.evict_rate_gauge
                        .set((emitted - self.last_emitted) as f64 / dt);
                }
            }
            self.last_emitted = emitted;
            self.last_evict_time = self.sessionizer.watermark();
        }
    }

    fn tail_snapshot(&self, tail: &TopK) -> TailSnapshot {
        TailSnapshot {
            seen: tail.seen(),
            retained: tail.retained(),
            alpha: tail.hill_with_k_max(tail.batch_k_max(self.cfg.tail_fraction)),
        }
    }

    fn absorb_session(&mut self, session: &Session) {
        self.sessions_counter.incr();
        let duration = session.duration();
        self.session_duration.push(duration);
        self.session_requests.push(session.request_count as f64);
        self.session_bytes.push(session.bytes as f64);
        self.duration_tail.push(duration);
        self.requests_tail.push(session.request_count as f64);
        self.bytes_tail.push(session.bytes as f64);
        self.live_duration_hist.record(duration.max(0.0) as u64);
    }

    fn drain_windows(
        buf: &mut Vec<WindowReport>,
        into: &mut Vec<WindowReport>,
        counter: &metrics::Counter,
    ) {
        if !buf.is_empty() {
            counter.add(buf.len() as u64);
            into.append(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webpuzzle_weblog::{sessionize, Method};

    fn record(t: f64, client: u32, bytes: u64) -> LogRecord {
        LogRecord::new(t, client, Method::Get, client, 200, bytes)
    }

    fn small_config() -> StreamConfig {
        StreamConfig {
            session_threshold: 100.0,
            request_window: WindowConfig {
                window_len: 600.0,
                fine_bin_width: None,
                min_poisson_arrivals: 5,
                ..WindowConfig::default()
            },
            session_window: WindowConfig {
                window_len: 600.0,
                fine_bin_width: None,
                min_poisson_arrivals: 5,
                ..WindowConfig::default()
            },
            ..StreamConfig::default()
        }
    }

    #[test]
    fn counts_match_batch_pipeline() {
        let records: Vec<LogRecord> = (0..2_000)
            .map(|i| {
                record(
                    i as f64 * 1.7,
                    (i % 37) as u32,
                    100 + (i * 13) as u64 % 5_000,
                )
            })
            .collect();
        let mut engine = StreamAnalyzer::new(small_config()).unwrap();
        for r in &records {
            engine.push(r).unwrap();
        }
        let summary = engine.finish().unwrap();
        let batch = sessionize(&records, 100.0).unwrap();
        assert_eq!(summary.records, 2_000);
        assert_eq!(summary.sessions, batch.len() as u64);
        assert_eq!(summary.bytes, records.iter().map(|r| r.bytes).sum::<u64>());
        assert_eq!(summary.open_sessions, 0);
        assert_eq!(
            summary.session_requests.count + summary.session_duration.count,
            2 * batch.len() as u64
        );
    }

    #[test]
    fn moments_match_batch_sessions() {
        let records: Vec<LogRecord> = (0..5_000)
            .map(|i| record(i as f64 * 0.9, (i % 113) as u32, (i * 7) as u64 % 9_000 + 1))
            .collect();
        let mut engine = StreamAnalyzer::new(small_config()).unwrap();
        for r in &records {
            engine.push(r).unwrap();
        }
        let summary = engine.finish().unwrap();
        let batch = sessionize(&records, 100.0).unwrap();
        let durations: Vec<f64> = batch.iter().map(|s| s.duration()).collect();
        let mean = durations.iter().sum::<f64>() / durations.len() as f64;
        assert!((summary.session_duration.mean - mean).abs() < 1e-9);
        let bytes_mean = batch.iter().map(|s| s.bytes as f64).sum::<f64>() / batch.len() as f64;
        assert!((summary.session_bytes.mean - bytes_mean).abs() < 1e-6);
    }

    #[test]
    fn windows_appear_in_the_summary() {
        let mut engine = StreamAnalyzer::new(small_config()).unwrap();
        // 0.5 s spacing over 310 clients: each client recurs every
        // 155 s — past the 100 s threshold — so sessions start (and
        // complete) throughout the stream, not just at the front.
        for i in 0..3_100u32 {
            engine.push(&record(i as f64 * 0.5, i % 310, 256)).unwrap();
        }
        let summary = engine.finish().unwrap();
        // 1549.5 s of traffic over 600 s windows: 2 full windows plus a
        // more-than-half-covered trailing stub.
        assert_eq!(summary.request_windows.len(), 3);
        assert!(summary.request_windows[0].events > 0);
        assert_eq!(summary.session_windows.len(), 3);
    }

    #[test]
    fn mid_stream_summary_is_partial_but_consistent() {
        let mut engine = StreamAnalyzer::new(small_config()).unwrap();
        for i in 0..500u32 {
            engine.push(&record(i as f64 * 2.0, i % 7, 64)).unwrap();
        }
        let partial = engine.summary();
        assert_eq!(partial.records, 500);
        assert_eq!(partial.open_sessions, 7);
        assert!(partial.sessions < 500);
        let fin = engine.finish().unwrap();
        assert_eq!(fin.open_sessions, 0);
        assert!(fin.sessions >= partial.sessions);
        // finish() is idempotent.
        let again = engine.finish().unwrap();
        assert_eq!(again, fin);
    }

    #[test]
    fn state_round_trip_reproduces_the_summary_bit_for_bit() {
        let records: Vec<LogRecord> = (0..4_000)
            .map(|i| {
                record(
                    i as f64 * 0.8,
                    (i % 211) as u32,
                    50 + (i * 31) as u64 % 12_000,
                )
            })
            .collect();
        let split = 1_777;

        let mut whole = StreamAnalyzer::new(small_config()).unwrap();
        for r in &records {
            whole.push(r).unwrap();
        }
        let expected = whole.finish().unwrap();

        let mut first = StreamAnalyzer::new(small_config()).unwrap();
        for r in &records[..split] {
            first.push(r).unwrap();
        }
        let state = first.export_state();
        let mut second = StreamAnalyzer::restore(small_config(), &state).unwrap();
        assert_eq!(second.export_state(), state);
        for r in &records[split..] {
            second.push(r).unwrap();
        }
        let resumed = second.finish().unwrap();

        assert_eq!(resumed, expected);
    }

    #[test]
    fn diagnostics_rows_accrue_only_when_enabled() {
        let cfg = StreamConfig {
            diagnostics: true,
            ..small_config()
        };
        let mut engine = StreamAnalyzer::new(cfg).unwrap();
        for i in 0..3_100u32 {
            engine
                .push(&record(
                    i as f64 * 0.5,
                    i % 310,
                    100 + (i as u64 * 37) % 20_000,
                ))
                .unwrap();
        }
        let summary = engine.finish().unwrap();
        assert!(summary.diagnostics.enabled);
        assert_eq!(
            summary.diagnostics.windows.len(),
            summary.request_windows.len()
        );
        for (row, w) in summary
            .diagnostics
            .windows
            .iter()
            .zip(&summary.request_windows)
        {
            assert_eq!(row.index, w.index);
            assert_eq!(row.h, w.h_variance_time);
            assert_eq!(row.h_ci_half_width, w.h_ci_half_width);
        }
        // The first closed window carries the mean CIs; later windows
        // in the same run get their own accumulators.
        let first = &summary.diagnostics.windows[0];
        assert!(first.bytes_mean.is_some());
        assert!(first.bytes_mean_ci_half_width.is_some());
        assert!(first.interarrival_mean.is_some());

        // A default-config run publishes the block but no rows.
        let mut off = StreamAnalyzer::new(small_config()).unwrap();
        for i in 0..3_100u32 {
            off.push(&record(i as f64 * 0.5, i % 310, 256)).unwrap();
        }
        let off_summary = off.finish().unwrap();
        assert!(!off_summary.diagnostics.enabled);
        assert!(off_summary.diagnostics.windows.is_empty());
    }

    #[test]
    fn diagnostics_state_round_trips_bit_for_bit() {
        let cfg = || StreamConfig {
            diagnostics: true,
            ..small_config()
        };
        let records: Vec<LogRecord> = (0..4_000)
            .map(|i| {
                record(
                    i as f64 * 0.8,
                    (i % 211) as u32,
                    50 + (i * 31) as u64 % 12_000,
                )
            })
            .collect();
        let split = 2_333;

        let mut whole = StreamAnalyzer::new(cfg()).unwrap();
        for r in &records {
            whole.push(r).unwrap();
        }
        let expected = whole.finish().unwrap();
        assert!(!expected.diagnostics.windows.is_empty());

        let mut first = StreamAnalyzer::new(cfg()).unwrap();
        for r in &records[..split] {
            first.push(r).unwrap();
        }
        let state = first.export_state();
        let mut second = StreamAnalyzer::restore(cfg(), &state).unwrap();
        assert_eq!(second.export_state(), state);
        for r in &records[split..] {
            second.push(r).unwrap();
        }
        let resumed = second.finish().unwrap();

        assert_eq!(resumed, expected);
        assert_eq!(resumed.diagnostics, expected.diagnostics);
    }

    #[test]
    fn capped_engine_sheds_and_reports() {
        let cfg = StreamConfig {
            max_open_sessions: 20,
            ..small_config()
        };
        let mut engine = StreamAnalyzer::new(cfg).unwrap();
        // 97 clients interleaved at 0.5 s spacing: every client's
        // session stays live (recurrence 48.5 s < 100 s threshold), so
        // the 20-session cap must shed.
        for i in 0..2_000u32 {
            engine.push(&record(i as f64 * 0.5, i % 97, 128)).unwrap();
        }
        let summary = engine.finish().unwrap();
        assert!(summary.shed_sessions > 0);
        assert!(summary.shed_records > 0);
        assert!(summary.peak_open_sessions <= 20);
        // Shed sessions are truncated, not dropped: every record still
        // belongs to exactly one completed session.
        let total_requests = summary.session_requests.mean * summary.session_requests.count as f64;
        assert!((total_requests - 2_000.0).abs() < 1e-6);
    }

    #[test]
    fn yellow_sampling_widens_counts_honestly_and_round_trips() {
        let records: Vec<LogRecord> = (0..2_000)
            .map(|i| {
                record(
                    i as f64 * 0.9,
                    (i % 61) as u32,
                    100 + (i * 17) as u64 % 4_000,
                )
            })
            .collect();
        let run = |split: Option<usize>| {
            let mut engine = StreamAnalyzer::new(small_config()).unwrap();
            engine.force_mode(1);
            let split = split.unwrap_or(records.len());
            for r in &records[..split] {
                engine.push(r).unwrap();
            }
            if split < records.len() {
                let state = engine.export_state();
                engine = StreamAnalyzer::restore(small_config(), &state).unwrap();
                assert_eq!(engine.export_state(), state);
                for r in &records[split..] {
                    engine.push(r).unwrap();
                }
            }
            engine.finish().unwrap()
        };
        let whole = run(None);
        // 1-in-4 sampling: the estimator count shrinks by the stride,
        // every skip is counted, totals stay exact.
        assert_eq!(whole.sampling_stride, DEGRADED_SAMPLING_STRIDE);
        assert_eq!(whole.sampled_out, 1_500);
        assert_eq!(whole.response_bytes.count, 500);
        assert_eq!(whole.records, 2_000);
        assert_eq!(
            whole.bytes,
            records.iter().map(|r| r.bytes).sum::<u64>(),
            "byte totals are never sampled"
        );
        // The stride is deterministic in the record index, so a
        // kill-and-resume run reproduces the summary bit for bit.
        let resumed = run(Some(777));
        assert_eq!(resumed, whole);
    }

    #[test]
    fn red_hard_sheds_new_sessions_but_feeds_open_ones() {
        let mut engine = StreamAnalyzer::new(small_config()).unwrap();
        // Open sessions for clients 0..5 while Green.
        for i in 0..5u32 {
            engine.push(&record(i as f64, i, 64)).unwrap();
        }
        engine.force_mode(2);
        assert!(
            engine.take_forced_checkpoint(),
            "Red entry forces a checkpoint"
        );
        assert!(!engine.take_forced_checkpoint(), "the flag reads once");
        // Known clients keep absorbing; strangers are refused, counted.
        for i in 0..20u32 {
            engine.push(&record(10.0 + i as f64, i % 10, 64)).unwrap();
        }
        let summary = engine.finish().unwrap();
        assert_eq!(
            summary.hard_shed_records, 10,
            "clients 5..10 refused twice each"
        );
        assert_eq!(summary.records, 5 + 10);
        assert_eq!(summary.sessions, 5, "no new sessions under Red");
    }

    #[test]
    fn rejects_invalid_threshold() {
        let cfg = StreamConfig {
            session_threshold: 0.0,
            ..StreamConfig::default()
        };
        assert!(StreamAnalyzer::new(cfg).is_err());
    }
}
