//! Chunked Common Log Format reading.
//!
//! [`ClfSource`] pulls lines from any [`BufRead`] — a file, stdin, a
//! socket — through a reusable byte buffer, so memory is one line at a
//! time no matter how long the log is. Malformed lines either abort
//! (strict mode, mirroring [`webpuzzle_weblog::clf::parse_log`]) or are
//! skipped and counted (lenient mode, mirroring
//! [`webpuzzle_weblog::clf::parse_log_lenient`]).

use crate::checkpoint::SourcePosition;
use crate::pipeline::Source;
use crate::supervisor::RecoverableSource;
use crate::Result;
use std::io::BufRead;
use std::sync::Arc;
use webpuzzle_obs::{metrics, profile};
use webpuzzle_weblog::clf::{parse_line, MALFORMED_SKIPPED_COUNTER};
use webpuzzle_weblog::{LogRecord, MalformedBreakdown, MalformedKind, WeblogError};

/// Registry counters for the per-cause malformed-line breakdown, in
/// [`MalformedKind::ALL`] order. Named
/// `weblog/malformed_lines/<kind>`, which `/metrics` renders as one
/// labeled Prometheus family `webpuzzle_malformed_lines_total{kind=…}`.
pub(crate) fn malformed_kind_counters() -> [Arc<metrics::Counter>; 4] {
    MalformedKind::ALL.map(|k| {
        metrics::counter(&format!(
            "{}{}",
            metrics::MALFORMED_LINES_PREFIX,
            k.as_str()
        ))
    })
}

/// The counter for one kind, from a [`malformed_kind_counters`] array.
pub(crate) fn kind_counter(
    counters: &[Arc<metrics::Counter>; 4],
    kind: MalformedKind,
) -> &Arc<metrics::Counter> {
    let i = MalformedKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("every kind is in ALL");
    &counters[i]
}

/// A pull-based CLF record source over any buffered reader.
///
/// # Examples
///
/// ```
/// use webpuzzle_stream::{ClfSource, Source};
///
/// let log = "10.0.0.1 - - [12/Jan/2004:00:00:07 +0000] \"GET /r/1 HTTP/1.0\" 200 10\n\
///            garbage\n\
///            10.0.0.2 - - [12/Jan/2004:00:00:09 +0000] \"GET /r/2 HTTP/1.0\" 200 20\n";
/// let mut source = ClfSource::new(log.as_bytes(), 1_073_865_600).lenient(true);
/// let mut n = 0;
/// while let Some(rec) = source.next_item() {
///     rec.unwrap();
///     n += 1;
/// }
/// assert_eq!(n, 2);
/// assert_eq!(source.skipped(), 1);
/// ```
#[derive(Debug)]
pub struct ClfSource<R> {
    reader: R,
    base_epoch: i64,
    lenient: bool,
    buf: Vec<u8>,
    byte_offset: u64,
    line_no: usize,
    parsed: u64,
    skipped: u64,
    malformed: MalformedBreakdown,
    done: bool,
    parsed_counter: Arc<webpuzzle_obs::ShardedCounter>,
    skip_counter: Arc<metrics::Counter>,
    kind_counters: [Arc<metrics::Counter>; 4],
}

impl<R: BufRead> ClfSource<R> {
    /// Wrap a buffered reader; record timestamps come out relative to
    /// `base_epoch` (Unix seconds).
    pub fn new(reader: R, base_epoch: i64) -> Self {
        ClfSource {
            reader,
            base_epoch,
            lenient: false,
            buf: Vec::with_capacity(256),
            byte_offset: 0,
            line_no: 0,
            parsed: 0,
            skipped: 0,
            malformed: MalformedBreakdown::default(),
            done: false,
            parsed_counter: metrics::sharded_counter("weblog/records_parsed"),
            skip_counter: metrics::counter(MALFORMED_SKIPPED_COUNTER),
            kind_counters: malformed_kind_counters(),
        }
    }

    /// Skip (and count) malformed lines instead of aborting the stream.
    /// Invalid UTF-8 bytes are always replaced, never fatal.
    pub fn lenient(mut self, lenient: bool) -> Self {
        self.lenient = lenient;
        self
    }

    /// Records successfully parsed so far.
    pub fn parsed(&self) -> u64 {
        self.parsed
    }

    /// Malformed lines skipped so far (always 0 in strict mode).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// 1-based number of the last line read.
    pub fn line_number(&self) -> usize {
        self.line_no
    }

    /// Bytes consumed from the reader so far. After a yielded record
    /// this is exactly the end of its line, so it doubles as the seek
    /// target for resuming a file-backed source.
    pub fn byte_offset(&self) -> u64 {
        self.byte_offset
    }

    /// Breakdown of the skipped lines by cause (lenient mode).
    pub fn malformed(&self) -> MalformedBreakdown {
        self.malformed
    }

    /// Restore the position counters from a checkpoint. The caller is
    /// responsible for seeking the underlying reader to
    /// `position.byte_offset` *before* wrapping it — this source only
    /// carries the bookkeeping forward so parse counts, line numbers,
    /// and offsets continue instead of restarting at zero.
    pub fn with_position(mut self, position: &SourcePosition) -> Self {
        self.byte_offset = position.byte_offset;
        self.line_no = position.line_no as usize;
        self.parsed = position.parsed;
        self.skipped = position.skipped;
        self.malformed = position.malformed;
        self
    }
}

impl<R: BufRead> RecoverableSource for ClfSource<R> {
    fn position(&self) -> SourcePosition {
        SourcePosition {
            byte_offset: self.byte_offset,
            line_no: self.line_no as u64,
            parsed: self.parsed,
            skipped: self.skipped,
            malformed: self.malformed,
        }
    }
}

impl<R: BufRead> Source for ClfSource<R> {
    type Item = LogRecord;

    fn next_item(&mut self) -> Option<Result<LogRecord>> {
        if self.done {
            return None;
        }
        // Flight recorder: the sampling decision comes from the
        // deterministic index of the *next* parsed record, before any
        // work — unsampled records never take a timestamp. Skipped
        // malformed/blank lines on the way to a sampled record are
        // charged to it (they are part of producing it).
        let sample = profile::should_sample(self.parsed);
        let mut read_ns = 0u64;
        let mut parse_ns = 0u64;
        loop {
            self.buf.clear();
            let t_read = sample.then(std::time::Instant::now);
            let read = self.reader.read_until(b'\n', &mut self.buf);
            if let Some(t0) = t_read {
                read_ns += t0.elapsed().as_nanos() as u64;
            }
            match read {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(n) => self.byte_offset += n as u64,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
            }
            self.line_no += 1;
            let line = String::from_utf8_lossy(&self.buf);
            let line = line.trim_end_matches(['\n', '\r']);
            if line.trim().is_empty() {
                continue;
            }
            let t_parse = sample.then(std::time::Instant::now);
            let parsed = parse_line(line, self.base_epoch);
            if let Some(t0) = t_parse {
                parse_ns += t0.elapsed().as_nanos() as u64;
            }
            match parsed {
                Ok(rec) => {
                    if sample {
                        profile::begin_trace(self.parsed, rec.timestamp);
                        profile::trace_add(profile::Stage::SourceRead, read_ns);
                        profile::trace_add(profile::Stage::ClfParse, parse_ns);
                    }
                    self.parsed += 1;
                    self.parsed_counter.incr();
                    return Some(Ok(rec));
                }
                Err(WeblogError::ParseLine { reason, .. }) if self.lenient => {
                    self.skipped += 1;
                    let kind = MalformedKind::classify(&reason);
                    self.malformed.record(kind);
                    self.skip_counter.incr();
                    kind_counter(&self.kind_counters, kind).incr();
                }
                Err(WeblogError::ParseLine { reason, .. }) => {
                    self.done = true;
                    return Some(Err(WeblogError::ParseLine {
                        line: self.line_no,
                        reason,
                    }
                    .into()));
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webpuzzle_weblog::clf::format_line;
    use webpuzzle_weblog::Method;

    const BASE: i64 = 1_073_865_600;

    fn log_text(n: usize) -> String {
        (0..n)
            .map(|i| {
                let rec = LogRecord::new(i as f64, i as u32, Method::Get, 1, 200, 10);
                format_line(&rec, BASE) + "\n"
            })
            .collect()
    }

    fn drain<R: BufRead>(mut src: ClfSource<R>) -> (Vec<LogRecord>, ClfSource<R>) {
        let mut out = Vec::new();
        while let Some(item) = src.next_item() {
            out.push(item.expect("parse ok"));
        }
        (out, src)
    }

    #[test]
    fn lenient_skips_bump_the_per_kind_counters() {
        let counters = malformed_kind_counters();
        let before: Vec<u64> = counters.iter().map(|c| c.get()).collect();
        let good = format_line(&LogRecord::new(5.0, 1, Method::Get, 1, 200, 10), BASE);
        let text = format!(
            "{good}\n\
             10.0.0.1 - - [not a date] \"GET /x HTTP/1.0\" 200 10\n\
             10.0.0.1 - - [12/Jan/2004:00:00:07 +0000] \"GET /x HTTP/1.0\" abc 10\n\
             total garbage\n"
        );
        let (records, src) = drain(ClfSource::new(text.as_bytes(), BASE).lenient(true));
        assert_eq!(records.len(), 1);
        assert_eq!(src.malformed().bad_timestamp, 1);
        assert_eq!(src.malformed().bad_status, 1);
        // Each counter moved by at least this source's tally (the
        // registry is process-global, so other tests may add more).
        for (i, kind) in MalformedKind::ALL.iter().enumerate() {
            assert!(
                counters[i].get() >= before[i] + src.malformed().count(*kind),
                "counter for {} did not advance",
                kind.as_str()
            );
        }
    }

    #[test]
    fn streams_all_records() {
        let text = log_text(100);
        let (records, src) = drain(ClfSource::new(text.as_bytes(), BASE));
        assert_eq!(records.len(), 100);
        assert_eq!(src.parsed(), 100);
        assert_eq!(records[7].timestamp, 7.0);
    }

    #[test]
    fn matches_batch_parse() {
        let text = log_text(50);
        let batch = webpuzzle_weblog::clf::parse_log(&text, BASE).unwrap();
        let (streamed, _) = drain(ClfSource::new(text.as_bytes(), BASE));
        assert_eq!(streamed, batch);
    }

    #[test]
    fn strict_mode_reports_line_number() {
        let text = format!("{}garbage here\n{}", log_text(2), log_text(1));
        let mut src = ClfSource::new(text.as_bytes(), BASE);
        assert!(src.next_item().unwrap().is_ok());
        assert!(src.next_item().unwrap().is_ok());
        match src.next_item().unwrap() {
            Err(crate::StreamError::Weblog(WeblogError::ParseLine { line, .. })) => {
                assert_eq!(line, 3)
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // A failed strict source is exhausted.
        assert!(src.next_item().is_none());
    }

    #[test]
    fn lenient_mode_skips_garbage_and_bad_utf8() {
        let mut bytes = log_text(3).into_bytes();
        bytes.extend_from_slice(b"\xFF\xFE broken bytes\n");
        bytes.extend_from_slice(log_text(2).as_bytes());
        let (records, src) = drain(ClfSource::new(&bytes[..], BASE).lenient(true));
        assert_eq!(records.len(), 5);
        assert_eq!(src.skipped(), 1);
    }

    #[test]
    fn blank_lines_are_free() {
        let text = format!("\n\n{}\n\n", log_text(2));
        let (records, src) = drain(ClfSource::new(text.as_bytes(), BASE));
        assert_eq!(records.len(), 2);
        assert_eq!(src.skipped(), 0);
    }

    #[test]
    fn missing_trailing_newline_still_parses() {
        let text = log_text(2);
        let text = text.trim_end();
        let (records, _) = drain(ClfSource::new(text.as_bytes(), BASE));
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn position_tracks_exact_end_of_line_offsets() {
        let text = log_text(10);
        let mut src = ClfSource::new(text.as_bytes(), BASE);
        let mut consumed = 0usize;
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        for line in &lines[..6] {
            src.next_item().unwrap().unwrap();
            consumed += line.len();
            assert_eq!(src.position().byte_offset, consumed as u64);
        }
        let pos = src.position();
        assert_eq!(pos.parsed, 6);
        assert_eq!(pos.line_no, 6);
        assert_eq!(pos.skipped, 0);
    }

    #[test]
    fn seek_and_with_position_resumes_identical_records() {
        use std::io::{Cursor, Seek, SeekFrom};

        let mut bytes = log_text(4).into_bytes();
        bytes.extend_from_slice(b"not a log line\n");
        bytes.extend_from_slice(log_text(8).as_bytes());

        let (whole, whole_src) =
            drain(ClfSource::new(Cursor::new(bytes.clone()), BASE).lenient(true));

        // Run a prefix, capture the position, then resume from a fresh
        // reader seeked to the recorded byte offset.
        let mut head = ClfSource::new(Cursor::new(bytes.clone()), BASE).lenient(true);
        for _ in 0..5 {
            head.next_item().unwrap().unwrap();
        }
        let pos = head.position();
        assert_eq!(pos.parsed, 5);
        assert_eq!(pos.skipped, 1);
        assert_eq!(pos.malformed.total(), 1);

        let mut reader = Cursor::new(bytes);
        reader.seek(SeekFrom::Start(pos.byte_offset)).unwrap();
        let (tail, tail_src) = drain(
            ClfSource::new(reader, BASE)
                .lenient(true)
                .with_position(&pos),
        );

        assert_eq!(tail.len(), whole.len() - 5);
        assert_eq!(tail[..], whole[5..]);
        assert_eq!(tail_src.position(), whole_src.position());
    }
}
