//! Per-window estimator confidence & agreement diagnostics.
//!
//! The engine's per-window numbers (Hill α over the session-bytes
//! top-k heap, variance-time H over the request arrival counts,
//! Welford byte/inter-arrival means) become self-describing here: each
//! closed window gets a [`WindowDiagnostics`] row carrying confidence
//! intervals, Hill-plateau evidence, regression fit quality, and a
//! verdict on the heavy-tail/LRD consistency relation `2H = 3 − α`
//! (Faÿ–Roueff–Soulier 2007). The types live in
//! [`webpuzzle_obs::diagnostics`] so the telemetry server and
//! `RunReport` can carry them without depending on this crate; this
//! module is the computation.
//!
//! Everything is deterministic in the engine state, so diagnostics
//! rows round-trip crash/resume bit-identically alongside the rest of
//! the checkpoint.

use crate::online::{TopK, Welford};
use crate::window::WindowReport;
use webpuzzle_heavytail::{hill_stability_scan, HillStabilityScan};
use webpuzzle_obs::diagnostics::{AgreementVerdict, DiagnosticsReport, WindowDiagnostics};
use webpuzzle_obs::events::{Event, Severity};
use webpuzzle_stats::special::normal_quantile;

/// Two-sided confidence level of every interval the engine reports.
pub const CONFIDENCE_LEVEL: f64 = 0.95;

/// Propagated error bands wider than this make the agreement test
/// uninformative — the window is scored
/// [`AgreementVerdict::LowConfidence`] instead of agree/disagree. The
/// feasible gap range is about `[0, 2]` (`2H ∈ [1, 2]`, `3 − α` mostly
/// in `[1, 2]`), so a band wider than 0.75 covers most of it and the
/// verdict would be "agree" no matter what the estimators said.
pub const AGREEMENT_BAND_MAX: f64 = 0.75;

/// Detector name on `low_confidence` events.
pub const LOW_CONFIDENCE_DETECTOR: &str = "low_confidence";

/// Detector name on `estimator_disagreement` events.
pub const DISAGREEMENT_DETECTOR: &str = "estimator_disagreement";

/// Welford-based mean confidence interval: `(mean, z·√(s²/n))`. The
/// mean is `None` for an empty accumulator; the half-width is `None`
/// below two observations (no sample variance).
pub fn welford_mean_ci(w: &Welford, level: f64) -> (Option<f64>, Option<f64>) {
    if w.count() == 0 {
        return (None, None);
    }
    let mean = w.mean();
    if w.count() < 2 {
        return (Some(mean), None);
    }
    let z = normal_quantile(0.5 + level / 2.0);
    let half = z * (w.sample_variance() / w.count() as f64).sqrt();
    (Some(mean), Some(half))
}

/// Run the Hill stability scan over a tail heap, using the same
/// `k_max = ⌊tail_fraction·seen⌋` cap as the engine's point estimate.
/// `None` when the heap holds too little data for a scan.
pub fn scan_tail(tail: &TopK, tail_fraction: f64) -> Option<HillStabilityScan> {
    let k_max = tail.batch_k_max(tail_fraction);
    if k_max == 0 {
        return None;
    }
    hill_stability_scan(&tail.descending(), k_max, CONFIDENCE_LEVEL).ok()
}

/// Judge `2H = 3 − α` within propagated error bands. Returns
/// `(verdict, gap, band, score)` where `gap = |2H − (3 − α)|`,
/// `band = √((2σ_H)² + σ_α²)`, and `score = gap / band` (≤ 1 agrees).
///
/// `NotApplicable` when either estimate is absent; `LowConfidence`
/// when both exist but an uncertainty is missing (NS Hill plot) or the
/// band exceeds [`AGREEMENT_BAND_MAX`].
pub fn agreement(
    alpha: Option<f64>,
    alpha_half: Option<f64>,
    h: Option<f64>,
    h_half: Option<f64>,
) -> (AgreementVerdict, Option<f64>, Option<f64>, Option<f64>) {
    let (Some(h), Some(alpha)) = (h, alpha) else {
        return (AgreementVerdict::NotApplicable, None, None, None);
    };
    let gap = (2.0 * h - (3.0 - alpha)).abs();
    let (Some(h_half), Some(alpha_half)) = (h_half, alpha_half) else {
        return (AgreementVerdict::LowConfidence, Some(gap), None, None);
    };
    let band = ((2.0 * h_half).powi(2) + alpha_half.powi(2)).sqrt();
    let score = if band > 0.0 {
        gap / band
    } else {
        f64::INFINITY
    };
    let verdict = if band > AGREEMENT_BAND_MAX {
        AgreementVerdict::LowConfidence
    } else if gap <= band {
        AgreementVerdict::Agree
    } else {
        AgreementVerdict::Disagree
    };
    (verdict, Some(gap), Some(band), Some(score))
}

/// Build the diagnostics row for one closed window.
///
/// `scan` is the Hill stability scan over the session-bytes heap as of
/// the close (shared across a batch of windows closed by one push, like
/// the engine's point α). `bytes` / `interarrival` carry the
/// per-window Welford accumulators — `Some` only for the oldest window
/// of a close batch (later ones were empty quiet stretches).
pub fn window_row(
    report: &WindowReport,
    scan: Option<&HillStabilityScan>,
    bytes: Option<&Welford>,
    interarrival: Option<&Welford>,
) -> WindowDiagnostics {
    // An NS scan reports its evidence (cv, no alpha); a missing scan
    // reports nothing.
    let alpha = scan.and_then(|s| s.alpha);
    let alpha_ci_half_width = scan.and_then(|s| s.alpha_ci_half_width);
    let plateau_cv = scan.map(|s| s.plateau_cv);
    let plateau_k_lo = scan.and_then(|s| s.plateau_k_lo).map(|k| k as u64);
    let plateau_k_hi = scan.and_then(|s| s.plateau_k_hi).map(|k| k as u64);
    let (bytes_mean, bytes_mean_ci_half_width) = bytes
        .map(|w| welford_mean_ci(w, CONFIDENCE_LEVEL))
        .unwrap_or((None, None));
    let (interarrival_mean, interarrival_ci_half_width) = interarrival
        .map(|w| welford_mean_ci(w, CONFIDENCE_LEVEL))
        .unwrap_or((None, None));
    // Distinguish "no scan ran" (NotApplicable) from "scan ran, NS"
    // (LowConfidence): agreement() alone cannot, so pre-empt here.
    let (agreement, agreement_gap, agreement_band, agreement_score) =
        if scan.is_some() && alpha.is_none() && report.h_variance_time.is_some() {
            (AgreementVerdict::LowConfidence, None, None, None)
        } else {
            self::agreement(
                alpha,
                alpha_ci_half_width,
                report.h_variance_time,
                report.h_ci_half_width,
            )
        };
    WindowDiagnostics {
        index: report.index,
        start: report.start,
        alpha,
        alpha_ci_half_width,
        plateau_cv,
        plateau_k_lo,
        plateau_k_hi,
        h: report.h_variance_time,
        h_ci_half_width: report.h_ci_half_width,
        h_r_squared: report.h_r_squared,
        h_points: report.h_points,
        bytes_mean,
        bytes_mean_ci_half_width,
        interarrival_mean,
        interarrival_ci_half_width,
        agreement,
        agreement_gap,
        agreement_band,
        agreement_score,
    }
}

/// Assemble the schema-versioned report from accumulated rows.
pub fn build_report(enabled: bool, windows: Vec<WindowDiagnostics>) -> DiagnosticsReport {
    let low_confidence_windows = windows
        .iter()
        .filter(|w| w.agreement == AgreementVerdict::LowConfidence)
        .count() as u64;
    let disagreement_windows = windows
        .iter()
        .filter(|w| w.agreement == AgreementVerdict::Disagree)
        .count() as u64;
    let final_verdict = windows
        .iter()
        .rev()
        .map(|w| w.agreement)
        .find(|v| *v != AgreementVerdict::NotApplicable)
        .unwrap_or(AgreementVerdict::NotApplicable);
    let mut report = DiagnosticsReport::empty(enabled, CONFIDENCE_LEVEL);
    report.windows = windows;
    report.low_confidence_windows = low_confidence_windows;
    report.disagreement_windows = disagreement_windows;
    report.final_verdict = final_verdict;
    report
}

/// Typed events for one diagnostics row: a Warn on disagreement, an
/// Info on low confidence, nothing otherwise. The caller publishes
/// (and only does so when diagnostics are enabled, so default runs
/// keep their event logs empty).
pub fn events_for(row: &WindowDiagnostics) -> Option<Event> {
    match row.agreement {
        AgreementVerdict::Disagree => {
            let gap = row.agreement_gap.unwrap_or(f64::NAN);
            let band = row.agreement_band.unwrap_or(f64::NAN);
            Some(Event::new(
                Severity::Warn,
                DISAGREEMENT_DETECTOR,
                "stream/agreement_2h_vs_3_minus_alpha",
                row.index,
                row.start,
                2.0 * row.h.unwrap_or(f64::NAN),
                3.0 - row.alpha.unwrap_or(f64::NAN),
                row.agreement_score.unwrap_or(f64::NAN),
                1.0,
                format!(
                    "window {}: 2H = {:.3} vs 3 − α = {:.3} (gap {:.3} > band {:.3}) — \
                     estimators disagree on the LRD/heavy-tail relation",
                    row.index,
                    2.0 * row.h.unwrap_or(f64::NAN),
                    3.0 - row.alpha.unwrap_or(f64::NAN),
                    gap,
                    band
                ),
            ))
        }
        AgreementVerdict::LowConfidence => Some(Event::new(
            Severity::Info,
            LOW_CONFIDENCE_DETECTOR,
            "stream/estimator_confidence",
            row.index,
            row.start,
            row.h_ci_half_width.unwrap_or(f64::NAN),
            row.alpha_ci_half_width.unwrap_or(f64::NAN),
            row.agreement_band.unwrap_or(f64::NAN),
            AGREEMENT_BAND_MAX,
            format!(
                "window {}: estimates too uncertain to judge 2H = 3 − α \
                 (α {} ± {}, H {} ± {})",
                row.index,
                row.alpha.map_or("NS".to_string(), |a| format!("{a:.3}")),
                row.alpha_ci_half_width
                    .map_or("—".to_string(), |v| format!("{v:.3}")),
                row.h.map_or("—".to_string(), |h| format!("{h:.3}")),
                row.h_ci_half_width
                    .map_or("—".to_string(), |v| format!("{v:.3}")),
            ),
        )),
        AgreementVerdict::Agree | AgreementVerdict::NotApplicable => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webpuzzle_core::PoissonVerdict;

    fn report(h: Option<f64>, h_half: Option<f64>) -> WindowReport {
        WindowReport {
            index: 2,
            start: 28_800.0,
            events: 1_000,
            h_variance_time: h,
            h_ci_half_width: h_half,
            h_r_squared: h.map(|_| 0.95),
            h_points: if h.is_some() { 7 } else { 0 },
            h_variance_time_fine: None,
            poisson_hourly: PoissonVerdict::NotApplicable,
            poisson_ten_min: PoissonVerdict::NotApplicable,
        }
    }

    #[test]
    fn welford_ci_shrinks_with_n() {
        let mut small = Welford::new();
        let mut large = Welford::new();
        for i in 0..20 {
            small.push((i % 7) as f64);
        }
        for i in 0..2_000 {
            large.push((i % 7) as f64);
        }
        let (_, half_small) = welford_mean_ci(&small, 0.95);
        let (_, half_large) = welford_mean_ci(&large, 0.95);
        assert!(half_small.unwrap() > half_large.unwrap());
        // Degenerate cases.
        assert_eq!(welford_mean_ci(&Welford::new(), 0.95), (None, None));
        let mut one = Welford::new();
        one.push(3.0);
        assert_eq!(welford_mean_ci(&one, 0.95), (Some(3.0), None));
    }

    #[test]
    fn agreement_verdicts() {
        // 2H = 1.6, 3 − α = 1.55: gap 0.05 inside band.
        let (v, gap, band, score) = agreement(Some(1.45), Some(0.1), Some(0.8), Some(0.05));
        assert_eq!(v, AgreementVerdict::Agree);
        assert!((gap.unwrap() - 0.05).abs() < 1e-12);
        assert!(score.unwrap() < 1.0 && band.unwrap() > 0.1);
        // 2H = 1.0 (short memory), 3 − α = 1.6: gap 0.6 outside band.
        let (v, _, _, score) = agreement(Some(1.4), Some(0.08), Some(0.5), Some(0.05));
        assert_eq!(v, AgreementVerdict::Disagree);
        assert!(score.unwrap() > 1.0);
        // Band wider than the feasible range: uninformative.
        let (v, _, band, _) = agreement(Some(1.4), Some(0.9), Some(0.8), Some(0.3));
        assert_eq!(v, AgreementVerdict::LowConfidence);
        assert!(band.unwrap() > AGREEMENT_BAND_MAX);
        // Missing estimates.
        let (v, _, _, _) = agreement(None, None, Some(0.8), Some(0.05));
        assert_eq!(v, AgreementVerdict::NotApplicable);
        let (v, _, _, _) = agreement(Some(1.4), Some(0.1), None, None);
        assert_eq!(v, AgreementVerdict::NotApplicable);
    }

    #[test]
    fn ns_scan_with_h_is_low_confidence_not_na() {
        let scan = HillStabilityScan {
            grid: vec![(5, 2.0), (50, 3.0)],
            alpha: None,
            alpha_ci_half_width: None,
            plateau_k_lo: None,
            plateau_k_hi: None,
            plateau_cv: 0.4,
            k_max: 50,
        };
        let row = window_row(&report(Some(0.8), Some(0.05)), Some(&scan), None, None);
        assert_eq!(row.agreement, AgreementVerdict::LowConfidence);
        assert_eq!(row.plateau_cv, Some(0.4));
        assert!(row.alpha.is_none());
        // No scan at all → NotApplicable.
        let row = window_row(&report(Some(0.8), Some(0.05)), None, None, None);
        assert_eq!(row.agreement, AgreementVerdict::NotApplicable);
    }

    #[test]
    fn report_counts_verdicts_and_takes_the_last_judgeable() {
        let scan = HillStabilityScan {
            grid: vec![(5, 1.4), (50, 1.45)],
            alpha: Some(1.45),
            alpha_ci_half_width: Some(0.1),
            plateau_k_lo: Some(25),
            plateau_k_hi: Some(50),
            plateau_cv: 0.02,
            k_max: 50,
        };
        let rows = vec![
            window_row(&report(None, None), None, None, None),
            window_row(&report(Some(0.5), Some(0.04)), Some(&scan), None, None),
            window_row(&report(Some(0.78), Some(0.05)), Some(&scan), None, None),
        ];
        assert_eq!(rows[1].agreement, AgreementVerdict::Disagree);
        assert_eq!(rows[2].agreement, AgreementVerdict::Agree);
        let rep = build_report(true, rows);
        assert_eq!(rep.disagreement_windows, 1);
        assert_eq!(rep.low_confidence_windows, 0);
        assert_eq!(rep.final_verdict, AgreementVerdict::Agree);
        assert!(rep.enabled);
        // Events: Disagree → Warn, Agree → none.
        let warn = events_for(&rep.windows[1]).expect("disagreement event");
        assert_eq!(warn.severity, Severity::Warn);
        assert!(events_for(&rep.windows[2]).is_none());
        assert!(events_for(&rep.windows[0]).is_none());
    }
}
