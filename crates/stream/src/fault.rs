//! Deterministic fault injection over any [`Source`].
//!
//! [`FaultSource`] decorates a source and injects failures a real log
//! pipeline meets in production: transient read errors (`EINTR`-class,
//! the source is fine on retry), truncated and corrupted records
//! (poison input — retrying cannot help), stalls (slow NFS, throttled
//! disk), and a hard *crash* at a chosen record (process death — the
//! checkpoint/restore path's reason to exist).
//!
//! Every decision is a pure function of `(seed, record index, fault
//! channel)` via a splitmix64-style hash — no RNG state, so a run is
//! exactly reproducible, a resumed run re-rolls the *same* faults for
//! the same record indices ([`FaultSource::set_index`]), and two fault
//! channels never correlate just because their probabilities are equal.
//!
//! Transient faults are **item-preserving**: the record pulled from the
//! inner source is stashed and delivered on the next call, so a
//! retry-on-transient consumer sees the exact record stream the
//! fault-free run would — the invariance the equivalence tests assert.
//! Truncation/corruption *consume* the record and surface
//! [`WeblogError::ParseLine`] — under `--lenient` the supervisor skips
//! and counts them like any other malformed line.

use std::io;
use std::sync::Arc;
use std::time::Duration;

use crate::checkpoint::SourcePosition;
use crate::pipeline::Source;
use crate::supervisor::RecoverableSource;
use crate::{Result, StreamError};
use webpuzzle_obs::metrics;
use webpuzzle_weblog::{LogRecord, WeblogError};

/// What faults to inject and how often. Probabilities are per-record in
/// `[0, 1]`; `crash_at` is an absolute record index.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Hash seed: same seed, same faults, every run.
    pub seed: u64,
    /// Per-record probability of a transient read error
    /// (`Interrupted`/`WouldBlock`, record preserved for retry).
    pub transient: f64,
    /// Per-record probability of mid-record truncation (record lost,
    /// surfaces as a malformed-line parse error).
    pub truncate: f64,
    /// Per-record probability of byte corruption (record lost, surfaces
    /// as a malformed-line parse error).
    pub corrupt: f64,
    /// Per-record probability of a stall of `stall_ms`.
    pub stall: f64,
    /// Stall duration, milliseconds.
    pub stall_ms: u64,
    /// Panic (simulated process crash) when this absolute record index
    /// is reached; disarmed by [`FaultSource::disarm_crash`] on resume.
    pub crash_at: Option<u64>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0xFA117,
            transient: 0.0,
            truncate: 0.0,
            corrupt: 0.0,
            stall: 0.0,
            stall_ms: 5,
            crash_at: None,
        }
    }
}

impl FaultSpec {
    /// Parse a `key=value,key=value` spec, e.g.
    /// `"seed=7,transient=0.01,crash=5000"`. Keys: `seed`, `transient`,
    /// `truncate`, `corrupt`, `stall`, `stall_ms`, `crash`.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown keys, bad numbers, or
    /// out-of-range probabilities.
    pub fn parse(spec: &str) -> std::result::Result<Self, String> {
        let mut out = FaultSpec::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {part:?} is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            let prob = |v: &str| -> std::result::Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("fault probability {v:?} is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault probability {p} is outside [0, 1]"));
                }
                Ok(p)
            };
            let int = |v: &str| -> std::result::Result<u64, String> {
                v.parse()
                    .map_err(|_| format!("fault spec value {v:?} is not an integer"))
            };
            match key {
                "seed" => out.seed = int(value)?,
                "transient" => out.transient = prob(value)?,
                "truncate" => out.truncate = prob(value)?,
                "corrupt" => out.corrupt = prob(value)?,
                "stall" => out.stall = prob(value)?,
                "stall_ms" => out.stall_ms = int(value)?,
                "crash" => out.crash_at = Some(int(value)?),
                other => {
                    return Err(format!(
                        "unknown fault spec key {other:?} \
                         (known: seed, transient, truncate, corrupt, stall, stall_ms, crash)"
                    ))
                }
            }
        }
        Ok(out)
    }

    /// True when every fault channel is disabled.
    pub fn is_noop(&self) -> bool {
        self.transient == 0.0
            && self.truncate == 0.0
            && self.corrupt == 0.0
            && self.stall == 0.0
            && self.crash_at.is_none()
    }
}

/// How many faults of each kind a [`FaultSource`] has injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Transient read errors surfaced (record preserved).
    pub transient: u64,
    /// Records lost to mid-record truncation.
    pub truncate: u64,
    /// Records lost to byte corruption.
    pub corrupt: u64,
    /// Stalls slept through.
    pub stall: u64,
}

// Channel constants keep the per-fault hash streams independent.
const CH_TRANSIENT: u64 = 1;
const CH_TRUNCATE: u64 = 2;
const CH_CORRUPT: u64 = 3;
const CH_STALL: u64 = 4;

/// The message carried by an injected crash panic; the supervisor (and
/// the `stream-analyze` panic hook) match on it to tell a simulated
/// crash from a real engine bug.
pub const CRASH_PAYLOAD_PREFIX: &str = "injected crash at record ";

/// A fault-injecting decorator over any [`Source`]. See the module docs
/// for semantics; probabilities and determinism come from a
/// [`FaultSpec`].
#[derive(Debug)]
pub struct FaultSource<S: Source> {
    inner: S,
    spec: FaultSpec,
    noop: bool,
    index: u64,
    pending: Option<S::Item>,
    counts: FaultCounts,
    transient_counter: Arc<metrics::Counter>,
    truncate_counter: Arc<metrics::Counter>,
    corrupt_counter: Arc<metrics::Counter>,
    stall_counter: Arc<metrics::Counter>,
}

impl<S: Source> FaultSource<S> {
    /// Wrap `inner` with the given fault spec.
    pub fn new(inner: S, spec: FaultSpec) -> Self {
        FaultSource {
            noop: spec.is_noop(),
            inner,
            spec,
            index: 0,
            pending: None,
            counts: FaultCounts::default(),
            transient_counter: metrics::counter("stream/faults_injected/transient"),
            truncate_counter: metrics::counter("stream/faults_injected/truncate"),
            corrupt_counter: metrics::counter("stream/faults_injected/corrupt"),
            stall_counter: metrics::counter("stream/faults_injected/stall"),
        }
    }

    /// Fault totals so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// The active spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Records pulled from the inner source so far (the absolute index
    /// the fault rolls key on).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Fast-forward the fault clock on resume: `index` must equal the
    /// number of records the inner source has already yielded (its
    /// `parsed` count), so the resumed run rolls the same faults for
    /// the same records as an uninterrupted one.
    pub fn set_index(&mut self, index: u64) {
        self.index = index;
    }

    /// Disarm the crash fault — called on every source rebuilt after a
    /// recovery or resume, so one injected crash cannot loop forever.
    pub fn disarm_crash(&mut self) {
        self.spec.crash_at = None;
        self.noop = self.spec.is_noop();
    }

    /// The inner source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Uniform roll in `[0, 1)` for this record on one fault channel —
    /// splitmix64 finalizer over `(seed, index, channel)`.
    fn roll(&self, channel: u64) -> f64 {
        let mut x = self
            .spec
            .seed
            .wrapping_add(self.index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(channel.wrapping_mul(0xD1B5_4A32_D192_ED03));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<S: Source> Source for FaultSource<S> {
    type Item = S::Item;

    fn next_item(&mut self) -> Option<Result<Self::Item>> {
        // Fast path: with no faults armed the decorator must cost a
        // branch and an increment, nothing more — it wraps every
        // production source unconditionally.
        if self.noop {
            let item = self.inner.next_item();
            if item.is_some() {
                self.index += 1;
            }
            return item;
        }
        // A record stashed by a transient fault is delivered first —
        // the retry sees exactly what the fault-free run would have.
        if let Some(item) = self.pending.take() {
            return Some(Ok(item));
        }
        if let Some(n) = self.spec.crash_at {
            if self.index >= n {
                panic!("{CRASH_PAYLOAD_PREFIX}{n}");
            }
        }
        let item = match self.inner.next_item()? {
            Ok(item) => item,
            Err(e) => return Some(Err(e)),
        };
        if self.spec.stall > 0.0 && self.roll(CH_STALL) < self.spec.stall {
            self.counts.stall += 1;
            self.stall_counter.incr();
            std::thread::sleep(Duration::from_millis(self.spec.stall_ms));
        }
        if self.spec.transient > 0.0 && self.roll(CH_TRANSIENT) < self.spec.transient {
            self.counts.transient += 1;
            self.transient_counter.incr();
            // Alternate EINTR-class kinds so the supervisor's
            // classification is exercised on both.
            let kind = if self.roll(CH_TRANSIENT) < self.spec.transient / 2.0 {
                io::ErrorKind::WouldBlock
            } else {
                io::ErrorKind::Interrupted
            };
            self.pending = Some(item);
            self.index += 1;
            return Some(Err(StreamError::Io(io::Error::new(
                kind,
                "injected fault: transient read error",
            ))));
        }
        if self.spec.truncate > 0.0 && self.roll(CH_TRUNCATE) < self.spec.truncate {
            self.counts.truncate += 1;
            self.truncate_counter.incr();
            let line = self.index;
            self.index += 1;
            return Some(Err(WeblogError::ParseLine {
                line: line as usize,
                reason: "injected fault: record truncated mid-line".to_string(),
            }
            .into()));
        }
        if self.spec.corrupt > 0.0 && self.roll(CH_CORRUPT) < self.spec.corrupt {
            self.counts.corrupt += 1;
            self.corrupt_counter.incr();
            let line = self.index;
            self.index += 1;
            return Some(Err(WeblogError::ParseLine {
                line: line as usize,
                reason: "injected fault: corrupted bytes".to_string(),
            }
            .into()));
        }
        self.index += 1;
        Some(Ok(item))
    }
}

impl<S: RecoverableSource> RecoverableSource for FaultSource<S>
where
    S: Source<Item = LogRecord>,
{
    fn position(&self) -> SourcePosition {
        self.inner.position()
    }

    fn disarm_crash(&mut self) {
        FaultSource::disarm_crash(self);
        self.inner.disarm_crash();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::IterSource;

    fn records(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    fn source_of(
        xs: Vec<u64>,
        spec: FaultSpec,
    ) -> FaultSource<IterSource<std::vec::IntoIter<u64>>> {
        FaultSource::new(IterSource(xs.into_iter()), spec)
    }

    /// Drain with retry-on-transient, collecting delivered items.
    fn drain_lenient(src: &mut impl Source<Item = u64>) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(item) = src.next_item() {
            if let Ok(x) = item {
                out.push(x);
            }
        }
        out
    }

    #[test]
    fn spec_parses_and_rejects() {
        let spec = FaultSpec::parse("seed=7,transient=0.25,crash=5000,stall_ms=2").unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.transient, 0.25);
        assert_eq!(spec.crash_at, Some(5_000));
        assert_eq!(spec.stall_ms, 2);
        assert_eq!(spec.truncate, 0.0);
        assert!(FaultSpec::parse("").unwrap().is_noop());
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("transient=1.5").is_err());
        assert!(FaultSpec::parse("transient").is_err());
        assert!(FaultSpec::parse("seed=x").is_err());
    }

    #[test]
    fn noop_spec_is_transparent() {
        let mut src = source_of(records(500), FaultSpec::default());
        assert_eq!(drain_lenient(&mut src), records(500));
        assert_eq!(src.counts(), FaultCounts::default());
    }

    #[test]
    fn transient_faults_preserve_every_record() {
        let spec = FaultSpec {
            transient: 0.3,
            seed: 99,
            ..FaultSpec::default()
        };
        let mut src = source_of(records(1_000), spec);
        let mut delivered = Vec::new();
        let mut transient_errors = 0;
        while let Some(item) = src.next_item() {
            match item {
                Ok(x) => delivered.push(x),
                Err(StreamError::Io(e)) => {
                    assert!(
                        matches!(
                            e.kind(),
                            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
                        ),
                        "unexpected kind {e:?}"
                    );
                    transient_errors += 1;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        // Item-preserving: the delivered stream is untouched.
        assert_eq!(delivered, records(1_000));
        assert!(
            transient_errors > 200,
            "p=0.3 over 1000: {transient_errors}"
        );
        assert_eq!(src.counts().transient, transient_errors);
    }

    #[test]
    fn truncate_and_corrupt_consume_records_as_parse_errors() {
        let spec = FaultSpec {
            truncate: 0.1,
            corrupt: 0.1,
            seed: 5,
            ..FaultSpec::default()
        };
        let mut src = source_of(records(1_000), spec);
        let mut delivered = 0u64;
        let mut poison = 0u64;
        while let Some(item) = src.next_item() {
            match item {
                Ok(_) => delivered += 1,
                Err(StreamError::Weblog(WeblogError::ParseLine { reason, .. })) => {
                    assert!(reason.starts_with("injected fault:"), "{reason}");
                    poison += 1;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert_eq!(delivered + poison, 1_000);
        assert!(poison > 100, "p≈0.19 over 1000: {poison}");
        assert_eq!(src.counts().truncate + src.counts().corrupt, poison);
    }

    #[test]
    fn faults_are_deterministic_in_the_seed() {
        let spec = FaultSpec {
            transient: 0.2,
            truncate: 0.05,
            seed: 1234,
            ..FaultSpec::default()
        };
        let run = |spec: FaultSpec| {
            let mut src = source_of(records(400), spec);
            let mut trace = Vec::new();
            while let Some(item) = src.next_item() {
                trace.push(match item {
                    Ok(x) => format!("ok {x}"),
                    Err(e) => format!("err {e}"),
                });
            }
            (trace, src.counts())
        };
        let (a, ca) = run(spec.clone());
        let (b, cb) = run(spec.clone());
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        let (c, _) = run(FaultSpec { seed: 4321, ..spec });
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn crash_fires_at_the_exact_record_and_disarms() {
        let spec = FaultSpec {
            crash_at: Some(100),
            ..FaultSpec::default()
        };
        let mut src = source_of(records(500), spec);
        for i in 0..100 {
            assert_eq!(src.next_item().unwrap().unwrap(), i);
        }
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| src.next_item()));
        let payload = panic.expect_err("crash must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.starts_with(CRASH_PAYLOAD_PREFIX), "{msg}");

        // Resume semantics: fresh decorator, same index, crash disarmed.
        let mut resumed = source_of((100..500).collect(), FaultSpec::default());
        resumed.set_index(100);
        assert_eq!(drain_lenient(&mut resumed).len(), 400);
    }

    #[test]
    fn resumed_index_rolls_identical_faults() {
        let spec = FaultSpec {
            truncate: 0.15,
            seed: 77,
            ..FaultSpec::default()
        };
        // Uninterrupted trace of which indices get truncated.
        let mut whole = source_of(records(600), spec.clone());
        let mut whole_poison = Vec::new();
        let mut i = 0u64;
        while let Some(item) = whole.next_item() {
            if item.is_err() {
                whole_poison.push(i);
            }
            i += 1;
        }

        // Split run: first 250 records, then a resumed source.
        let mut poison = Vec::new();
        let mut first = source_of(records(250), spec.clone());
        let mut i = 0u64;
        while let Some(item) = first.next_item() {
            if item.is_err() {
                poison.push(i);
            }
            i += 1;
        }
        let mut second = source_of((250..600).collect(), spec);
        second.set_index(250);
        while let Some(item) = second.next_item() {
            if item.is_err() {
                poison.push(i);
            }
            i += 1;
        }
        assert_eq!(poison, whole_poison);
    }
}
