//! Incremental sessionization with TTL eviction.
//!
//! The batch [`webpuzzle_weblog::sessionize`] takes the whole record
//! slice; [`StreamSessionizer`] consumes records one at a time (they
//! must arrive in nondecreasing timestamp order, as real logs do) and
//! keeps only the *open* sessions in a hash map. A session is closed —
//! and emitted — in exactly two situations, both of which the paper's
//! §2 definition forces:
//!
//! 1. its own client issues a request at or beyond the inactivity
//!    threshold (the gap rule: `gap >= threshold` starts a new session);
//! 2. the stream watermark (max timestamp seen) passes
//!    `end + threshold` — no future record can extend the session, so
//!    it is evicted from the TTL map during a periodic sweep.
//!
//! The two rules produce the same multiset of sessions as the batch
//! sessionizer on any time-sorted input (property-tested in
//! `tests/streaming_equivalence.rs`); only the emission *order*
//! differs, because bounded memory forbids a global sort by start time.

use crate::pipeline::Stage;
use crate::Result;
use std::collections::HashMap;
use webpuzzle_weblog::{LogRecord, Session, WeblogError};

/// Default eviction sweep interval, in event-time seconds. A sweep
/// costs `O(open sessions)`, so sweeping every 60 s of log time keeps
/// the amortized per-record cost negligible while bounding eviction
/// latency well below the threshold itself.
pub const DEFAULT_SWEEP_INTERVAL: f64 = 60.0;

/// Streaming sessionizer over a TTL hash map of open sessions.
///
/// # Examples
///
/// ```
/// use webpuzzle_stream::StreamSessionizer;
/// use webpuzzle_weblog::{LogRecord, Method, DEFAULT_SESSION_THRESHOLD};
///
/// # fn main() -> Result<(), webpuzzle_stream::StreamError> {
/// let mut s = StreamSessionizer::new(DEFAULT_SESSION_THRESHOLD)?;
/// let mut out = Vec::new();
/// s.push(&LogRecord::new(0.0, 1, Method::Get, 1, 200, 100), &mut out)?;
/// s.push(&LogRecord::new(10.0, 1, Method::Get, 2, 200, 50), &mut out)?;
/// // 1800 s later the gap rule splits client 1's session.
/// s.push(&LogRecord::new(1810.0, 1, Method::Get, 3, 200, 1), &mut out)?;
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].request_count, 2);
/// assert_eq!(out[0].bytes, 150);
/// s.finish(&mut out);
/// assert_eq!(out.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamSessionizer {
    threshold: f64,
    sweep_interval: f64,
    open: HashMap<u32, Session>,
    watermark: f64,
    last_sweep: f64,
    records_seen: u64,
    emitted: u64,
    peak_open: usize,
    max_open: usize,
    shed_sessions: u64,
    shed_records: u64,
    ttl_scale: f64,
    early_evicted: u64,
}

/// Complete mutable state of a [`StreamSessionizer`], for checkpointing.
/// Open sessions are exported sorted by client id so the snapshot bytes
/// are deterministic (hash-map iteration order is not).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionizerState {
    /// Inactivity threshold, seconds.
    pub threshold: f64,
    /// Eviction sweep interval, event-time seconds.
    pub sweep_interval: f64,
    /// Open sessions, sorted by client id.
    pub open: Vec<Session>,
    /// Max timestamp seen (`-inf` before the first record).
    pub watermark: f64,
    /// Event time of the last sweep (`-inf` before the first).
    pub last_sweep: f64,
    /// Records consumed.
    pub records_seen: u64,
    /// Sessions emitted.
    pub emitted: u64,
    /// High-water mark of simultaneously open sessions.
    pub peak_open: usize,
    /// Open-session hard cap (0 = unbounded).
    pub max_open: usize,
    /// Sessions force-closed by the cap.
    pub shed_sessions: u64,
    /// Records inside sessions that were shed.
    pub shed_records: u64,
    /// Eviction-deadline scale (1.0 = nominal TTL; < 1.0 under
    /// governor degradation).
    pub ttl_scale: f64,
    /// Sessions evicted earlier than the nominal TTL would have.
    pub early_evicted: u64,
}

impl StreamSessionizer {
    /// Create a sessionizer with the given inactivity `threshold`
    /// (seconds; the paper uses 1800).
    ///
    /// # Errors
    ///
    /// Returns [`WeblogError::InvalidParameter`] for a non-positive or
    /// non-finite threshold, matching the batch sessionizer.
    pub fn new(threshold: f64) -> Result<Self> {
        if !threshold.is_finite() || threshold <= 0.0 {
            return Err(WeblogError::InvalidParameter {
                name: "threshold",
                constraint: "must be finite and > 0",
            }
            .into());
        }
        Ok(StreamSessionizer {
            threshold,
            sweep_interval: DEFAULT_SWEEP_INTERVAL,
            open: HashMap::new(),
            watermark: f64::NEG_INFINITY,
            last_sweep: f64::NEG_INFINITY,
            records_seen: 0,
            emitted: 0,
            peak_open: 0,
            max_open: 0,
            shed_sessions: 0,
            shed_records: 0,
            ttl_scale: 1.0,
            early_evicted: 0,
        })
    }

    /// Override the eviction sweep interval (event-time seconds).
    /// Smaller values tighten eviction latency at higher sweep cost;
    /// the emitted sessions are identical either way.
    pub fn with_sweep_interval(mut self, interval: f64) -> Self {
        self.sweep_interval = interval.max(0.0);
        self
    }

    /// Hard-cap the TTL map at `max_open` open sessions (0 = unbounded,
    /// the default). When a new session would exceed the cap, the
    /// least-recently-active open session is *shed*: force-closed and
    /// emitted early, counted in [`StreamSessionizer::shed_sessions`] /
    /// [`StreamSessionizer::shed_records`]. Graceful degradation under
    /// memory pressure — sheds truncate long idle sessions rather than
    /// losing the stream, and are never silent (the engine reports and
    /// counts them).
    pub fn with_max_open(mut self, max_open: usize) -> Self {
        self.max_open = max_open;
        self
    }

    /// Feed one record; completed sessions (if any) are appended to
    /// `out`. Returns `true` when the record *started* a new session —
    /// the signal the engine's session-arrival window counts consume.
    ///
    /// # Errors
    ///
    /// Returns [`WeblogError::Unsorted`] if `record.timestamp` is below
    /// the stream watermark: streaming sessionization requires
    /// time-sorted input (access logs are written in arrival order).
    pub fn push(&mut self, record: &LogRecord, out: &mut Vec<Session>) -> Result<bool> {
        if record.timestamp < self.watermark {
            return Err(WeblogError::Unsorted {
                at: self.records_seen as usize,
            }
            .into());
        }
        self.records_seen += 1;
        self.watermark = record.timestamp;
        if self.watermark - self.last_sweep >= self.sweep_interval {
            self.sweep(out);
            self.last_sweep = self.watermark;
        }

        let t = record.timestamp;
        let started = match self.open.get_mut(&record.client) {
            Some(session) if t - session.end < self.threshold => {
                session.end = t;
                session.request_count += 1;
                session.bytes += record.bytes;
                false
            }
            Some(session) => {
                // Gap at or beyond the threshold: close and restart.
                let done = *session;
                *session = Session {
                    client: record.client,
                    start: t,
                    end: t,
                    request_count: 1,
                    bytes: record.bytes,
                };
                self.emitted += 1;
                out.push(done);
                true
            }
            None => {
                self.open.insert(
                    record.client,
                    Session {
                        client: record.client,
                        start: t,
                        end: t,
                        request_count: 1,
                        bytes: record.bytes,
                    },
                );
                true
            }
        };
        if self.max_open > 0 {
            self.shed_over_cap(out);
        }
        self.peak_open = self.peak_open.max(self.open.len());
        Ok(started)
    }

    /// Force-close least-recently-active sessions until the map fits
    /// the cap. Selection is by `(end, start, client)` — a pure function
    /// of the open set — so shedding is deterministic and replays
    /// identically after a checkpoint restore.
    fn shed_over_cap(&mut self, out: &mut Vec<Session>) {
        while self.open.len() > self.max_open {
            let victim = self
                .open
                .values()
                .min_by(|a, b| {
                    (a.end, a.start, a.client)
                        .partial_cmp(&(b.end, b.start, b.client))
                        .expect("finite session times")
                })
                .map(|s| s.client)
                .expect("over-cap map is non-empty");
            let session = self.open.remove(&victim).expect("victim is open");
            self.shed_sessions += 1;
            self.shed_records += session.request_count as u64;
            self.emitted += 1;
            out.push(session);
        }
    }

    /// Evict every open session whose TTL elapsed: the watermark passed
    /// `end + threshold · ttl_scale`, so at the nominal scale of 1.0 no
    /// future record can extend it. Under governor degradation the
    /// scale drops below 1.0 and idle sessions are evicted early —
    /// truncated honestly and counted, exactly like cap sheds (a
    /// returning client starts a fresh session). Eviction order is made
    /// deterministic by sorting the evicted batch.
    fn sweep(&mut self, out: &mut Vec<Session>) {
        let deadline = self.watermark - self.threshold * self.ttl_scale;
        if self.open.is_empty() || deadline == f64::NEG_INFINITY {
            return;
        }
        let nominal_deadline = self.watermark - self.threshold;
        let before = out.len();
        let mut early = 0u64;
        self.open.retain(|_, session| {
            if session.end <= deadline {
                if session.end > nominal_deadline {
                    early += 1;
                }
                out.push(*session);
                false
            } else {
                true
            }
        });
        sort_batch(&mut out[before..]);
        self.emitted += (out.len() - before) as u64;
        self.early_evicted += early;
    }

    /// Flush every still-open session at end-of-stream, sorted by
    /// `(start, client)` for determinism.
    pub fn finish(&mut self, out: &mut Vec<Session>) {
        let before = out.len();
        out.extend(self.open.drain().map(|(_, s)| s));
        sort_batch(&mut out[before..]);
        self.emitted += (out.len() - before) as u64;
    }

    /// Number of currently open (in-memory) sessions.
    pub fn open_sessions(&self) -> usize {
        self.open.len()
    }

    /// High-water mark of simultaneously open sessions — the memory
    /// bound actually reached on this stream.
    pub fn peak_open_sessions(&self) -> usize {
        self.peak_open
    }

    /// Sessions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Records consumed so far.
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    /// Max timestamp seen so far (`-inf` before the first record).
    pub fn watermark(&self) -> f64 {
        self.watermark
    }

    /// Event time of the last eviction sweep (`-inf` before the
    /// first). `watermark() - last_sweep()` is the eviction staleness
    /// the engine exports as the `stream/watermark_lag_secs` gauge.
    pub fn last_sweep(&self) -> f64 {
        self.last_sweep
    }

    /// Sessions force-closed by the [`StreamSessionizer::with_max_open`]
    /// cap so far.
    pub fn shed_sessions(&self) -> u64 {
        self.shed_sessions
    }

    /// Records inside sessions that were shed (those sessions were
    /// emitted truncated — any later request from the same client starts
    /// a fresh session).
    pub fn shed_records(&self) -> u64 {
        self.shed_records
    }

    /// The configured open-session cap (0 = unbounded).
    pub fn max_open(&self) -> usize {
        self.max_open
    }

    /// Scale the eviction deadline: `scale < 1.0` tightens the
    /// effective session TTL to `threshold · scale` (the governor's
    /// Yellow-state degradation), `1.0` restores nominal behavior. The
    /// gap rule is untouched — an early-evicted client that returns
    /// simply starts a fresh session, so every record still lands in
    /// exactly one emitted session. Clamped to `(0, 1]`.
    pub fn set_ttl_scale(&mut self, scale: f64) {
        self.ttl_scale = if scale.is_finite() {
            scale.clamp(f64::MIN_POSITIVE, 1.0)
        } else {
            1.0
        };
    }

    /// The current eviction-deadline scale.
    pub fn ttl_scale(&self) -> f64 {
        self.ttl_scale
    }

    /// Sessions evicted earlier than the nominal TTL would have
    /// (non-zero only after running with `ttl_scale < 1.0`).
    pub fn early_evicted(&self) -> u64 {
        self.early_evicted
    }

    /// Whether `client` currently has an open session (the Red-state
    /// hard-shed check: existing sessions keep absorbing, new ones are
    /// refused upstream).
    pub fn is_open(&self, client: u32) -> bool {
        self.open.contains_key(&client)
    }

    /// Snapshot the complete mutable state for a checkpoint.
    pub fn export_state(&self) -> SessionizerState {
        let mut open: Vec<Session> = self.open.values().copied().collect();
        open.sort_by_key(|s| s.client);
        SessionizerState {
            threshold: self.threshold,
            sweep_interval: self.sweep_interval,
            open,
            watermark: self.watermark,
            last_sweep: self.last_sweep,
            records_seen: self.records_seen,
            emitted: self.emitted,
            peak_open: self.peak_open,
            max_open: self.max_open,
            shed_sessions: self.shed_sessions,
            shed_records: self.shed_records,
            ttl_scale: self.ttl_scale,
            early_evicted: self.early_evicted,
        }
    }

    /// Rebuild a sessionizer from [`StreamSessionizer::export_state`]
    /// output. The restored instance continues the stream exactly where
    /// the snapshot left off.
    ///
    /// # Errors
    ///
    /// Rejects an invalid threshold, as [`StreamSessionizer::new`] does.
    pub fn from_state(state: SessionizerState) -> Result<Self> {
        let mut s = StreamSessionizer::new(state.threshold)?;
        s.sweep_interval = state.sweep_interval;
        s.open = state
            .open
            .into_iter()
            .map(|sess| (sess.client, sess))
            .collect();
        s.watermark = state.watermark;
        s.last_sweep = state.last_sweep;
        s.records_seen = state.records_seen;
        s.emitted = state.emitted;
        s.peak_open = state.peak_open;
        s.max_open = state.max_open;
        s.shed_sessions = state.shed_sessions;
        s.shed_records = state.shed_records;
        s.ttl_scale = state.ttl_scale;
        s.early_evicted = state.early_evicted;
        Ok(s)
    }
}

/// Deterministic order for an eviction batch: by start, then client.
fn sort_batch(batch: &mut [Session]) {
    batch.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .expect("finite starts")
            .then(a.client.cmp(&b.client))
    });
}

impl Stage for StreamSessionizer {
    type In = LogRecord;
    type Out = Session;

    fn process(&mut self, item: LogRecord, out: &mut Vec<Session>) -> Result<()> {
        self.push(&item, out).map(|_| ())
    }

    fn finish(&mut self, out: &mut Vec<Session>) -> Result<()> {
        StreamSessionizer::finish(self, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webpuzzle_weblog::Method;

    fn rec(t: f64, client: u32, bytes: u64) -> LogRecord {
        LogRecord::new(t, client, Method::Get, 0, 200, bytes)
    }

    fn run(records: &[LogRecord], threshold: f64) -> Vec<Session> {
        let mut s = StreamSessionizer::new(threshold).unwrap();
        let mut out = Vec::new();
        for r in records {
            s.push(r, &mut out).unwrap();
        }
        s.finish(&mut out);
        out
    }

    #[test]
    fn gap_below_threshold_stays_one_session() {
        let out = run(
            &[rec(0.0, 1, 1), rec(1799.0, 1, 1), rec(3598.0, 1, 1)],
            1800.0,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].request_count, 3);
        assert_eq!(out[0].duration(), 3598.0);
    }

    #[test]
    fn gap_exactly_at_threshold_splits() {
        let out = run(&[rec(0.0, 1, 1), rec(1800.0, 1, 1)], 1800.0);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn ttl_eviction_at_exact_threshold_boundary() {
        let mut s = StreamSessionizer::new(1800.0)
            .unwrap()
            .with_sweep_interval(0.0);
        let mut out = Vec::new();
        s.push(&rec(0.0, 1, 1), &mut out).unwrap();
        // Watermark 1799.999…: client 1's TTL has not elapsed yet.
        s.push(&rec(1799.0, 2, 1), &mut out).unwrap();
        assert!(out.is_empty(), "evicted before the threshold elapsed");
        assert_eq!(s.open_sessions(), 2);
        // Watermark exactly end + threshold: the gap rule says a request
        // at 1800.0 would start a NEW session, so eviction at exactly the
        // boundary is correct — and must fire.
        s.push(&rec(1800.0, 3, 1), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].client, 1);
        assert_eq!(s.open_sessions(), 2);
    }

    #[test]
    fn eviction_does_not_lose_late_same_client_splits() {
        // Client 1 goes idle past the threshold, then returns: the old
        // session must be emitted once and the new one opened.
        let out = run(&[rec(0.0, 1, 5), rec(5000.0, 1, 7)], 1800.0);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].bytes, 5);
        assert_eq!(out[1].bytes, 7);
    }

    #[test]
    fn rejects_out_of_order_input() {
        let mut s = StreamSessionizer::new(1800.0).unwrap();
        let mut out = Vec::new();
        s.push(&rec(10.0, 1, 1), &mut out).unwrap();
        let err = s.push(&rec(9.0, 1, 1), &mut out).unwrap_err();
        match err {
            crate::StreamError::Weblog(WeblogError::Unsorted { at }) => assert_eq!(at, 1),
            other => panic!("expected Unsorted, got {other:?}"),
        }
    }

    #[test]
    fn equal_timestamps_are_fine() {
        let out = run(&[rec(5.0, 1, 1), rec(5.0, 1, 1), rec(5.0, 2, 1)], 1800.0);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn matches_batch_on_a_dense_stream() {
        let records: Vec<LogRecord> = (0..2000)
            .map(|i| rec(i as f64 * 700.0, (i % 7) as u32, 1 + (i % 13) as u64))
            .collect();
        let mut streamed = run(&records, 1800.0);
        let mut batch = webpuzzle_weblog::sessionize(&records, 1800.0).unwrap();
        sort_batch(&mut streamed);
        sort_batch(&mut batch);
        assert_eq!(streamed, batch);
    }

    #[test]
    fn peak_open_tracks_memory_bound() {
        let mut s = StreamSessionizer::new(1800.0).unwrap();
        let mut out = Vec::new();
        for i in 0..100u32 {
            s.push(&rec(i as f64, i, 1), &mut out).unwrap();
        }
        // All 100 clients are active within one threshold: all open.
        assert_eq!(s.peak_open_sessions(), 100);
        // A far-future record sweeps everything out.
        s.push(&rec(1e7, 0, 1), &mut out).unwrap();
        assert_eq!(s.open_sessions(), 1);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn started_flag_marks_session_starts() {
        let mut s = StreamSessionizer::new(1800.0).unwrap();
        let mut out = Vec::new();
        assert!(s.push(&rec(0.0, 1, 1), &mut out).unwrap());
        assert!(!s.push(&rec(1.0, 1, 1), &mut out).unwrap());
        assert!(s.push(&rec(2.0, 2, 1), &mut out).unwrap());
        assert!(s.push(&rec(9000.0, 1, 1), &mut out).unwrap());
    }

    #[test]
    fn validation() {
        assert!(StreamSessionizer::new(0.0).is_err());
        assert!(StreamSessionizer::new(f64::NAN).is_err());
    }

    #[test]
    fn max_open_cap_sheds_oldest_and_counts() {
        let mut s = StreamSessionizer::new(1800.0).unwrap().with_max_open(10);
        let mut out = Vec::new();
        // 50 clients interleave within one threshold: without the cap
        // all 50 would stay open (see peak_open_tracks_memory_bound).
        for i in 0..200u32 {
            s.push(&rec(f64::from(i), i % 50, 1), &mut out).unwrap();
        }
        assert!(s.open_sessions() <= 10);
        assert!(s.peak_open_sessions() <= 10);
        assert!(s.shed_sessions() > 0);
        assert!(s.shed_records() >= s.shed_sessions());
        // Conservation: every record lands in exactly one emitted session.
        s.finish(&mut out);
        let total: u64 = out.iter().map(|sess| sess.request_count as u64).sum();
        assert_eq!(total, 200);
        assert_eq!(out.len() as u64, s.emitted());
    }

    #[test]
    fn unbounded_by_default_sheds_nothing() {
        let out = run(
            &(0..100)
                .map(|i| rec(i as f64, i as u32, 1))
                .collect::<Vec<_>>(),
            1800.0,
        );
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn tightened_ttl_evicts_early_and_counts_and_conserves() {
        let mut s = StreamSessionizer::new(1800.0)
            .unwrap()
            .with_sweep_interval(0.0);
        let mut out = Vec::new();
        s.push(&rec(0.0, 1, 1), &mut out).unwrap();
        s.set_ttl_scale(0.5);
        // Watermark 1000: client 1 idle for 1000 s ≥ 900 s scaled TTL
        // but < 1800 s nominal — evicted early, counted.
        s.push(&rec(1000.0, 2, 1), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].client, 1);
        assert_eq!(s.early_evicted(), 1);
        // Client 1 returns within the nominal threshold: a fresh
        // session starts (gap rule untouched), the record is not lost.
        assert!(s.push(&rec(1500.0, 1, 1), &mut out).unwrap());
        // Back to nominal: no further early evictions.
        s.set_ttl_scale(1.0);
        s.push(&rec(2000.0, 3, 1), &mut out).unwrap();
        assert_eq!(s.early_evicted(), 1);
        s.finish(&mut out);
        let total: u64 = out.iter().map(|sess| sess.request_count as u64).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        let records: Vec<LogRecord> = (0..3_000)
            .map(|i| rec(i as f64 * 37.0, (i % 23) as u32, 1 + (i % 7) as u64))
            .collect();
        let (head, tail) = records.split_at(1_234);

        let mut whole = StreamSessionizer::new(1800.0).unwrap().with_max_open(8);
        let mut whole_out = Vec::new();
        for r in &records {
            whole.push(r, &mut whole_out).unwrap();
        }
        whole.finish(&mut whole_out);

        let mut first = StreamSessionizer::new(1800.0).unwrap().with_max_open(8);
        let mut split_out = Vec::new();
        for r in head {
            first.push(r, &mut split_out).unwrap();
        }
        let state = first.export_state();
        assert_eq!(
            StreamSessionizer::from_state(state.clone())
                .unwrap()
                .export_state(),
            state,
            "export/restore must be lossless"
        );
        let mut second = StreamSessionizer::from_state(state).unwrap();
        for r in tail {
            second.push(r, &mut split_out).unwrap();
        }
        second.finish(&mut split_out);

        sort_batch(&mut whole_out);
        sort_batch(&mut split_out);
        assert_eq!(split_out, whole_out);
        assert_eq!(second.emitted(), whole.emitted());
        assert_eq!(second.shed_sessions(), whole.shed_sessions());
        assert_eq!(second.shed_records(), whole.shed_records());
    }
}
