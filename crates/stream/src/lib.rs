//! # webpuzzle-stream
//!
//! One-pass, bounded-memory streaming analysis of Web server logs — the
//! scaling counterpart to the batch FULL-Web pipeline in
//! `webpuzzle-core`. Where the batch path materializes a week of
//! records (`Vec<LogRecord>`) and sessionizes the whole slice, this
//! crate processes a log as a stream:
//!
//! * [`pipeline`] — the pull-based [`Source`]/[`Stage`] composition
//!   traits every streaming component implements.
//! * [`reader`] — [`ClfSource`]: a chunked `io::BufRead`-driven Common
//!   Log Format reader (never `read_to_string`), with a lenient mode
//!   that skips and counts malformed lines.
//! * [`sessionizer`] — [`StreamSessionizer`]: incremental
//!   sessionization over a TTL hash map; sessions are evicted (emitted)
//!   once the paper's 30-minute inactivity threshold elapses, so memory
//!   holds only the *open* sessions.
//! * [`online`] — fixed-memory estimators: [`Welford`] mean/variance,
//!   [`LogHistogram`] (reusing the obs log-bucket histogram),
//!   [`TopK`] order statistics feeding an incremental Hill tail-index
//!   estimate.
//! * [`window`] — [`WindowedArrivals`]: per-second / per-10-ms ring
//!   counts over fixed analysis windows, feeding the existing
//!   variance-time estimator and §4.2 Poisson battery window by window.
//! * [`observatory`] — [`DriftObservatory`]: online change-point
//!   detection (CUSUM, Page–Hinkley, EWMA control bands) over the
//!   per-window estimates, publishing typed drift events to the
//!   `webpuzzle-obs` event ring.
//! * [`engine`] — [`StreamAnalyzer`]: the wired-up engine behind the
//!   `stream-analyze` binary, producing a [`StreamSummary`].
//! * [`diagnostics`] — per-window estimator confidence: Hill-plot
//!   stability scans, variance-time fit CIs, Welford mean CIs, and the
//!   `2H = 3 − α` cross-estimator agreement verdict, assembled into the
//!   schema-versioned report served at `/diagnostics`.
//! * [`checkpoint`] — [`Checkpoint`]: versioned, checksummed,
//!   atomically-written snapshots of the full engine state; a resumed
//!   run reproduces the uninterrupted summary bit for bit.
//! * [`fault`] — [`FaultSource`]: a deterministic fault-injecting
//!   decorator over any source (transient errors, poison records,
//!   stalls, crash-at-record-N) for recovery testing.
//! * [`supervisor`] — [`Supervisor`]: the retry / skip / restore loop
//!   that classifies failures, retries transients with backoff, skips
//!   poison under lenient, and restores from the last checkpoint when
//!   the engine panics.
//! * [`watchdog`] — [`Watchdog`]: per-stage stall detection; stages
//!   beat on progress, silence past a deadline publishes a `Critical`
//!   event for the supervising loop to escalate on.
//!
//! Total memory is `O(open sessions + window bins + window arrivals +
//! top-k)` — independent of log length. See DESIGN.md §9 for the
//! memory-bound and estimator-equivalence contracts.
//!
//! # Examples
//!
//! ```
//! use webpuzzle_stream::{StreamAnalyzer, StreamConfig};
//! use webpuzzle_weblog::{LogRecord, Method};
//!
//! # fn main() -> Result<(), webpuzzle_stream::StreamError> {
//! let mut engine = StreamAnalyzer::new(StreamConfig::default())?;
//! for i in 0..100u32 {
//!     let rec = LogRecord::new(i as f64 * 30.0, i % 3, Method::Get, i, 200, 512);
//!     engine.push(&rec)?;
//! }
//! let summary = engine.finish()?;
//! assert_eq!(summary.records, 100);
//! assert_eq!(summary.sessions, 3);
//! # Ok(())
//! # }
//! ```

pub mod checkpoint;
pub mod diagnostics;
pub mod engine;
pub mod fault;
pub mod observatory;
pub mod online;
pub mod pipeline;
pub mod reader;
pub mod sessionizer;
pub mod supervisor;
pub mod watchdog;
pub mod window;

pub use checkpoint::{Checkpoint, CheckpointError, SourcePosition};
pub use diagnostics::{AGREEMENT_BAND_MAX, CONFIDENCE_LEVEL};
pub use engine::{EngineState, StreamAnalyzer, StreamConfig, StreamSummary, TailSnapshot};
pub use fault::{FaultCounts, FaultSource, FaultSpec};
pub use observatory::{
    ChannelAlarms, DriftObservatory, DriftSummary, ObservatoryConfig, ObservatoryState,
    WindowObservation,
};
pub use online::{LogHistogram, Moments, TopK, Welford};
pub use pipeline::{IterSource, Pipe, Source, Stage};
pub use reader::ClfSource;
pub use sessionizer::{SessionizerState, StreamSessionizer};
pub use supervisor::{
    classify, ErrorClass, RecordCallback, RecoverableSource, Supervisor, SupervisorConfig,
    SupervisorReport,
};
pub use watchdog::{StageHandle, Watchdog, WatchdogConfig};
pub use window::{ArrivalsState, WindowConfig, WindowReport, WindowedArrivals};

use std::error::Error;
use std::fmt;

/// Error type of the streaming engine: IO from the chunked reader,
/// log-domain errors from parsing/sessionization, and statistics errors
/// from the per-window estimators.
#[derive(Debug)]
pub enum StreamError {
    /// Reading the underlying byte stream failed.
    Io(std::io::Error),
    /// A log-domain error (malformed line in strict mode, out-of-order
    /// input, invalid threshold).
    Weblog(webpuzzle_weblog::WeblogError),
    /// A statistics error from a per-window estimator.
    Stats(webpuzzle_core::StatsError),
    /// A checkpoint could not be written, read, or validated.
    Checkpoint(checkpoint::CheckpointError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream IO error: {e}"),
            StreamError::Weblog(e) => write!(f, "stream log error: {e}"),
            StreamError::Stats(e) => write!(f, "stream estimator error: {e}"),
            StreamError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl Error for StreamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Weblog(e) => Some(e),
            StreamError::Stats(e) => Some(e),
            StreamError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<webpuzzle_weblog::WeblogError> for StreamError {
    fn from(e: webpuzzle_weblog::WeblogError) -> Self {
        StreamError::Weblog(e)
    }
}

impl From<webpuzzle_core::StatsError> for StreamError {
    fn from(e: webpuzzle_core::StatsError) -> Self {
        StreamError::Stats(e)
    }
}

impl From<checkpoint::CheckpointError> for StreamError {
    fn from(e: checkpoint::CheckpointError) -> Self {
        StreamError::Checkpoint(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StreamError>;
