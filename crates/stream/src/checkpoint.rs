//! Crash-safe checkpoints of the streaming engine.
//!
//! A checkpoint captures everything a killed `stream-analyze` process
//! needs to continue as if nothing happened: the engine's
//! [`EngineState`], the source position (byte offset plus parse
//! counters), the event-ring sequence, and the supervisor's recovery
//! bookkeeping. The on-disk format is a small custom binary codec, not
//! JSON: the engine's state includes `-inf` sentinels (watermarks,
//! eviction clocks) that JSON cannot encode, and restore must be
//! **bit-identical** — every `f64` travels via
//! [`f64::to_bits`]/[`f64::from_bits`], so the resumed run reproduces
//! the uninterrupted run's [`crate::StreamSummary`] exactly, not just
//! within tolerance.
//!
//! # Format
//!
//! ```text
//! magic   8 bytes  "WPZCKPT\0"
//! version u32 LE   bumped on any payload layout change
//! len     u64 LE   payload length in bytes
//! fnv     u64 LE   FNV-1a 64 of the payload
//! payload len bytes
//! ```
//!
//! [`save`] writes atomically: temp file in the target directory,
//! `sync_all`, rename over the target, best-effort directory fsync. A
//! crash mid-write leaves the previous checkpoint intact; a torn read
//! is caught by the length or checksum and refused with a clear error
//! rather than resumed from silently.
//!
//! Versioning policy: there is no cross-version migration. A
//! checkpoint is a *restart artifact*, not an archive — an unknown
//! version is refused ([`CheckpointError::UnsupportedVersion`]) and
//! the operator reruns from the start of the log (one-pass analysis is
//! cheap; resuming from a wrong layout would be silently wrong).

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::engine::{EngineState, StreamConfig};
use crate::observatory::{
    BaselineState, CusumState, EwmaState, ObservatoryConfig, ObservatoryState, PageHinkleyState,
};
use crate::observatory::{ChannelAlarms, DriftSummary};
use crate::sessionizer::SessionizerState;
use crate::window::{ArrivalsState, WindowConfig, WindowReport};
use webpuzzle_core::PoissonVerdict;
use webpuzzle_obs::diagnostics::{AgreementVerdict, WindowDiagnostics};
use webpuzzle_weblog::{MalformedBreakdown, Session};

/// File magic: identifies a webpuzzle checkpoint.
pub const MAGIC: [u8; 8] = *b"WPZCKPT\0";
/// Current payload layout version. Version 2 added the estimator
/// diagnostics state: the `diagnostics` config flag, the per-window fit
/// CIs in [`WindowReport`], and the engine's inter-arrival accumulator
/// plus accrued [`WindowDiagnostics`] rows. Version 3 added the
/// overload-governor state: the sessionizer's TTL scale and
/// early-eviction count, the engine's degradation mode / sampling /
/// hard-shed counters and forced-checkpoint flag, and the process
/// governor's pressure-state code.
pub const VERSION: u32 = 3;
/// Fixed header size: magic + version + payload length + checksum.
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure while reading or writing.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a checkpoint.
    BadMagic,
    /// The file's layout version is not [`VERSION`]; see the module
    /// docs for the no-migration policy.
    UnsupportedVersion(u32),
    /// Payload checksum mismatch: the file is corrupt (torn write,
    /// bit rot, truncation past the length field).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload actually present.
        found: u64,
    },
    /// The file ends before the declared payload does.
    Truncated,
    /// The payload decoded to something structurally impossible.
    Malformed(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => {
                write!(f, "not a checkpoint file (bad magic)")
            }
            CheckpointError::UnsupportedVersion(v) => write!(
                f,
                "unsupported checkpoint version {v} (this build reads version {VERSION}); \
                 rerun from the start of the log"
            ),
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch (header {expected:#018x}, payload {found:#018x}): \
                 the file is corrupt; refusing to resume from it"
            ),
            CheckpointError::Truncated => {
                write!(
                    f,
                    "checkpoint file is truncated; refusing to resume from it"
                )
            }
            CheckpointError::Malformed(what) => {
                write!(f, "checkpoint payload is malformed: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Where a resumable source stood when the checkpoint was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourcePosition {
    /// Bytes of input fully consumed (seek target on resume).
    pub byte_offset: u64,
    /// Lines consumed (1-based line number of the last line read).
    pub line_no: u64,
    /// Records successfully parsed and yielded.
    pub parsed: u64,
    /// Malformed lines skipped (lenient mode).
    pub skipped: u64,
    /// Breakdown of the skipped lines by cause.
    pub malformed: MalformedBreakdown,
}

/// One complete checkpoint: everything needed to resume an interrupted
/// `stream-analyze` run.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Engine configuration at checkpoint time. Restore uses it
    /// verbatim — resuming under a different configuration would change
    /// the analysis mid-stream.
    pub config: StreamConfig,
    /// Full engine state.
    pub engine: EngineState,
    /// Source position (seek target plus parse counters).
    pub source: SourcePosition,
    /// Event-ring sequence at checkpoint time; resume fast-forwards
    /// the ring past it so event seqs never repeat across a restart.
    pub events_seq: u64,
    /// Poison records skipped by the supervisor so far, by cause.
    pub poison: MalformedBreakdown,
    /// Engine restarts performed by the supervisor so far.
    pub recoveries: u64,
    /// Transient-fault retries performed so far.
    pub transient_retries: u64,
    /// Checkpoints written so far (this one included).
    pub checkpoints_written: u64,
    /// Process-governor pressure state at checkpoint time
    /// ([`webpuzzle_obs::governor::PressureState::code`]). Restore
    /// seeds the reinstalled governor with it so degradation resumes
    /// where it stood instead of flapping through Green.
    pub governor_state: u8,
}

// ---------------------------------------------------------------------
// FNV-1a 64
// ---------------------------------------------------------------------

/// FNV-1a 64-bit hash — tiny, dependency-free, and plenty for torn-write
/// detection (this is an integrity check, not an adversarial MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------
// Encoder / decoder primitives
// ---------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        // Bit-exact: NaN payloads, -0.0, and the engine's -inf
        // sentinels all survive the round trip.
        self.u64(v.to_bits());
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => self.u8(0),
        }
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn f64_slice(&mut self, xs: &[f64]) {
        self.usize(xs.len());
        for &x in xs {
            self.f64(x);
        }
    }

    fn u64_slice(&mut self, xs: &[u64]) {
        self.usize(xs.len());
        for &x in xs {
            self.u64(x);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

type DecResult<T> = Result<T, CheckpointError>;

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        let end = self.at.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.buf[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> DecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Malformed("bool tag")),
        }
    }

    fn u32(&mut self) -> DecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> DecResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn usize(&mut self) -> DecResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CheckpointError::Malformed("length exceeds usize"))
    }

    /// A length that will be used to allocate: sanity-capped against
    /// the bytes actually remaining so a corrupt length field cannot
    /// trigger a huge allocation before the checksum would catch it.
    fn len(&mut self, min_elem_bytes: usize) -> DecResult<usize> {
        let n = self.usize()?;
        let remaining = self.buf.len() - self.at;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(CheckpointError::Truncated);
        }
        Ok(n)
    }

    fn f64(&mut self) -> DecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn opt_f64(&mut self) -> DecResult<Option<f64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            _ => Err(CheckpointError::Malformed("option tag")),
        }
    }

    fn opt_u64(&mut self) -> DecResult<Option<u64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(CheckpointError::Malformed("option tag")),
        }
    }

    fn str(&mut self) -> DecResult<String> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Malformed("non-UTF-8 string"))
    }

    fn f64_vec(&mut self) -> DecResult<Vec<f64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn u64_vec(&mut self) -> DecResult<Vec<u64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn done(&self) -> DecResult<()> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(CheckpointError::Malformed("trailing bytes after payload"))
        }
    }
}

// ---------------------------------------------------------------------
// Per-type encoding
// ---------------------------------------------------------------------

fn enc_window_config(e: &mut Enc, c: &WindowConfig) {
    e.f64(c.window_len);
    e.f64(c.bin_width);
    e.opt_f64(c.fine_bin_width);
    e.usize(c.min_poisson_arrivals);
    e.u64(c.seed);
}

fn dec_window_config(d: &mut Dec) -> DecResult<WindowConfig> {
    Ok(WindowConfig {
        window_len: d.f64()?,
        bin_width: d.f64()?,
        fine_bin_width: d.opt_f64()?,
        min_poisson_arrivals: d.usize()?,
        seed: d.u64()?,
    })
}

fn enc_observatory_config(e: &mut Enc, c: &ObservatoryConfig) {
    e.u64(c.warmup_windows);
    e.f64(c.cusum_k);
    e.f64(c.cusum_h);
    e.f64(c.ph_delta);
    e.f64(c.ph_lambda);
    e.f64(c.ewma_lambda);
    e.f64(c.ewma_l);
    e.opt_u64(c.seasonal_period);
    e.f64(c.min_baseline_std);
}

fn dec_observatory_config(d: &mut Dec) -> DecResult<ObservatoryConfig> {
    Ok(ObservatoryConfig {
        warmup_windows: d.u64()?,
        cusum_k: d.f64()?,
        cusum_h: d.f64()?,
        ph_delta: d.f64()?,
        ph_lambda: d.f64()?,
        ewma_lambda: d.f64()?,
        ewma_l: d.f64()?,
        seasonal_period: d.opt_u64()?,
        min_baseline_std: d.f64()?,
    })
}

fn enc_stream_config(e: &mut Enc, c: &StreamConfig) {
    e.f64(c.session_threshold);
    enc_window_config(e, &c.request_window);
    enc_window_config(e, &c.session_window);
    e.usize(c.tail_k);
    e.f64(c.tail_fraction);
    enc_observatory_config(e, &c.observatory);
    e.usize(c.max_open_sessions);
    e.bool(c.diagnostics);
}

fn dec_stream_config(d: &mut Dec) -> DecResult<StreamConfig> {
    Ok(StreamConfig {
        session_threshold: d.f64()?,
        request_window: dec_window_config(d)?,
        session_window: dec_window_config(d)?,
        tail_k: d.usize()?,
        tail_fraction: d.f64()?,
        observatory: dec_observatory_config(d)?,
        max_open_sessions: d.usize()?,
        diagnostics: d.bool()?,
    })
}

fn enc_session(e: &mut Enc, s: &Session) {
    e.u32(s.client);
    e.f64(s.start);
    e.f64(s.end);
    e.usize(s.request_count);
    e.u64(s.bytes);
}

fn dec_session(d: &mut Dec) -> DecResult<Session> {
    Ok(Session {
        client: d.u32()?,
        start: d.f64()?,
        end: d.f64()?,
        request_count: d.usize()?,
        bytes: d.u64()?,
    })
}

fn enc_sessionizer(e: &mut Enc, s: &SessionizerState) {
    e.f64(s.threshold);
    e.f64(s.sweep_interval);
    e.usize(s.open.len());
    for session in &s.open {
        enc_session(e, session);
    }
    e.f64(s.watermark);
    e.f64(s.last_sweep);
    e.u64(s.records_seen);
    e.u64(s.emitted);
    e.usize(s.peak_open);
    e.usize(s.max_open);
    e.u64(s.shed_sessions);
    e.u64(s.shed_records);
    e.f64(s.ttl_scale);
    e.u64(s.early_evicted);
}

fn dec_sessionizer(d: &mut Dec) -> DecResult<SessionizerState> {
    let threshold = d.f64()?;
    let sweep_interval = d.f64()?;
    let n = d.len(36)?;
    let open = (0..n).map(|_| dec_session(d)).collect::<DecResult<_>>()?;
    Ok(SessionizerState {
        threshold,
        sweep_interval,
        open,
        watermark: d.f64()?,
        last_sweep: d.f64()?,
        records_seen: d.u64()?,
        emitted: d.u64()?,
        peak_open: d.usize()?,
        max_open: d.usize()?,
        shed_sessions: d.u64()?,
        shed_records: d.u64()?,
        ttl_scale: d.f64()?,
        early_evicted: d.u64()?,
    })
}

fn enc_arrivals(e: &mut Enc, a: &ArrivalsState) {
    e.f64_slice(&a.coarse);
    e.f64_slice(&a.fine);
    e.f64_slice(&a.times);
    e.u64(a.window_index);
    e.f64(a.last_time);
    e.u64(a.total_events);
}

fn dec_arrivals(d: &mut Dec) -> DecResult<ArrivalsState> {
    Ok(ArrivalsState {
        coarse: d.f64_vec()?,
        fine: d.f64_vec()?,
        times: d.f64_vec()?,
        window_index: d.u64()?,
        last_time: d.f64()?,
        total_events: d.u64()?,
    })
}

fn verdict_code(v: PoissonVerdict) -> u8 {
    match v {
        PoissonVerdict::ConsistentWithPoisson => 0,
        PoissonVerdict::Rejected => 1,
        PoissonVerdict::NotApplicable => 2,
    }
}

fn dec_verdict(d: &mut Dec) -> DecResult<PoissonVerdict> {
    match d.u8()? {
        0 => Ok(PoissonVerdict::ConsistentWithPoisson),
        1 => Ok(PoissonVerdict::Rejected),
        2 => Ok(PoissonVerdict::NotApplicable),
        _ => Err(CheckpointError::Malformed("poisson verdict tag")),
    }
}

fn enc_window_report(e: &mut Enc, w: &WindowReport) {
    e.u64(w.index);
    e.f64(w.start);
    e.u64(w.events);
    e.opt_f64(w.h_variance_time);
    e.opt_f64(w.h_ci_half_width);
    e.opt_f64(w.h_r_squared);
    e.u64(w.h_points);
    e.opt_f64(w.h_variance_time_fine);
    e.u8(verdict_code(w.poisson_hourly));
    e.u8(verdict_code(w.poisson_ten_min));
}

fn dec_window_report(d: &mut Dec) -> DecResult<WindowReport> {
    Ok(WindowReport {
        index: d.u64()?,
        start: d.f64()?,
        events: d.u64()?,
        h_variance_time: d.opt_f64()?,
        h_ci_half_width: d.opt_f64()?,
        h_r_squared: d.opt_f64()?,
        h_points: d.u64()?,
        h_variance_time_fine: d.opt_f64()?,
        poisson_hourly: dec_verdict(d)?,
        poisson_ten_min: dec_verdict(d)?,
    })
}

fn enc_window_reports(e: &mut Enc, ws: &[WindowReport]) {
    e.usize(ws.len());
    for w in ws {
        enc_window_report(e, w);
    }
}

fn dec_window_reports(d: &mut Dec) -> DecResult<Vec<WindowReport>> {
    let n = d.len(38)?;
    (0..n).map(|_| dec_window_report(d)).collect()
}

fn agreement_code(v: AgreementVerdict) -> u8 {
    match v {
        AgreementVerdict::Agree => 0,
        AgreementVerdict::Disagree => 1,
        AgreementVerdict::LowConfidence => 2,
        AgreementVerdict::NotApplicable => 3,
    }
}

fn dec_agreement(d: &mut Dec) -> DecResult<AgreementVerdict> {
    match d.u8()? {
        0 => Ok(AgreementVerdict::Agree),
        1 => Ok(AgreementVerdict::Disagree),
        2 => Ok(AgreementVerdict::LowConfidence),
        3 => Ok(AgreementVerdict::NotApplicable),
        _ => Err(CheckpointError::Malformed("agreement verdict tag")),
    }
}

fn enc_window_diag(e: &mut Enc, w: &WindowDiagnostics) {
    e.u64(w.index);
    e.f64(w.start);
    e.opt_f64(w.alpha);
    e.opt_f64(w.alpha_ci_half_width);
    e.opt_f64(w.plateau_cv);
    e.opt_u64(w.plateau_k_lo);
    e.opt_u64(w.plateau_k_hi);
    e.opt_f64(w.h);
    e.opt_f64(w.h_ci_half_width);
    e.opt_f64(w.h_r_squared);
    e.u64(w.h_points);
    e.opt_f64(w.bytes_mean);
    e.opt_f64(w.bytes_mean_ci_half_width);
    e.opt_f64(w.interarrival_mean);
    e.opt_f64(w.interarrival_ci_half_width);
    e.u8(agreement_code(w.agreement));
    e.opt_f64(w.agreement_gap);
    e.opt_f64(w.agreement_band);
    e.opt_f64(w.agreement_score);
}

fn dec_window_diag(d: &mut Dec) -> DecResult<WindowDiagnostics> {
    Ok(WindowDiagnostics {
        index: d.u64()?,
        start: d.f64()?,
        alpha: d.opt_f64()?,
        alpha_ci_half_width: d.opt_f64()?,
        plateau_cv: d.opt_f64()?,
        plateau_k_lo: d.opt_u64()?,
        plateau_k_hi: d.opt_u64()?,
        h: d.opt_f64()?,
        h_ci_half_width: d.opt_f64()?,
        h_r_squared: d.opt_f64()?,
        h_points: d.u64()?,
        bytes_mean: d.opt_f64()?,
        bytes_mean_ci_half_width: d.opt_f64()?,
        interarrival_mean: d.opt_f64()?,
        interarrival_ci_half_width: d.opt_f64()?,
        agreement: dec_agreement(d)?,
        agreement_gap: d.opt_f64()?,
        agreement_band: d.opt_f64()?,
        agreement_score: d.opt_f64()?,
    })
}

fn enc_window_diags(e: &mut Enc, ws: &[WindowDiagnostics]) {
    e.usize(ws.len());
    for w in ws {
        enc_window_diag(e, w);
    }
}

fn dec_window_diags(d: &mut Dec) -> DecResult<Vec<WindowDiagnostics>> {
    // Minimum row size: u64 + f64 + 13 absent options + u64 + verdict.
    let n = d.len(38)?;
    (0..n).map(|_| dec_window_diag(d)).collect()
}

fn enc_welford(e: &mut Enc, w: (u64, f64, f64)) {
    e.u64(w.0);
    e.f64(w.1);
    e.f64(w.2);
}

fn dec_welford(d: &mut Dec) -> DecResult<(u64, f64, f64)> {
    Ok((d.u64()?, d.f64()?, d.f64()?))
}

fn enc_topk(e: &mut Enc, t: &(usize, u64, Vec<f64>)) {
    e.usize(t.0);
    e.u64(t.1);
    e.f64_slice(&t.2);
}

fn dec_topk(d: &mut Dec) -> DecResult<(usize, u64, Vec<f64>)> {
    Ok((d.usize()?, d.u64()?, d.f64_vec()?))
}

fn enc_baseline(e: &mut Enc, b: &BaselineState) {
    e.u64(b.n);
    e.f64(b.mean);
    e.f64(b.m2);
    e.f64(b.mu);
    e.f64(b.sigma);
}

fn dec_baseline(d: &mut Dec) -> DecResult<BaselineState> {
    Ok(BaselineState {
        n: d.u64()?,
        mean: d.f64()?,
        m2: d.f64()?,
        mu: d.f64()?,
        sigma: d.f64()?,
    })
}

fn enc_cusum(e: &mut Enc, c: &CusumState) {
    enc_baseline(e, &c.baseline);
    e.f64(c.s_pos);
    e.f64(c.s_neg);
}

fn dec_cusum(d: &mut Dec) -> DecResult<CusumState> {
    Ok(CusumState {
        baseline: dec_baseline(d)?,
        s_pos: d.f64()?,
        s_neg: d.f64()?,
    })
}

fn enc_ph(e: &mut Enc, p: &PageHinkleyState) {
    enc_baseline(e, &p.baseline);
    e.f64(p.m_up);
    e.f64(p.min_up);
    e.f64(p.m_dn);
    e.f64(p.max_dn);
}

fn dec_ph(d: &mut Dec) -> DecResult<PageHinkleyState> {
    Ok(PageHinkleyState {
        baseline: dec_baseline(d)?,
        m_up: d.f64()?,
        min_up: d.f64()?,
        m_dn: d.f64()?,
        max_dn: d.f64()?,
    })
}

fn enc_ewma(e: &mut Enc, w: &EwmaState) {
    enc_baseline(e, &w.baseline);
    e.f64(w.ewma);
}

fn dec_ewma(d: &mut Dec) -> DecResult<EwmaState> {
    Ok(EwmaState {
        baseline: dec_baseline(d)?,
        ewma: d.f64()?,
    })
}

fn enc_drift_summary(e: &mut Enc, s: &DriftSummary) {
    e.u64(s.windows);
    e.u64(s.alarms);
    e.u64(s.warn);
    e.u64(s.critical);
    e.opt_u64(s.first_alarm_window);
    e.usize(s.by_channel.len());
    for c in &s.by_channel {
        e.str(&c.detector);
        e.str(&c.metric);
        e.u64(c.alarms);
    }
}

fn dec_drift_summary(d: &mut Dec) -> DecResult<DriftSummary> {
    let windows = d.u64()?;
    let alarms = d.u64()?;
    let warn = d.u64()?;
    let critical = d.u64()?;
    let first_alarm_window = d.opt_u64()?;
    let n = d.len(24)?;
    let by_channel = (0..n)
        .map(|_| {
            Ok(ChannelAlarms {
                detector: d.str()?,
                metric: d.str()?,
                alarms: d.u64()?,
            })
        })
        .collect::<DecResult<_>>()?;
    Ok(DriftSummary {
        windows,
        alarms,
        warn,
        critical,
        first_alarm_window,
        by_channel,
    })
}

fn enc_observatory(e: &mut Enc, o: &ObservatoryState) {
    e.f64_slice(&o.seasonal_history);
    enc_cusum(e, &o.rate_cusum);
    enc_ph(e, &o.rate_ph);
    enc_cusum(e, &o.bytes_cusum);
    enc_ph(e, &o.bytes_ph);
    enc_ewma(e, &o.alpha_ewma);
    enc_ewma(e, &o.hvt_ewma);
    enc_drift_summary(e, &o.summary);
}

fn dec_observatory(d: &mut Dec) -> DecResult<ObservatoryState> {
    Ok(ObservatoryState {
        seasonal_history: d.f64_vec()?,
        rate_cusum: dec_cusum(d)?,
        rate_ph: dec_ph(d)?,
        bytes_cusum: dec_cusum(d)?,
        bytes_ph: dec_ph(d)?,
        alpha_ewma: dec_ewma(d)?,
        hvt_ewma: dec_ewma(d)?,
        summary: dec_drift_summary(d)?,
    })
}

fn enc_engine(e: &mut Enc, s: &EngineState) {
    enc_sessionizer(e, &s.sessionizer);
    enc_arrivals(e, &s.request_arrivals);
    enc_arrivals(e, &s.session_arrivals);
    enc_window_reports(e, &s.request_windows);
    enc_window_reports(e, &s.session_windows);
    enc_welford(e, s.response_bytes);
    e.u64_slice(&s.bytes_hist.0);
    e.u64(s.bytes_hist.1);
    e.u64(s.bytes_hist.2);
    enc_welford(e, s.session_duration);
    enc_welford(e, s.session_requests);
    enc_welford(e, s.session_bytes);
    enc_topk(e, &s.duration_tail);
    enc_topk(e, &s.requests_tail);
    enc_topk(e, &s.bytes_tail);
    e.u64(s.records);
    e.u64(s.bytes);
    enc_observatory(e, &s.observatory);
    enc_welford(e, s.window_bytes);
    e.u64(s.last_emitted);
    e.f64(s.last_evict_time);
    enc_welford(e, s.window_interarrival);
    e.f64(s.last_arrival);
    enc_window_diags(e, &s.diagnostics_windows);
    e.u8(s.degradation_mode);
    e.u64(s.sampled_out);
    e.u64(s.hard_shed_records);
    e.bool(s.forced_checkpoint_due);
}

fn dec_engine(d: &mut Dec) -> DecResult<EngineState> {
    Ok(EngineState {
        sessionizer: dec_sessionizer(d)?,
        request_arrivals: dec_arrivals(d)?,
        session_arrivals: dec_arrivals(d)?,
        request_windows: dec_window_reports(d)?,
        session_windows: dec_window_reports(d)?,
        response_bytes: dec_welford(d)?,
        bytes_hist: (d.u64_vec()?, d.u64()?, d.u64()?),
        session_duration: dec_welford(d)?,
        session_requests: dec_welford(d)?,
        session_bytes: dec_welford(d)?,
        duration_tail: dec_topk(d)?,
        requests_tail: dec_topk(d)?,
        bytes_tail: dec_topk(d)?,
        records: d.u64()?,
        bytes: d.u64()?,
        observatory: dec_observatory(d)?,
        window_bytes: dec_welford(d)?,
        last_emitted: d.u64()?,
        last_evict_time: d.f64()?,
        window_interarrival: dec_welford(d)?,
        last_arrival: d.f64()?,
        diagnostics_windows: dec_window_diags(d)?,
        degradation_mode: d.u8()?,
        sampled_out: d.u64()?,
        hard_shed_records: d.u64()?,
        forced_checkpoint_due: d.bool()?,
    })
}

fn enc_breakdown(e: &mut Enc, b: &MalformedBreakdown) {
    e.u64(b.bad_timestamp);
    e.u64(b.bad_status);
    e.u64(b.truncated);
    e.u64(b.other);
}

fn dec_breakdown(d: &mut Dec) -> DecResult<MalformedBreakdown> {
    Ok(MalformedBreakdown {
        bad_timestamp: d.u64()?,
        bad_status: d.u64()?,
        truncated: d.u64()?,
        other: d.u64()?,
    })
}

fn enc_source(e: &mut Enc, s: &SourcePosition) {
    e.u64(s.byte_offset);
    e.u64(s.line_no);
    e.u64(s.parsed);
    e.u64(s.skipped);
    enc_breakdown(e, &s.malformed);
}

fn dec_source(d: &mut Dec) -> DecResult<SourcePosition> {
    Ok(SourcePosition {
        byte_offset: d.u64()?,
        line_no: d.u64()?,
        parsed: d.u64()?,
        skipped: d.u64()?,
        malformed: dec_breakdown(d)?,
    })
}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

impl Checkpoint {
    /// Serialize to the full on-disk byte layout (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        enc_stream_config(&mut e, &self.config);
        enc_engine(&mut e, &self.engine);
        enc_source(&mut e, &self.source);
        e.u64(self.events_seq);
        enc_breakdown(&mut e, &self.poison);
        e.u64(self.recoveries);
        e.u64(self.transient_retries);
        e.u64(self.checkpoints_written);
        e.u8(self.governor_state);
        let payload = e.buf;

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parse the full on-disk byte layout back into a checkpoint.
    ///
    /// # Errors
    ///
    /// Refuses anything that is not a bit-exact, checksum-clean
    /// version-[`VERSION`] checkpoint — see [`CheckpointError`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < HEADER_LEN {
            if bytes.len() >= 8 && bytes[..8] != MAGIC {
                return Err(CheckpointError::BadMagic);
            }
            return Err(CheckpointError::Truncated);
        }
        if bytes[..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let expected = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER_LEN..];
        if (payload.len() as u64) < len {
            return Err(CheckpointError::Truncated);
        }
        if (payload.len() as u64) > len {
            return Err(CheckpointError::Malformed("trailing bytes after payload"));
        }
        let found = fnv1a64(payload);
        if found != expected {
            return Err(CheckpointError::ChecksumMismatch { expected, found });
        }

        let mut d = Dec::new(payload);
        let ck = Checkpoint {
            config: dec_stream_config(&mut d)?,
            engine: dec_engine(&mut d)?,
            source: dec_source(&mut d)?,
            events_seq: d.u64()?,
            poison: dec_breakdown(&mut d)?,
            recoveries: d.u64()?,
            transient_retries: d.u64()?,
            checkpoints_written: d.u64()?,
            governor_state: d.u8()?,
        };
        d.done()?;
        Ok(ck)
    }

    /// Write the checkpoint atomically with one-deep rotation: temp
    /// file in the target directory, `sync_all`, rename the current
    /// checkpoint (if any) to [`Checkpoint::previous_path`], rename the
    /// temp file over `path`, best-effort directory fsync. A crash at
    /// any point leaves a loadable generation: either the old file
    /// under `path`, or — in the window between the two renames — the
    /// old file under `path.1`, which
    /// [`Checkpoint::load_with_fallback`] finds.
    ///
    /// # Errors
    ///
    /// Filesystem errors as [`CheckpointError::Io`].
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.encode();
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        // Keep the previous generation: if the new file turns out torn
        // (a crash mid-rename dance, media corruption later), recovery
        // falls back one checkpoint instead of starting from zero.
        if path.exists() {
            if let Err(e) = fs::rename(path, Self::previous_path(path)) {
                let _ = fs::remove_file(&tmp);
                return Err(e.into());
            }
        }
        if let Err(e) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        // Make the renames durable where the platform allows opening
        // directories; failure here cannot produce a torn file, so it
        // is not fatal.
        if let Some(dir) = dir {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Where [`Checkpoint::save`] parks the previous generation:
    /// `path` with `.1` appended (`run.ckpt` → `run.ckpt.1`).
    pub fn previous_path(path: &Path) -> PathBuf {
        let mut os = path.as_os_str().to_os_string();
        os.push(".1");
        PathBuf::from(os)
    }

    /// Read and validate a checkpoint file.
    ///
    /// # Errors
    ///
    /// Filesystem errors and every validation failure in
    /// [`Checkpoint::decode`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = fs::read(path)?;
        Checkpoint::decode(&bytes)
    }

    /// Read the latest checkpoint, falling back to the rotated previous
    /// generation when the latest is missing, torn, or corrupt. Returns
    /// the checkpoint and whether the fallback was taken (callers
    /// should surface that — it means some progress was re-done).
    ///
    /// # Errors
    ///
    /// The *latest* generation's error when both generations fail —
    /// that is the file the operator pointed at.
    pub fn load_with_fallback(path: &Path) -> Result<(Self, bool), CheckpointError> {
        match Checkpoint::load(path) {
            Ok(ck) => Ok((ck, false)),
            Err(latest_err) => match Checkpoint::load(&Self::previous_path(path)) {
                Ok(ck) => Ok((ck, true)),
                Err(_) => Err(latest_err),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamAnalyzer;
    use webpuzzle_weblog::{LogRecord, Method};

    fn sample_checkpoint() -> Checkpoint {
        let cfg = StreamConfig {
            session_threshold: 100.0,
            max_open_sessions: 64,
            ..StreamConfig::default()
        };
        let mut engine = StreamAnalyzer::new(cfg.clone()).unwrap();
        for i in 0..3_000u32 {
            let r = LogRecord::new(
                i as f64 * 0.7,
                i % 151,
                Method::Get,
                i % 151,
                200,
                64 + (i as u64 * 17) % 9_000,
            );
            engine.push(&r).unwrap();
        }
        Checkpoint {
            config: cfg,
            engine: engine.export_state(),
            source: SourcePosition {
                byte_offset: 123_456,
                line_no: 3_010,
                parsed: 3_000,
                skipped: 10,
                malformed: MalformedBreakdown {
                    bad_timestamp: 4,
                    bad_status: 3,
                    truncated: 2,
                    other: 1,
                },
            },
            events_seq: 42,
            poison: MalformedBreakdown::default(),
            recoveries: 1,
            transient_retries: 7,
            checkpoints_written: 5,
            governor_state: 1,
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_for_bit() {
        let ck = sample_checkpoint();
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back, ck);
        // Encoding is deterministic: same state, same bytes.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn neg_infinity_sentinels_survive_the_codec() {
        // A fresh engine carries -inf watermarks and eviction clocks —
        // the reason this codec exists instead of JSON.
        let cfg = StreamConfig::default();
        let engine = StreamAnalyzer::new(cfg.clone()).unwrap();
        let state = engine.export_state();
        assert_eq!(state.sessionizer.watermark, f64::NEG_INFINITY);
        assert_eq!(state.last_evict_time, f64::NEG_INFINITY);
        let ck = Checkpoint {
            config: cfg,
            engine: state,
            source: SourcePosition::default(),
            events_seq: 0,
            poison: MalformedBreakdown::default(),
            recoveries: 0,
            transient_retries: 0,
            checkpoints_written: 0,
            governor_state: 0,
        };
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back.engine.sessionizer.watermark, f64::NEG_INFINITY);
        assert_eq!(back.engine.last_evict_time, f64::NEG_INFINITY);
        assert_eq!(back, ck);
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let ck = sample_checkpoint();
        let dir = std::env::temp_dir().join("webpuzzle-ckpt-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ck");
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, ck);
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file left behind"
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_is_refused_with_checksum_mismatch() {
        let ck = sample_checkpoint();
        let mut bytes = ck.encode();
        let flip = HEADER_LEN + 100;
        bytes[flip] ^= 0xFF;
        match Checkpoint::decode(&bytes) {
            Err(CheckpointError::ChecksumMismatch { expected, found }) => {
                assert_ne!(expected, found);
            }
            other => panic!("corrupt checkpoint accepted: {other:?}"),
        }
    }

    #[test]
    fn truncation_bad_magic_and_bad_version_are_refused() {
        let ck = sample_checkpoint();
        let bytes = ck.encode();

        let cut = &bytes[..bytes.len() / 2];
        assert!(matches!(
            Checkpoint::decode(cut),
            Err(CheckpointError::Truncated)
        ));

        let mut magic = bytes.clone();
        magic[0] = b'X';
        assert!(matches!(
            Checkpoint::decode(&magic),
            Err(CheckpointError::BadMagic)
        ));

        let mut version = bytes.clone();
        version[8] = 99;
        assert!(matches!(
            Checkpoint::decode(&version),
            Err(CheckpointError::UnsupportedVersion(99))
        ));

        assert!(matches!(
            Checkpoint::decode(&[]),
            Err(CheckpointError::Truncated)
        ));
    }

    #[test]
    fn rotation_keeps_the_previous_generation_and_falls_back_on_corruption() {
        let dir = std::env::temp_dir().join("webpuzzle-ckpt-rotate-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ck");
        let prev = Checkpoint::previous_path(&path);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&prev);

        let mut first = sample_checkpoint();
        first.checkpoints_written = 1;
        let mut second = sample_checkpoint();
        second.checkpoints_written = 2;

        // First save: no rotation partner yet.
        first.save(&path).unwrap();
        assert!(!prev.exists());
        // Second save rotates the first out of the way.
        second.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), second);
        assert_eq!(Checkpoint::load(&prev).unwrap(), first);

        // A clean latest never takes the fallback.
        let (ck, fell_back) = Checkpoint::load_with_fallback(&path).unwrap();
        assert_eq!(ck, second);
        assert!(!fell_back);

        // Kill-mid-write: tear the latest generation in half. Recovery
        // falls back one checkpoint instead of starting over.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let (ck, fell_back) = Checkpoint::load_with_fallback(&path).unwrap();
        assert_eq!(ck, first);
        assert!(fell_back);

        // Latest gone entirely (crash between the two renames): the
        // rotated generation still answers.
        fs::remove_file(&path).unwrap();
        let (ck, fell_back) = Checkpoint::load_with_fallback(&path).unwrap();
        assert_eq!(ck, first);
        assert!(fell_back);

        // Both generations bad: the latest generation's error wins.
        fs::write(&prev, b"garbage").unwrap();
        match Checkpoint::load_with_fallback(&path) {
            Err(CheckpointError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::NotFound);
            }
            other => panic!("expected the latest generation's error, got {other:?}"),
        }
        let _ = fs::remove_file(&prev);
    }

    #[test]
    fn decoded_engine_state_restores_a_working_engine() {
        let ck = sample_checkpoint();
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        let mut engine = StreamAnalyzer::restore(back.config.clone(), &back.engine).unwrap();
        assert_eq!(engine.export_state(), ck.engine);
        // The restored engine keeps working past the checkpoint.
        let r = LogRecord::new(2_101.0, 7, Method::Get, 7, 200, 512);
        engine.push(&r).unwrap();
        assert_eq!(engine.records(), ck.engine.records + 1);
    }
}
