//! The pull-based `Source`/`Stage` pipeline abstraction.
//!
//! A [`Source`] produces items one at a time (fallibly); a [`Stage`]
//! transforms items, possibly buffering (a sessionizer holds open
//! sessions) and possibly emitting several outputs per input (or
//! several at end-of-stream). [`Pipe`] composes a stage onto a source,
//! and is itself a source, so pipelines chain without intermediate
//! collections — the defining property of the one-pass engine: nothing
//! in a pipeline ever holds the whole stream.

use crate::Result;

/// A pull-based producer of items.
///
/// Unlike `Iterator`, each pull is fallible (log lines can be
/// malformed, IO can fail). `None` means the stream is exhausted and
/// will keep answering `None`.
pub trait Source {
    /// The produced item type.
    type Item;

    /// Pull the next item.
    fn next_item(&mut self) -> Option<Result<Self::Item>>;
}

/// A streaming transformation between item types.
///
/// `process` consumes one input and appends zero or more outputs to
/// `out`; `finish` is called exactly once after the upstream source is
/// exhausted so buffered state (open sessions, partial windows) can be
/// flushed.
pub trait Stage {
    /// Input item type.
    type In;
    /// Output item type.
    type Out;

    /// Feed one item through the stage.
    ///
    /// # Errors
    ///
    /// Implementations fail on contract violations (e.g. out-of-order
    /// input to an order-requiring stage).
    fn process(&mut self, item: Self::In, out: &mut Vec<Self::Out>) -> Result<()>;

    /// Flush any buffered state at end-of-stream.
    ///
    /// # Errors
    ///
    /// Implementations fail if buffered state cannot be finalized.
    fn finish(&mut self, out: &mut Vec<Self::Out>) -> Result<()>;
}

/// A [`Stage`] composed onto a [`Source`], forming a new source.
///
/// Outputs are buffered in an internal queue whose length is bounded by
/// the stage's own fan-out (for the sessionizer: the sessions expiring
/// at one eviction sweep), never by the stream length.
#[derive(Debug)]
pub struct Pipe<S, T: Stage> {
    source: S,
    stage: T,
    queue: std::collections::VecDeque<T::Out>,
    upstream_done: bool,
    finished: bool,
}

impl<S, T> Pipe<S, T>
where
    S: Source,
    T: Stage<In = S::Item>,
{
    /// Compose `stage` onto `source`.
    pub fn new(source: S, stage: T) -> Self {
        Pipe {
            source,
            stage,
            queue: std::collections::VecDeque::new(),
            upstream_done: false,
            finished: false,
        }
    }

    /// The wrapped stage (for inspecting accumulated state afterwards).
    pub fn stage(&self) -> &T {
        &self.stage
    }

    /// The wrapped source.
    pub fn source(&self) -> &S {
        &self.source
    }
}

impl<S, T> Source for Pipe<S, T>
where
    S: Source,
    T: Stage<In = S::Item>,
{
    type Item = T::Out;

    fn next_item(&mut self) -> Option<Result<Self::Item>> {
        loop {
            if let Some(item) = self.queue.pop_front() {
                return Some(Ok(item));
            }
            if self.finished {
                return None;
            }
            if self.upstream_done {
                let mut out = Vec::new();
                self.finished = true;
                if let Err(e) = self.stage.finish(&mut out) {
                    return Some(Err(e));
                }
                self.queue.extend(out);
                continue;
            }
            match self.source.next_item() {
                Some(Ok(item)) => {
                    let mut out = Vec::new();
                    if let Err(e) = self.stage.process(item, &mut out) {
                        return Some(Err(e));
                    }
                    self.queue.extend(out);
                }
                Some(Err(e)) => return Some(Err(e)),
                None => self.upstream_done = true,
            }
        }
    }
}

/// Adapt any infallible iterator into a [`Source`] (handy for tests and
/// for feeding in-memory record slices through streaming stages).
#[derive(Debug)]
pub struct IterSource<I>(pub I);

impl<I: Iterator> Source for IterSource<I> {
    type Item = I::Item;

    fn next_item(&mut self) -> Option<Result<Self::Item>> {
        self.0.next().map(Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles each number; emits a terminal marker on finish.
    struct Doubler {
        flushed: bool,
    }

    impl Stage for Doubler {
        type In = u32;
        type Out = u32;

        fn process(&mut self, item: u32, out: &mut Vec<u32>) -> Result<()> {
            // Wrapping: the chained test doubles the MAX marker.
            out.push(item.wrapping_mul(2));
            Ok(())
        }

        fn finish(&mut self, out: &mut Vec<u32>) -> Result<()> {
            self.flushed = true;
            out.push(u32::MAX);
            Ok(())
        }
    }

    fn drain<S: Source>(mut s: S) -> Vec<S::Item> {
        let mut v = Vec::new();
        while let Some(item) = s.next_item() {
            v.push(item.expect("no errors in test pipeline"));
        }
        v
    }

    #[test]
    fn pipe_transforms_and_flushes_once() {
        let pipe = Pipe::new(IterSource(1..=3u32), Doubler { flushed: false });
        assert_eq!(drain(pipe), vec![2, 4, 6, u32::MAX]);
    }

    #[test]
    fn exhausted_pipe_stays_exhausted() {
        let mut pipe = Pipe::new(
            IterSource(std::iter::empty::<u32>()),
            Doubler { flushed: false },
        );
        assert_eq!(pipe.next_item().unwrap().unwrap(), u32::MAX);
        assert!(pipe.next_item().is_none());
        assert!(pipe.next_item().is_none());
        assert!(pipe.stage().flushed);
    }

    #[test]
    fn pipes_chain() {
        let inner = Pipe::new(IterSource(1..=2u32), Doubler { flushed: false });
        let outer = Pipe::new(inner, Doubler { flushed: false });
        // 1,2 -> 2,4,MAX -> 4,8,(MAX*2 wraps),MAX
        assert_eq!(drain(outer), vec![4, 8, u32::MAX.wrapping_mul(2), u32::MAX]);
    }
}
