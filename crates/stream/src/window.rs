//! Windowed arrival analysis: bounded rings of per-second / per-10-ms
//! counts that feed the existing variance-time estimator and §4.2
//! Poisson battery, window by window.
//!
//! The batch pipeline bins a whole week of arrivals at once; here a
//! fixed analysis window (default: the paper's 4-hour interval) is
//! accumulated in two count rings plus the raw arrival times of the
//! *current window only*, and when the stream crosses a window
//! boundary the completed window is analyzed and the rings recycle.
//! Memory is `O(window bins + window arrivals)` — nothing outlives its
//! window except the small [`WindowReport`] per window.

use crate::Result;
use serde::{Deserialize, Serialize};
use webpuzzle_core::{poisson_arrival_test, PoissonVerdict, TieSpreading};
use webpuzzle_lrd::variance_time_detailed;

/// Configuration of the per-window analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Window length in seconds (paper: 4-hour intervals).
    pub window_len: f64,
    /// Coarse ring bin width, seconds (paper: 1 s arrival counts).
    pub bin_width: f64,
    /// Optional fine ring bin width, seconds (default 10 ms) for a
    /// sub-second variance-time reading; `None` disables the fine ring.
    pub fine_bin_width: Option<f64>,
    /// Minimum arrivals per Poisson subinterval; below it the window
    /// verdict is NA (the paper's NASA-Pub2 situation).
    pub min_poisson_arrivals: usize,
    /// Seed for the Poisson battery's uniform tie-spreading.
    pub seed: u64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            window_len: 14_400.0,
            bin_width: 1.0,
            fine_bin_width: Some(0.01),
            min_poisson_arrivals: 50,
            seed: 0,
        }
    }
}

/// Analysis of one completed window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowReport {
    /// Zero-based window index (window `i` covers
    /// `[i·window_len, (i+1)·window_len)`).
    pub index: u64,
    /// Window start time, seconds.
    pub start: f64,
    /// Arrivals in the window.
    pub events: u64,
    /// Variance-time Hurst estimate over the coarse (per-second) ring;
    /// `None` when the window is too quiet for the estimator.
    pub h_variance_time: Option<f64>,
    /// Half-width of the 95% CI on `h_variance_time` (t-based, from
    /// the OLS residuals, inflated per `webpuzzle_lrd::VT_CI_INFLATION`).
    pub h_ci_half_width: Option<f64>,
    /// R² of the coarse-ring variance-time regression.
    pub h_r_squared: Option<f64>,
    /// Aggregation levels used by the coarse-ring fit (0 when the
    /// estimator did not run).
    pub h_points: u64,
    /// Variance-time Hurst estimate over the fine (per-10-ms) ring.
    pub h_variance_time_fine: Option<f64>,
    /// §4.2 Poisson verdict at hourly subinterval rates.
    pub poisson_hourly: PoissonVerdict,
    /// §4.2 Poisson verdict at 10-minute subinterval rates.
    pub poisson_ten_min: PoissonVerdict,
}

/// Complete mutable state of a [`WindowedArrivals`] accumulator, for
/// checkpointing. Ring contents are carried verbatim: counts are exact
/// and the raw arrival times of the current (partial) window are what
/// the Poisson battery will need when the window eventually closes.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalsState {
    /// Coarse-ring per-bin counts.
    pub coarse: Vec<f64>,
    /// Fine-ring per-bin counts (empty when the fine ring is disabled).
    pub fine: Vec<f64>,
    /// Raw arrival times of the current window.
    pub times: Vec<f64>,
    /// Index of the current (open) window.
    pub window_index: u64,
    /// Last arrival time seen (`-inf` before the first).
    pub last_time: f64,
    /// Total arrivals accepted.
    pub total_events: u64,
}

/// Streaming window accumulator over one arrival process.
///
/// Feed event times in nondecreasing order via
/// [`WindowedArrivals::push`]; completed [`WindowReport`]s are appended
/// to the supplied buffer as boundaries are crossed. The trailing
/// partial window is analyzed by [`WindowedArrivals::finish`] only if
/// it is at least half covered (a 10-minute stub of a 4-hour window
/// would produce noise, not measurement).
#[derive(Debug)]
pub struct WindowedArrivals {
    cfg: WindowConfig,
    coarse: Vec<f64>,
    fine: Vec<f64>,
    times: Vec<f64>,
    window_index: u64,
    last_time: f64,
    total_events: u64,
}

impl WindowedArrivals {
    /// Create an accumulator with the given window configuration.
    pub fn new(cfg: WindowConfig) -> Self {
        let coarse_bins = (cfg.window_len / cfg.bin_width).ceil().max(1.0) as usize;
        let fine_bins = cfg
            .fine_bin_width
            .map(|w| (cfg.window_len / w).ceil().max(1.0) as usize)
            .unwrap_or(0);
        WindowedArrivals {
            cfg,
            coarse: vec![0.0; coarse_bins],
            fine: vec![0.0; fine_bins],
            times: Vec::new(),
            window_index: 0,
            last_time: f64::NEG_INFINITY,
            total_events: 0,
        }
    }

    /// Feed one arrival time (seconds, nondecreasing). Completed
    /// windows are analyzed and appended to `out`.
    ///
    /// # Errors
    ///
    /// Propagates estimator failures other than the expected
    /// too-little-data cases (which map to `None`/NA in the report).
    pub fn push(&mut self, t: f64, out: &mut Vec<WindowReport>) -> Result<()> {
        debug_assert!(t >= self.last_time, "arrival times must be nondecreasing");
        self.last_time = t;
        // Close every window the stream has moved past (quiet stretches
        // produce empty windows, which are reported as such).
        while t >= (self.window_index + 1) as f64 * self.cfg.window_len {
            let report = self.close_window()?;
            out.push(report);
        }
        let start = self.window_index as f64 * self.cfg.window_len;
        let offset = t - start;
        if offset >= 0.0 {
            let c = ((offset / self.cfg.bin_width) as usize).min(self.coarse.len() - 1);
            self.coarse[c] += 1.0;
            if let Some(w) = self.cfg.fine_bin_width {
                let f = ((offset / w) as usize).min(self.fine.len().saturating_sub(1));
                self.fine[f] += 1.0;
            }
            self.times.push(t);
            self.total_events += 1;
        }
        Ok(())
    }

    /// Analyze the trailing partial window if it is at least half
    /// covered, then reset. Returns the final report, if any.
    ///
    /// # Errors
    ///
    /// Propagates unexpected estimator failures, as in
    /// [`WindowedArrivals::push`].
    pub fn finish(&mut self, out: &mut Vec<WindowReport>) -> Result<()> {
        let start = self.window_index as f64 * self.cfg.window_len;
        let covered = self.last_time - start;
        if !self.times.is_empty() && covered >= self.cfg.window_len / 2.0 {
            let report = self.close_window()?;
            out.push(report);
        }
        Ok(())
    }

    /// Would an arrival at time `t` close the current window? A cheap
    /// pre-check (one comparison) the engine uses to decide whether to
    /// time the window section for the flight recorder before paying
    /// for any timestamps.
    pub fn would_close(&self, t: f64) -> bool {
        t >= (self.window_index + 1) as f64 * self.cfg.window_len
    }

    /// Total arrivals accepted so far.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Memory footprint of the rings, in bins (diagnostic).
    pub fn ring_bins(&self) -> usize {
        self.coarse.len() + self.fine.len()
    }

    /// Export the accumulator's mutable state for checkpointing.
    pub fn export_state(&self) -> ArrivalsState {
        ArrivalsState {
            coarse: self.coarse.clone(),
            fine: self.fine.clone(),
            times: self.times.clone(),
            window_index: self.window_index,
            last_time: self.last_time,
            total_events: self.total_events,
        }
    }

    /// Rebuild an accumulator from a configuration plus exported state.
    /// Ring sizing comes from `cfg`; exported rings are carried over
    /// verbatim when their lengths agree and are otherwise clamped to
    /// the configured sizes (a config/state mismatch is a caller bug,
    /// but restore degrades to a ring reset instead of panicking).
    pub fn restore(cfg: WindowConfig, state: ArrivalsState) -> Self {
        let mut w = WindowedArrivals::new(cfg);
        if state.coarse.len() == w.coarse.len() {
            w.coarse = state.coarse;
        }
        if state.fine.len() == w.fine.len() {
            w.fine = state.fine;
        }
        w.times = state.times;
        w.window_index = state.window_index;
        w.last_time = state.last_time;
        w.total_events = state.total_events;
        w
    }

    fn close_window(&mut self) -> Result<WindowReport> {
        let _span = webpuzzle_obs::span!("stream/window_analysis");
        let start = self.window_index as f64 * self.cfg.window_len;
        let events = self.times.len() as u64;

        let vt = variance_time_detailed(&self.coarse).ok();
        let h_variance_time = vt.as_ref().map(|d| d.estimate.h);
        let h_ci_half_width = vt.as_ref().map(|d| d.h_ci_half_width);
        let h_r_squared = vt.as_ref().map(|d| d.fit.r_squared);
        let h_points = vt.as_ref().map_or(0, |d| d.points as u64);
        let h_variance_time_fine = if self.fine.is_empty() {
            None
        } else {
            variance_time_detailed(&self.fine)
                .ok()
                .map(|d| d.estimate.h)
        };

        let subs_hourly = ((self.cfg.window_len / 3_600.0).round() as usize).max(2);
        let subs_ten_min = ((self.cfg.window_len / 600.0).round() as usize).max(2);
        let poisson_hourly = self.poisson_verdict(start, subs_hourly)?;
        let poisson_ten_min = self.poisson_verdict(start, subs_ten_min)?;

        let report = WindowReport {
            index: self.window_index,
            start,
            events,
            h_variance_time,
            h_ci_half_width,
            h_r_squared,
            h_points,
            h_variance_time_fine,
            poisson_hourly,
            poisson_ten_min,
        };

        self.coarse.fill(0.0);
        self.fine.fill(0.0);
        self.times.clear();
        self.window_index += 1;
        Ok(report)
    }

    fn poisson_verdict(&self, start: f64, subintervals: usize) -> Result<PoissonVerdict> {
        if self.times.is_empty() {
            return Ok(PoissonVerdict::NotApplicable);
        }
        let outcome = poisson_arrival_test(
            &self.times,
            start,
            self.cfg.window_len,
            subintervals,
            TieSpreading::Uniform,
            self.cfg.min_poisson_arrivals,
            self.cfg.seed,
        )?;
        Ok(outcome.map_or(PoissonVerdict::NotApplicable, |o| o.verdict()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use webpuzzle_stats::dist::{Exponential, Sampler};

    fn cfg(window_len: f64) -> WindowConfig {
        WindowConfig {
            window_len,
            bin_width: 1.0,
            fine_bin_width: None,
            min_poisson_arrivals: 20,
            seed: 3,
        }
    }

    /// Poisson arrivals at `rate`/s over `[0, horizon)`.
    fn poisson_times(rate: f64, horizon: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let exp = Exponential::new(rate).unwrap();
        let mut t = 0.0;
        let mut out = Vec::new();
        loop {
            t += exp.sample(&mut rng);
            if t >= horizon {
                return out;
            }
            out.push(t);
        }
    }

    #[test]
    fn windows_close_at_boundaries() {
        let mut w = WindowedArrivals::new(cfg(3_600.0));
        let mut out = Vec::new();
        for t in poisson_times(2.0, 9_000.0, 1) {
            w.push(t, &mut out).unwrap();
        }
        // 9000 s = 2 full hours + a 0.5-hour stub (< half: dropped).
        w.finish(&mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].index, 0);
        assert_eq!(out[1].start, 3_600.0);
        assert!(out.iter().all(|r| r.events > 6_000));
    }

    #[test]
    fn true_poisson_stream_passes_the_battery() {
        let mut w = WindowedArrivals::new(cfg(14_400.0));
        let mut out = Vec::new();
        for t in poisson_times(1.5, 14_400.0, 17) {
            w.push(t, &mut out).unwrap();
        }
        w.finish(&mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].poisson_hourly, PoissonVerdict::ConsistentWithPoisson);
        // Poisson counts are i.i.d.: variance-time H near 1/2.
        let h = out[0].h_variance_time.expect("14400 bins is plenty");
        assert!((h - 0.5).abs() < 0.12, "H = {h}");
        // The regression diagnostics ride along with the estimate.
        let half = out[0].h_ci_half_width.expect("fit carries a CI");
        assert!(half > 0.0 && half < 0.5, "half = {half}");
        let r2 = out[0].h_r_squared.expect("fit carries R²");
        assert!((0.0..=1.0).contains(&r2), "R² = {r2}");
        assert!(out[0].h_points >= 3);
    }

    #[test]
    fn empty_window_has_no_fit_diagnostics() {
        let mut w = WindowedArrivals::new(cfg(600.0));
        let mut out = Vec::new();
        w.push(5.0, &mut out).unwrap();
        // Jump two windows ahead: window 1 closes empty (all-zero ring
        // → degenerate variance-time input).
        w.push(1_300.0, &mut out).unwrap();
        assert_eq!(out[1].events, 0);
        assert!(out[1].h_variance_time.is_none());
        assert!(out[1].h_ci_half_width.is_none());
        assert!(out[1].h_r_squared.is_none());
        assert_eq!(out[1].h_points, 0);
    }

    #[test]
    fn quiet_windows_are_na_and_empty_windows_report_zero() {
        let mut w = WindowedArrivals::new(cfg(600.0));
        let mut out = Vec::new();
        w.push(5.0, &mut out).unwrap();
        w.push(10.0, &mut out).unwrap();
        // Jump three windows ahead: windows 0..=2 close, 1 and 2 empty.
        w.push(1_900.0, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].events, 2);
        assert_eq!(out[0].poisson_hourly, PoissonVerdict::NotApplicable);
        assert_eq!(out[1].events, 0);
        assert_eq!(out[2].events, 0);
    }

    #[test]
    fn state_round_trip_closes_identical_windows() {
        let times = poisson_times(2.0, 9_500.0, 11);
        let split = times.len() / 3;

        let mut whole = WindowedArrivals::new(cfg(3_600.0));
        let mut whole_out = Vec::new();
        for &t in &times {
            whole.push(t, &mut whole_out).unwrap();
        }
        whole.finish(&mut whole_out).unwrap();

        let mut first = WindowedArrivals::new(cfg(3_600.0));
        let mut split_out = Vec::new();
        for &t in &times[..split] {
            first.push(t, &mut split_out).unwrap();
        }
        let state = first.export_state();
        let mut second = WindowedArrivals::restore(cfg(3_600.0), state.clone());
        assert_eq!(second.export_state(), state);
        for &t in &times[split..] {
            second.push(t, &mut split_out).unwrap();
        }
        second.finish(&mut split_out).unwrap();

        assert_eq!(split_out, whole_out);
        assert_eq!(second.total_events(), whole.total_events());
    }

    #[test]
    fn fine_ring_reports_when_enabled() {
        let mut w = WindowedArrivals::new(WindowConfig {
            window_len: 600.0,
            bin_width: 1.0,
            fine_bin_width: Some(0.1),
            min_poisson_arrivals: 20,
            seed: 0,
        });
        let mut out = Vec::new();
        for t in poisson_times(5.0, 1_200.0, 9) {
            w.push(t, &mut out).unwrap();
        }
        w.finish(&mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].h_variance_time_fine.is_some());
        assert_eq!(w.ring_bins(), 600 + 6_000);
    }
}
