//! Fixed-memory online estimators.
//!
//! Everything here updates in `O(1)` (or `O(log k)` for the top-k heap)
//! per observation and holds constant memory, so the engine's estimator
//! state is independent of stream length:
//!
//! * [`Welford`] — numerically stable running mean/variance.
//! * [`LogHistogram`] — base-2 log-bucket histogram with interpolated
//!   quantiles, reusing [`webpuzzle_obs::metrics::Histogram`].
//! * [`TopK`] — the k largest observations, feeding an incremental
//!   Hill tail-index estimate computed over the retained order
//!   statistics (the streaming analogue of the batch Hill plot's
//!   right edge).

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use webpuzzle_obs::metrics::Histogram;

/// Serializable snapshot of a [`Welford`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    /// Observation count.
    pub count: u64,
    /// Running mean (0 when empty).
    pub mean: f64,
    /// Unbiased sample variance (0 below two observations).
    pub variance: f64,
}

/// Welford's online mean/variance algorithm.
///
/// # Examples
///
/// ```
/// use webpuzzle_stream::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 6.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 4.0);
/// assert_eq!(w.sample_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another accumulator (Chan's parallel update), enabling
    /// sharded/multi-stream aggregation.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.n += other.n;
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased (n−1) sample variance; 0 below two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population (n) variance; 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Snapshot for reports.
    pub fn snapshot(&self) -> Moments {
        Moments {
            count: self.n,
            mean: self.mean(),
            variance: self.sample_variance(),
        }
    }

    /// The raw accumulator state `(n, mean, m2)` for checkpointing.
    /// Unlike [`Welford::snapshot`], this is lossless: rebuilding via
    /// [`Welford::from_raw_parts`] is bit-identical.
    pub fn raw_parts(&self) -> (u64, f64, f64) {
        (self.n, self.mean, self.m2)
    }

    /// Rebuild an accumulator from [`Welford::raw_parts`] output.
    pub fn from_raw_parts(n: u64, mean: f64, m2: f64) -> Self {
        Welford { n, mean, m2 }
    }
}

/// Streaming base-2 log-bucket histogram over `u64` observations —
/// a thin owner of the obs metrics [`Histogram`], so snapshots,
/// quantile interpolation, and Prometheus export all share one bucket
/// layout.
#[derive(Debug, Default)]
pub struct LogHistogram {
    inner: Histogram,
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.inner.record(value);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.inner.sum()
    }

    /// Interpolated quantile `q ∈ [0, 1]`; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.inner.quantile(q)
    }

    /// The wrapped obs histogram (for wiring into snapshots).
    pub fn inner(&self) -> &Histogram {
        &self.inner
    }

    /// Checkpoint state: `(bucket counts, count, sum)`.
    pub fn export_state(&self) -> (Vec<u64>, u64, u64) {
        (self.inner.buckets(), self.inner.count(), self.inner.sum())
    }

    /// Rebuild a histogram from [`LogHistogram::export_state`] output.
    pub fn from_state(buckets: &[u64], count: u64, sum: u64) -> Self {
        LogHistogram {
            inner: Histogram::from_parts(buckets, count, sum),
        }
    }
}

/// Total-ordered f64 wrapper for the top-k heap (finite values only).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Finite(f64);

impl Eq for Finite {}

impl PartialOrd for Finite {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Finite {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite values")
    }
}

/// The k largest observations of a stream, in `O(k)` memory, feeding an
/// incremental Hill tail-index estimate.
///
/// The Hill estimator only ever looks at the upper order statistics, so
/// retaining the top k values loses nothing as long as k stays below
/// the tail fraction of interest. The estimate is the paper's equation
/// (5) evaluated at the retained edge, averaged over the outer half of
/// the retained plot exactly like the batch
/// [`webpuzzle_heavytail::hill_estimate`] assessment window — the two
/// agree within the documented tolerance whenever `k` is at least the
/// batch plot's `k_max` (and exactly when the retained set covers the
/// same order statistics).
///
/// # Examples
///
/// ```
/// use webpuzzle_stream::TopK;
///
/// let mut top = TopK::new(256);
/// // A Pareto(α = 2) tail: P[X > x] = x⁻².
/// for i in 1..=10_000u32 {
///     let u = i as f64 / 10_001.0;
///     top.push((1.0 - u).powf(-1.0 / 2.0));
/// }
/// let alpha = top.hill().unwrap();
/// assert!((alpha - 2.0).abs() < 0.3, "alpha = {alpha}");
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Reverse<Finite>>,
    seen: u64,
}

impl TopK {
    /// Track the `k` largest positive observations (`k >= 32` is
    /// sensible for Hill; smaller k still works but is noisy).
    pub fn new(k: usize) -> Self {
        TopK {
            k: k.max(2),
            heap: BinaryHeap::with_capacity(k.max(2) + 1),
            seen: 0,
        }
    }

    /// Offer one observation. Non-positive and non-finite values are
    /// ignored (Hill needs strictly positive data; the batch path
    /// filters identically).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() || x <= 0.0 {
            return;
        }
        self.seen += 1;
        if self.heap.len() < self.k {
            self.heap.push(Reverse(Finite(x)));
        } else if self.heap.peek().is_some_and(|Reverse(min)| x > min.0) {
            self.heap.pop();
            self.heap.push(Reverse(Finite(x)));
        }
    }

    /// Positive observations offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of retained order statistics.
    pub fn retained(&self) -> usize {
        self.heap.len()
    }

    /// The retained values, descending.
    pub fn descending(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.heap.iter().map(|Reverse(f)| f.0).collect();
        v.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
        v
    }

    /// Incremental Hill tail-index estimate over the retained order
    /// statistics: `α_k = 1 / [ (1/k) Σ_{i≤k} ln X_(i) − ln X_(k+1) ]`,
    /// averaged over the outer half of retained k values (mirroring the
    /// batch plateau assessment). `None` below 25 retained values or
    /// when log spacings vanish (tied data).
    pub fn hill(&self) -> Option<f64> {
        self.hill_with_k_max(self.heap.len().saturating_sub(1))
    }

    /// [`TopK::hill`] with the assessment capped at `k_max` order
    /// statistics. Passing the batch pipeline's `⌊tail_fraction·n⌋`
    /// reproduces `hill_estimate`'s assessment window exactly whenever
    /// the heap retains at least `k_max + 1` values; with fewer
    /// retained, the cap degrades to all available order statistics.
    pub fn hill_with_k_max(&self, k_max: usize) -> Option<f64> {
        let desc = self.descending();
        if desc.len() < 25 {
            return None;
        }
        let logs: Vec<f64> = desc.iter().map(|x| x.ln()).collect();
        let k_max = k_max.clamp(1, desc.len() - 1);
        let mut prefix = 0.0;
        let mut alphas = Vec::with_capacity(k_max - k_max / 2 + 1);
        for (k, &log_next) in logs.iter().enumerate().take(k_max + 1).skip(1) {
            prefix += logs[k - 1];
            if k >= k_max / 2 {
                let h = prefix / k as f64 - log_next;
                if h > 1e-9 {
                    alphas.push(1.0 / h);
                }
            }
        }
        if alphas.is_empty() {
            return None;
        }
        Some(alphas.iter().sum::<f64>() / alphas.len() as f64)
    }

    /// The batch assessment cap for this stream: `⌊tail_fraction·seen⌋`.
    pub fn batch_k_max(&self, tail_fraction: f64) -> usize {
        ((self.seen as f64) * tail_fraction) as usize
    }

    /// Checkpoint state: `(k, seen, retained values descending)`. The
    /// heap's internal layout is irrelevant — every consumer sorts — so
    /// the canonical descending order keeps the snapshot deterministic.
    pub fn export_state(&self) -> (usize, u64, Vec<f64>) {
        (self.k, self.seen, self.descending())
    }

    /// Rebuild from [`TopK::export_state`] output by re-offering the
    /// retained values into a fresh heap.
    pub fn from_state(k: usize, seen: u64, retained: &[f64]) -> Self {
        let mut top = TopK::new(k);
        for &x in retained {
            top.heap.push(Reverse(Finite(x)));
        }
        top.seen = seen;
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use webpuzzle_stats::dist::{Pareto, Sampler};

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.5).collect();
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.sample_variance() - var).abs() < 1e-9);
        assert_eq!(w.count(), 1000);
    }

    #[test]
    fn welford_merge_equals_single_stream() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in data.iter().enumerate() {
            whole.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        let mut w = Welford::new();
        w.push(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn log_histogram_delegates() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1027);
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn topk_retains_the_largest() {
        let mut top = TopK::new(3);
        for x in [5.0, 1.0, 9.0, 3.0, 7.0, -2.0, f64::NAN] {
            top.push(x);
        }
        assert_eq!(top.descending(), vec![9.0, 7.0, 5.0]);
        assert_eq!(top.seen(), 5); // the negative and NaN never counted
    }

    #[test]
    fn topk_hill_recovers_pareto_alpha() {
        let mut rng = StdRng::seed_from_u64(77);
        for &alpha in &[1.2, 1.58, 2.2] {
            let sample = Pareto::new(alpha, 1.0).unwrap().sample_n(&mut rng, 30_000);
            let mut top = TopK::new(2048);
            for &x in &sample {
                top.push(x);
            }
            let got = top.hill().expect("enough order statistics");
            assert!((got - alpha).abs() < 0.25, "α = {alpha}, estimated {got}");
        }
    }

    #[test]
    fn topk_hill_matches_batch_hill_band() {
        // Same data, streaming top-k vs the batch assessment: the two
        // estimates must land in the same band (DESIGN.md §9 tolerance).
        let mut rng = StdRng::seed_from_u64(42);
        let sample = Pareto::new(1.5, 1.0).unwrap().sample_n(&mut rng, 20_000);
        let batch = webpuzzle_heavytail::hill_estimate(&sample, 0.14)
            .unwrap()
            .alpha
            .expect("pure Pareto stabilizes");
        let mut top = TopK::new((sample.len() as f64 * 0.14) as usize);
        for &x in &sample {
            top.push(x);
        }
        let streamed = top.hill().unwrap();
        assert!(
            (streamed - batch).abs() < 0.25,
            "batch {batch} vs streamed {streamed}"
        );
    }

    #[test]
    fn state_round_trips_are_lossless() {
        let mut w = Welford::new();
        for i in 0..777 {
            w.push((i as f64).sin() * 1e6);
        }
        let (n, mean, m2) = w.raw_parts();
        let back = Welford::from_raw_parts(n, mean, m2);
        assert_eq!(back, w, "Welford restore must be bit-identical");

        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 1024, u64::MAX / 2] {
            h.record(v);
        }
        let (buckets, count, sum) = h.export_state();
        let back = LogHistogram::from_state(&buckets, count, sum);
        assert_eq!(back.export_state(), (buckets, count, sum));
        assert_eq!(back.quantile(0.5), h.quantile(0.5));

        let mut top = TopK::new(64);
        for i in 1..5_000u32 {
            top.push(1.0 + f64::from(i % 911) * 0.37);
        }
        let (k, seen, retained) = top.export_state();
        let mut back = TopK::from_state(k, seen, &retained);
        assert_eq!(back.seen(), top.seen());
        assert_eq!(back.descending(), top.descending());
        assert_eq!(back.hill(), top.hill());
        // Restored heaps keep evicting correctly as the stream continues.
        back.push(1e9);
        top.push(1e9);
        assert_eq!(back.descending(), top.descending());
    }

    #[test]
    fn topk_hill_degenerate_cases() {
        let mut top = TopK::new(64);
        assert_eq!(top.hill(), None);
        for _ in 0..100 {
            top.push(7.0); // all tied: log spacings vanish
        }
        assert_eq!(top.hill(), None);
    }
}
