//! Supervised ingest: the retry / skip / restore loop that turns the
//! one-pass engine into a crash-safe long-running process.
//!
//! The supervisor classifies every failure into one of three kinds and
//! reacts accordingly:
//!
//! * **Transient** — `EINTR`-class I/O (`Interrupted`, `WouldBlock`,
//!   `TimedOut`): retried in place with capped exponential backoff plus
//!   deterministic jitter. The consecutive-failure counter resets on
//!   the first successful record, so a long stream survives any number
//!   of *scattered* transients while a hard-down source still fails
//!   after [`SupervisorConfig::max_transient_retries`] attempts in a
//!   row.
//! * **Poison** — a malformed record ([`WeblogError::ParseLine`]):
//!   retrying cannot help. Under [`SupervisorConfig::lenient`] it is
//!   skipped and counted (by [`MalformedKind`]); otherwise it is fatal,
//!   matching the strict/lenient split of the underlying parser.
//! * **Fatal** — everything else (unsorted input, estimator failures,
//!   real I/O loss): propagated to the caller.
//!
//! Engine **panics** (an injected crash from
//! [`crate::fault::FaultSource`], or a genuine bug) are caught at the
//! attempt boundary with [`std::panic::catch_unwind`]: the supervisor
//! publishes a recovery event, discards the possibly-torn engine,
//! restores the last checkpoint (or starts fresh when none exists),
//! rebuilds the source via the caller's factory at the checkpointed
//! position, disarms any injected crash, and continues — up to
//! [`SupervisorConfig::max_restores`] times.
//!
//! Checkpoints are taken on a record and/or wall-clock cadence. The
//! JSONL event sink is fsynced *before* each checkpoint is written:
//! the checkpoint stores the event-ring sequence, and a resume
//! fast-forwards past it, so an event must never be durable *later*
//! than a checkpoint that claims it happened.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::checkpoint::{Checkpoint, SourcePosition};
use crate::engine::{StreamAnalyzer, StreamConfig, StreamSummary};
use crate::pipeline::Source;
use crate::{Result, StreamError};
use webpuzzle_obs::events::{self, Event, Severity};
use webpuzzle_obs::{governor, metrics};
use webpuzzle_weblog::{LogRecord, MalformedBreakdown, MalformedKind, WeblogError};

/// A [`Source`] of log records that can report where it stands and be
/// rebuilt there — the contract the supervisor needs for checkpointing
/// and crash recovery. Implemented by [`crate::ClfSource`] over
/// seekable readers and by [`crate::FaultSource`] by delegation.
pub trait RecoverableSource: Source<Item = LogRecord> {
    /// Where the source stands: seek target plus parse counters.
    fn position(&self) -> SourcePosition;

    /// Disarm any injected crash fault. No-op for real sources; the
    /// supervisor calls it on every source rebuilt after a recovery or
    /// resume so one simulated crash cannot loop forever.
    fn disarm_crash(&mut self) {}
}

/// Failure taxonomy — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Worth retrying in place (the source is intact).
    Transient,
    /// One bad record; skippable under lenient, never retryable.
    Poison,
    /// Unrecoverable; propagate.
    Fatal,
}

/// Classify a stream error for the supervisor's retry / skip / fail
/// decision.
pub fn classify(err: &StreamError) -> ErrorClass {
    match err {
        StreamError::Io(e) => match e.kind() {
            std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut => ErrorClass::Transient,
            _ => ErrorClass::Fatal,
        },
        StreamError::Weblog(WeblogError::ParseLine { .. }) => ErrorClass::Poison,
        _ => ErrorClass::Fatal,
    }
}

/// Supervisor tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Skip-and-count poison records instead of failing on them.
    pub lenient: bool,
    /// Consecutive transient failures tolerated before the source is
    /// declared hard-down (the counter resets on every good record).
    pub max_transient_retries: u32,
    /// Backoff base, milliseconds: retry `n` sleeps
    /// `min(cap, base · 2^(n−1))` plus jitter. Zero disables sleeping
    /// (tests).
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed for the deterministic retry jitter.
    pub jitter_seed: u64,
    /// Total time the run may spend in transient-retry backoff before
    /// it is declared fatal, seconds (0 = unlimited). Cumulative across
    /// the whole run, not per streak: a source that flaps forever fails
    /// here even though no single streak ever exceeds
    /// [`SupervisorConfig::max_transient_retries`].
    pub max_retry_elapsed_secs: u64,
    /// Engine restarts (panic recoveries) tolerated before giving up.
    pub max_restores: u32,
    /// Where to write checkpoints; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Checkpoint every N records (0 = no record cadence).
    pub checkpoint_every_records: u64,
    /// Checkpoint every S wall-clock seconds (0 = no time cadence).
    pub checkpoint_every_secs: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            lenient: false,
            max_transient_retries: 5,
            backoff_base_ms: 10,
            backoff_cap_ms: 1_000,
            jitter_seed: 0x5EED,
            max_retry_elapsed_secs: 300,
            max_restores: 3,
            checkpoint_path: None,
            checkpoint_every_records: 0,
            checkpoint_every_secs: 0,
        }
    }
}

/// What a supervised run did, beyond the summary itself.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorReport {
    /// The final one-pass summary.
    pub summary: StreamSummary,
    /// Engine restarts performed (panic recoveries).
    pub recoveries: u64,
    /// Transient-fault retries performed.
    pub transient_retries: u64,
    /// Poison records skipped by the supervisor (lenient mode), by
    /// cause. Injected truncation/corruption lands here; malformed
    /// lines the source itself skipped are in
    /// [`SupervisorReport::source`].
    pub poison: MalformedBreakdown,
    /// Final source position (byte offset, parse counters, and the
    /// source-level malformed breakdown).
    pub source: SourcePosition,
    /// Sessions shed by the open-session cap.
    pub shed_sessions: u64,
    /// Records inside shed sessions.
    pub shed_records: u64,
    /// Checkpoints successfully written.
    pub checkpoints_written: u64,
    /// `Some(records)` when the run resumed from a checkpoint file that
    /// already carried this many records.
    pub resumed_from_records: Option<u64>,
}

impl SupervisorReport {
    /// Total poison records skipped by the supervisor.
    pub fn poison_records(&self) -> u64 {
        self.poison.total()
    }
}

/// Mutable run state threaded through attempts.
struct RunState {
    recoveries: u64,
    poison: MalformedBreakdown,
    transient_retries: u64,
    total_transients: u64,
    /// Backoff time accumulated across the whole run, charged against
    /// [`SupervisorConfig::max_retry_elapsed_secs`].
    retry_slept: Duration,
    checkpoints_written: u64,
    last_checkpoint: Option<Checkpoint>,
    last_checkpoint_at: Instant,
}

/// Per-record observer installed via [`Supervisor::on_record`].
pub type RecordCallback = Box<dyn FnMut(&StreamAnalyzer)>;

/// The supervised ingest loop. `F` rebuilds a source positioned at a
/// given [`SourcePosition`] — called once at start and once per
/// recovery (real implementations reopen the file and seek; test
/// implementations slice a vector).
pub struct Supervisor<S, F>
where
    S: RecoverableSource,
    F: FnMut(&SourcePosition) -> Result<S>,
{
    engine_cfg: StreamConfig,
    cfg: SupervisorConfig,
    factory: F,
    resume: Option<Checkpoint>,
    on_record: Option<RecordCallback>,
    recoveries_counter: Arc<metrics::Counter>,
    retries_counter: Arc<metrics::Counter>,
    poison_counter: Arc<metrics::Counter>,
    kind_counters: [Arc<metrics::Counter>; 4],
    checkpoints_counter: Arc<metrics::Counter>,
    checkpoint_age_gauge: Arc<metrics::Gauge>,
}

impl<S, F> Supervisor<S, F>
where
    S: RecoverableSource,
    F: FnMut(&SourcePosition) -> Result<S>,
{
    /// Build a supervisor that starts a fresh engine.
    pub fn new(engine_cfg: StreamConfig, cfg: SupervisorConfig, factory: F) -> Self {
        Supervisor {
            engine_cfg,
            cfg,
            factory,
            resume: None,
            on_record: None,
            recoveries_counter: metrics::counter("stream/recoveries"),
            retries_counter: metrics::counter("stream/transient_retries"),
            poison_counter: metrics::counter("stream/poison_records"),
            kind_counters: crate::reader::malformed_kind_counters(),
            checkpoints_counter: metrics::counter("stream/checkpoints_written"),
            checkpoint_age_gauge: metrics::gauge("stream/checkpoint_age_secs"),
        }
    }

    /// Resume from a loaded checkpoint instead of starting fresh. The
    /// checkpoint's own engine configuration wins over the one passed
    /// to [`Supervisor::new`] — resuming under different tuning would
    /// change the analysis mid-stream.
    pub fn with_resume(mut self, checkpoint: Checkpoint) -> Self {
        self.engine_cfg = checkpoint.config.clone();
        self.resume = Some(checkpoint);
        self
    }

    /// Install a per-record callback (progress meters, partial report
    /// snapshots); called with the engine after each successful push.
    pub fn on_record(mut self, cb: RecordCallback) -> Self {
        self.on_record = Some(cb);
        self
    }

    /// Run to completion: ingest the whole stream, surviving transient
    /// faults, poison records (lenient), and engine crashes, then
    /// finish the engine and report.
    ///
    /// # Errors
    ///
    /// Fatal stream errors, a transient streak past
    /// `max_transient_retries`, or more panics than `max_restores`.
    pub fn run(&mut self) -> Result<SupervisorReport> {
        let resumed_from_records = self.resume.as_ref().map(|ck| ck.engine.records);
        let mut state;
        let mut engine;
        let mut position;

        match self.resume.take() {
            Some(ck) => {
                engine = StreamAnalyzer::restore(ck.config.clone(), &ck.engine)?;
                position = ck.source;
                // Never reuse an event sequence a previous incarnation
                // already published under.
                events::resume_from(ck.events_seq);
                // Resume in the degradation stage the killed process
                // was in, not Green — re-admitting a flood it had
                // already shed would flap the whole pipeline.
                governor::restore_state(ck.governor_state);
                state = RunState {
                    recoveries: ck.recoveries,
                    poison: ck.poison,
                    transient_retries: ck.transient_retries,
                    total_transients: ck.transient_retries,
                    retry_slept: Duration::ZERO,
                    checkpoints_written: ck.checkpoints_written,
                    last_checkpoint_at: Instant::now(),
                    last_checkpoint: Some(ck),
                };
            }
            None => {
                engine = StreamAnalyzer::new(self.engine_cfg.clone())?;
                position = SourcePosition::default();
                state = RunState {
                    recoveries: 0,
                    poison: MalformedBreakdown::default(),
                    transient_retries: 0,
                    total_transients: 0,
                    retry_slept: Duration::ZERO,
                    checkpoints_written: 0,
                    last_checkpoint: None,
                    last_checkpoint_at: Instant::now(),
                };
            }
        }

        let mut restarted = resumed_from_records.is_some();
        let final_position;
        loop {
            let mut source = (self.factory)(&position)?;
            if restarted {
                // A crash fault must fire at most once per run.
                source.disarm_crash();
            }
            let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
                self.ingest(&mut engine, &mut source, &mut state)
            }));
            match attempt {
                Ok(Ok(())) => {
                    final_position = source.position();
                    break;
                }
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    state.recoveries += 1;
                    self.recoveries_counter.incr();
                    let what = panic_message(payload.as_ref());
                    events::publish(Event::new(
                        Severity::Warn,
                        "supervisor",
                        "stream/recoveries",
                        0,
                        engine_time(&state),
                        (state.recoveries - 1) as f64,
                        state.recoveries as f64,
                        state.recoveries as f64,
                        self.cfg.max_restores as f64,
                        format!(
                            "engine panicked ({what}); restoring from {} \
                             (recovery {}/{})",
                            state.last_checkpoint.as_ref().map_or(
                                "a fresh engine".to_string(),
                                |ck| format!("checkpoint at record {}", ck.engine.records)
                            ),
                            state.recoveries,
                            self.cfg.max_restores,
                        ),
                    ));
                    if state.recoveries > self.cfg.max_restores as u64 {
                        return Err(StreamError::Io(std::io::Error::other(format!(
                            "engine panicked {} times \
                             (max_restores = {}): {what}",
                            state.recoveries, self.cfg.max_restores
                        ))));
                    }
                    match &state.last_checkpoint {
                        Some(ck) => {
                            engine = StreamAnalyzer::restore(ck.config.clone(), &ck.engine)?;
                            position = ck.source;
                            events::resume_from(ck.events_seq);
                            governor::restore_state(ck.governor_state);
                            // Work after the checkpoint is replayed, so
                            // its per-record tallies roll back with it.
                            state.poison = ck.poison;
                            state.transient_retries = ck.transient_retries;
                        }
                        None => {
                            engine = StreamAnalyzer::new(self.engine_cfg.clone())?;
                            position = SourcePosition::default();
                            state.poison = MalformedBreakdown::default();
                            state.transient_retries = 0;
                        }
                    }
                    restarted = true;
                }
            }
        }

        // Final checkpoint so a later process can prove the run ended,
        // then the summary.
        self.checkpoint(&mut engine, final_position, &mut state);
        let summary = engine.finish()?;
        Ok(SupervisorReport {
            recoveries: state.recoveries,
            transient_retries: state.transient_retries,
            poison: state.poison,
            source: final_position,
            shed_sessions: summary.shed_sessions,
            shed_records: summary.shed_records,
            checkpoints_written: state.checkpoints_written,
            resumed_from_records,
            summary,
        })
    }

    /// One uninterrupted attempt: pull records until the source is
    /// exhausted, retrying transients and skipping poison per config.
    fn ingest(
        &mut self,
        engine: &mut StreamAnalyzer,
        source: &mut S,
        state: &mut RunState,
    ) -> Result<()> {
        let mut consecutive_transients: u32 = 0;
        loop {
            match source.next_item() {
                None => return Ok(()),
                Some(Ok(record)) => {
                    consecutive_transients = 0;
                    engine.push(&record)?;
                    if let Some(cb) = &mut self.on_record {
                        cb(engine);
                    }
                    self.maybe_checkpoint(engine, source, state);
                }
                Some(Err(e)) => match classify(&e) {
                    ErrorClass::Transient => {
                        consecutive_transients += 1;
                        state.transient_retries += 1;
                        state.total_transients += 1;
                        self.retries_counter.incr();
                        if consecutive_transients > self.cfg.max_transient_retries {
                            return Err(StreamError::Io(std::io::Error::other(format!(
                                "source failed {consecutive_transients} times in a row \
                                 (max_transient_retries = {}); last error: {e}",
                                self.cfg.max_transient_retries
                            ))));
                        }
                        let delay = self.backoff_delay(consecutive_transients, state);
                        // Charge the budget before sleeping: at the
                        // boundary the run fails instead of paying for
                        // one more sleep it no longer has.
                        state.retry_slept = state.retry_slept.saturating_add(delay);
                        if self.retry_budget_exhausted(state) {
                            return Err(StreamError::Io(std::io::Error::other(format!(
                                "transient-retry backoff budget exhausted: \
                                 {:.1}s accumulated (max_retry_elapsed_secs = {}); \
                                 last error: {e}",
                                state.retry_slept.as_secs_f64(),
                                self.cfg.max_retry_elapsed_secs
                            ))));
                        }
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                    }
                    ErrorClass::Poison => {
                        if !self.cfg.lenient {
                            return Err(e);
                        }
                        consecutive_transients = 0;
                        let kind = match &e {
                            StreamError::Weblog(WeblogError::ParseLine { reason, .. }) => {
                                MalformedKind::classify(reason)
                            }
                            _ => MalformedKind::Other,
                        };
                        state.poison.record(kind);
                        self.poison_counter.incr();
                        crate::reader::kind_counter(&self.kind_counters, kind).incr();
                    }
                    ErrorClass::Fatal => return Err(e),
                },
            }
        }
    }

    /// Capped exponential backoff with deterministic jitter: retry `n`
    /// sleeps `min(cap, base·2^(n−1))` plus up to one extra base unit,
    /// keyed on the total transient count so two sources retrying in
    /// lockstep de-synchronize.
    fn backoff_delay(&self, attempt: u32, state: &RunState) -> Duration {
        let base = self.cfg.backoff_base_ms;
        if base == 0 {
            return Duration::ZERO;
        }
        let shift = (attempt - 1).min(16);
        let exp = base
            .saturating_mul(1u64 << shift)
            .min(self.cfg.backoff_cap_ms);
        let mut x = self
            .cfg
            .jitter_seed
            .wrapping_add(state.total_transients.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 31;
        let jitter = x % base.max(1);
        Duration::from_millis(exp.saturating_add(jitter))
    }

    /// Whether accumulated backoff time has crossed the elapsed-retry
    /// budget. `>=` on purpose: a budget of N seconds buys strictly
    /// less than N seconds of sleeping.
    fn retry_budget_exhausted(&self, state: &RunState) -> bool {
        self.cfg.max_retry_elapsed_secs > 0
            && state.retry_slept >= Duration::from_secs(self.cfg.max_retry_elapsed_secs)
    }

    /// Take a checkpoint if either cadence is due.
    fn maybe_checkpoint(&mut self, engine: &mut StreamAnalyzer, source: &S, state: &mut RunState) {
        if self.cfg.checkpoint_path.is_none() {
            return;
        }
        let records = engine.records();
        if records.is_multiple_of(64) {
            self.checkpoint_age_gauge
                .set(state.last_checkpoint_at.elapsed().as_secs_f64());
        }
        let due_records = self.cfg.checkpoint_every_records > 0
            && records.is_multiple_of(self.cfg.checkpoint_every_records);
        let due_secs = self.cfg.checkpoint_every_secs > 0
            && state.last_checkpoint_at.elapsed().as_secs() >= self.cfg.checkpoint_every_secs;
        // A Red transition demands durability now, off any cadence: if
        // the process dies under the overload that caused it, the
        // restart must not replay the flood from the last checkpoint.
        let forced = engine.take_forced_checkpoint();
        if due_records || due_secs || forced {
            let position = source.position();
            self.checkpoint(engine, position, state);
        }
    }

    /// Write one checkpoint: fsync the event sink first (the snapshot
    /// stores the ring sequence), then save atomically. A failed save
    /// is a warning, not a crash — losing checkpoint freshness must not
    /// kill an otherwise healthy run.
    fn checkpoint(
        &mut self,
        engine: &mut StreamAnalyzer,
        position: SourcePosition,
        state: &mut RunState,
    ) {
        let Some(path) = self.cfg.checkpoint_path.clone() else {
            return;
        };
        if let Err(e) = events::sync_jsonl_sink() {
            events::publish(Event::new(
                Severity::Warn,
                "supervisor",
                "stream/checkpoints_written",
                0,
                engine_time(state),
                0.0,
                0.0,
                0.0,
                0.0,
                format!("event sink fsync failed before checkpoint: {e}"),
            ));
        }
        let ck = Checkpoint {
            config: engine.config().clone(),
            engine: engine.export_state(),
            source: position,
            events_seq: events::latest_seq(),
            poison: state.poison,
            recoveries: state.recoveries,
            transient_retries: state.transient_retries,
            checkpoints_written: state.checkpoints_written + 1,
            governor_state: governor::state().code(),
        };
        let t0 = webpuzzle_obs::profile::is_enabled().then(Instant::now);
        let saved = ck.save(&path);
        if let Some(t0) = t0 {
            webpuzzle_obs::profile::record_stage_ns(
                webpuzzle_obs::profile::Stage::CheckpointEncode,
                t0.elapsed().as_nanos() as u64,
            );
        }
        match saved {
            Ok(()) => {
                state.checkpoints_written += 1;
                self.checkpoints_counter.incr();
                self.checkpoint_age_gauge.set(0.0);
                state.last_checkpoint_at = Instant::now();
                state.last_checkpoint = Some(ck);
            }
            Err(e) => {
                events::publish(Event::new(
                    Severity::Warn,
                    "supervisor",
                    "stream/checkpoints_written",
                    0,
                    engine_time(state),
                    state.checkpoints_written as f64,
                    state.checkpoints_written as f64,
                    0.0,
                    0.0,
                    format!("checkpoint save to {} failed: {e}", path.display()),
                ));
            }
        }
    }
}

/// Event timestamps want *some* stream-time anchor; the last
/// checkpoint's watermark is the best one available without touching
/// the engine from error paths.
fn engine_time(state: &RunState) -> f64 {
    state
        .last_checkpoint
        .as_ref()
        .map(|ck| ck.engine.sessionizer.watermark)
        .filter(|w| w.is_finite())
        .unwrap_or(0.0)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_taxonomy() {
        let transient = StreamError::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "EINTR",
        ));
        assert_eq!(classify(&transient), ErrorClass::Transient);
        let wouldblock = StreamError::Io(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            "EAGAIN",
        ));
        assert_eq!(classify(&wouldblock), ErrorClass::Transient);
        let poison = StreamError::Weblog(WeblogError::ParseLine {
            line: 3,
            reason: "bad status".to_string(),
        });
        assert_eq!(classify(&poison), ErrorClass::Poison);
        let fatal_io = StreamError::Io(std::io::Error::other("disk gone"));
        assert_eq!(classify(&fatal_io), ErrorClass::Fatal);
        let unsorted = StreamError::Weblog(WeblogError::Unsorted { at: 9 });
        assert_eq!(classify(&unsorted), ErrorClass::Fatal);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = SupervisorConfig {
            backoff_base_ms: 10,
            backoff_cap_ms: 500,
            ..SupervisorConfig::default()
        };
        let sup: Supervisor<crate::ClfSource<&[u8]>, _> =
            Supervisor::new(StreamConfig::default(), cfg, |_pos: &SourcePosition| {
                unreachable!("factory unused in this test")
            });
        let state = RunState {
            recoveries: 0,
            poison: MalformedBreakdown::default(),
            transient_retries: 0,
            total_transients: 0,
            retry_slept: Duration::ZERO,
            checkpoints_written: 0,
            last_checkpoint: None,
            last_checkpoint_at: Instant::now(),
        };
        let d1 = sup.backoff_delay(1, &state).as_millis() as u64;
        let d4 = sup.backoff_delay(4, &state).as_millis() as u64;
        let d20 = sup.backoff_delay(20, &state).as_millis() as u64;
        // Base step is 10 ms plus up to 10 ms jitter.
        assert!((10..20).contains(&d1), "{d1}");
        assert!((80..90).contains(&d4), "{d4}");
        // Far past the cap: clamped to cap + jitter.
        assert!((500..510).contains(&d20), "{d20}");

        let zero = SupervisorConfig {
            backoff_base_ms: 0,
            ..SupervisorConfig::default()
        };
        let sup: Supervisor<crate::ClfSource<&[u8]>, _> =
            Supervisor::new(StreamConfig::default(), zero, |_pos: &SourcePosition| {
                unreachable!("factory unused in this test")
            });
        assert_eq!(sup.backoff_delay(7, &state), Duration::ZERO);
    }

    fn idle_state() -> RunState {
        RunState {
            recoveries: 0,
            poison: MalformedBreakdown::default(),
            transient_retries: 0,
            total_transients: 0,
            retry_slept: Duration::ZERO,
            checkpoints_written: 0,
            last_checkpoint: None,
            last_checkpoint_at: Instant::now(),
        }
    }

    type TestSource = crate::ClfSource<&'static [u8]>;

    fn sup_with(
        cfg: SupervisorConfig,
    ) -> Supervisor<TestSource, impl FnMut(&SourcePosition) -> Result<TestSource>> {
        Supervisor::new(StreamConfig::default(), cfg, |_pos: &SourcePosition| {
            unreachable!("factory unused in this test")
        })
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        // Pathological tuning must clamp, not wrap or panic: u64::MAX
        // base with the cap wide open, at an attempt count far past the
        // shift clamp.
        let sup = sup_with(SupervisorConfig {
            backoff_base_ms: u64::MAX,
            backoff_cap_ms: u64::MAX,
            ..SupervisorConfig::default()
        });
        let state = idle_state();
        let d = sup.backoff_delay(u32::MAX, &state);
        assert!(d >= Duration::from_millis(u64::MAX - 1));
        // The exponent shift is clamped, so attempts past the clamp all
        // produce the same delay.
        let sup = sup_with(SupervisorConfig {
            backoff_base_ms: 10,
            backoff_cap_ms: u64::MAX,
            ..SupervisorConfig::default()
        });
        assert_eq!(
            sup.backoff_delay(17, &state),
            sup.backoff_delay(400, &state)
        );
    }

    #[test]
    fn retry_budget_boundary_is_exact() {
        let sup = sup_with(SupervisorConfig {
            max_retry_elapsed_secs: 2,
            ..SupervisorConfig::default()
        });
        let mut state = idle_state();
        // One nanosecond under budget: still allowed.
        state.retry_slept = Duration::from_secs(2) - Duration::from_nanos(1);
        assert!(!sup.retry_budget_exhausted(&state));
        // Exactly at budget: exhausted (the budget buys strictly less
        // than N seconds of sleeping).
        state.retry_slept = Duration::from_secs(2);
        assert!(sup.retry_budget_exhausted(&state));
        // Zero disables the budget entirely.
        let unlimited = sup_with(SupervisorConfig {
            max_retry_elapsed_secs: 0,
            ..SupervisorConfig::default()
        });
        state.retry_slept = Duration::from_secs(1 << 40);
        assert!(!unlimited.retry_budget_exhausted(&state));
    }
}
